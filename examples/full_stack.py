"""Full stack: application tasks -> OS scheduler -> HRTDM bounds -> CSMA/DDCR.

Section 2.2's argument, end to end.  Periodic application tasks on each
host would *naively* be declared as periodic message sources — but run
them through a preemptive fixed-priority CPU and the emission instants
jitter, violating the naive (a=1, w=period) bound.  This script:

1. simulates each host's task set and measures the emission traces;
2. shows the naive periodic bound is VIOLATED by the actual traces while
   the jitter-aware analytic bound (the unimodal arbitrary declaration)
   covers them;
3. feeds the safe bounds into the feasibility conditions, and
4. replays the *actual emission traces* through the CSMA/DDCR network
   simulation: zero misses, latencies within B_DDCR.

Run:  python examples/full_stack.py
"""

from __future__ import annotations

from repro.analysis.bounds import check_latency_bounds
from repro.analysis.metrics import summarize
from repro.analysis.report import format_table
from repro.core.feasibility import check_feasibility
from repro.host import TaskSpec, analytic_bound, empirical_bound, simulate_host
from repro.model.arrival import TraceArrivals
from repro.model.message import DensityBound, MessageClass
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec, allocate_static_indices
from repro.net.network import NetworkSimulation
from repro.net.phy import GIGABIT_ETHERNET
from repro.protocols.ddcr import DDCRConfig, DDCRProtocol

MS = 1_000_000
HORIZON = 60 * MS
WINDOW = 4 * MS


def host_tasks(host_id: int) -> list[TaskSpec]:
    """Each host runs a control task, a telemetry task and a bulk logger."""

    def cls(name: str, length: int, deadline: int, a: int) -> MessageClass:
        return MessageClass(
            name=f"{name}-{host_id}",
            length=length,
            deadline=deadline,
            bound=DensityBound(a=a, w=WINDOW),
        )

    return [
        TaskSpec(
            name=f"control-{host_id}",
            period=4 * MS,
            offset=host_id * 137_000,
            bcet=100_000,
            wcet=600_000,
            priority=0,
            message_class=cls("control", 1_000, 4 * MS, a=2),
        ),
        TaskSpec(
            name=f"telemetry-{host_id}",
            period=2 * MS,
            offset=host_id * 61_000,
            bcet=50_000,
            wcet=400_000,
            priority=1,
            message_class=cls("telemetry", 4_000, 6 * MS, a=3),
        ),
        TaskSpec(
            name=f"bulk-{host_id}",
            period=8 * MS,
            offset=0,
            bcet=500_000,
            wcet=2_000_000,
            priority=2,
            message_class=cls("bulk", 16_000, 20 * MS, a=2),
        ),
    ]


def main() -> None:
    hosts = 4
    schedules = {
        host_id: simulate_host(host_tasks(host_id), HORIZON, seed=host_id)
        for host_id in range(hosts)
    }

    # 1-2: naive periodic declaration vs measured emissions.
    rows = []
    naive_violations = 0
    for host_id in range(hosts):
        for task in host_tasks(host_id):
            trace = schedules[host_id].emission_trace(task.name)
            naive = DensityBound(a=1, w=task.period)
            jitter = schedules[host_id].jitter(task.name)
            safe = analytic_bound(task, jitter, WINDOW)
            tight = empirical_bound(trace, WINDOW)
            naive_ok = naive.admits(trace)
            naive_violations += not naive_ok
            if host_id == 0:
                rows.append(
                    [
                        task.name,
                        len(trace),
                        round(jitter / MS, 3),
                        "yes" if naive_ok else "VIOLATED",
                        f"a={tight.a}",
                        f"a={safe.a}",
                    ]
                )
    print(
        format_table(
            ["task (host 0)", "emissions", "jitter (ms)",
             "naive periodic ok?", "measured bound", "declared bound"],
            rows,
            title="What the OS stack does to 'periodic' messages",
        )
    )
    print(
        f"\nnaive periodic declarations violated on "
        f"{naive_violations}/{hosts * 3} task instances — "
        "hence the unimodal arbitrary model.\n"
    )

    # 3: build the HRTDM instance from the *declared* (safe) bounds.
    allocations = allocate_static_indices([2] * hosts, q=8)
    sources = []
    for host_id in range(hosts):
        classes = []
        for task in host_tasks(host_id):
            jitter = schedules[host_id].jitter(task.name)
            safe = analytic_bound(task, jitter, WINDOW)
            base = task.message_class
            classes.append(
                MessageClass(
                    name=base.name,
                    length=base.length,
                    deadline=base.deadline,
                    bound=safe,
                )
            )
        sources.append(
            SourceSpec(
                source_id=host_id,
                message_classes=tuple(classes),
                static_indices=allocations[host_id],
            )
        )
    problem = HRTDMProblem(sources=tuple(sources), static_q=8, static_m=2)
    config = DDCRConfig(
        time_f=64,
        time_m=4,
        class_width=max(GIGABIT_ETHERNET.slot_time, 2 * 20 * MS // 64),
        static_q=8,
        static_m=2,
        alpha=2 * GIGABIT_ETHERNET.slot_time,
        theta_factor=1.0,
    )
    report = check_feasibility(
        problem, GIGABIT_ETHERNET, config.tree_parameters()
    )
    print(
        f"feasibility with declared bounds: "
        f"{'FEASIBLE' if report.feasible else 'INFEASIBLE'} "
        f"(binding class {report.worst.class_name}, "
        f"slack {report.worst.slack / MS:.2f} ms)\n"
    )

    # 4: replay the actual emission traces through the network.
    arrivals = {}
    for host_id in range(hosts):
        for task in host_tasks(host_id):
            arrivals[task.message_class.name] = TraceArrivals(
                trace=tuple(schedules[host_id].emission_trace(task.name))
            )
    simulation = NetworkSimulation(
        problem,
        GIGABIT_ETHERNET,
        protocol_factory=lambda source: DDCRProtocol(config),
        arrivals=arrivals,
        check_consistency=True,
    )
    result = simulation.run(HORIZON)
    metrics = summarize(result)
    _, latency_checks = check_latency_bounds(
        result, problem, GIGABIT_ETHERNET, config.tree_parameters()
    )
    print(
        f"network replay of real emissions: delivered={metrics.delivered}, "
        f"misses={metrics.misses}, "
        f"worst bound usage="
        f"{max(check.tightness for check in latency_checks):.1%}"
    )
    assert report.feasible and metrics.meets_hrtdm


if __name__ == "__main__":
    main()
