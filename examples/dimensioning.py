"""Network dimensioning with feasibility conditions (the paper's use case).

Section 2.2: "FCs are an essential tool for an end user or a technology
provider who has to assign numerical values to message lengths, to upper
bounds of message arrival densities and to message deadlines."

This script plays that role for an air-traffic-control segment: given
radar track streams and console traffic, it explores the three dimensioning
axes — how many consoles, how tight the command deadline, how big the
track batches — and prints the admission boundary along each, plus a
simulated spot-check at the corner configuration.

Run:  python examples/dimensioning.py
"""

from __future__ import annotations

from repro.analysis.metrics import summarize
from repro.analysis.report import format_table
from repro.core.feasibility import check_feasibility
from repro.experiments.harness import (
    build_simulation,
    ddcr_factory,
    default_ddcr_config,
)
from repro.model.message import DensityBound, MessageClass
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec, allocate_static_indices
from repro.net.phy import GIGABIT_ETHERNET

MS = 1_000_000


def build(consoles: int, command_deadline_ms: int, track_kbits: int):
    radars = 4
    z = radars + consoles
    nu = [2] * radars + [1] * consoles
    q = 2
    while q < sum(nu):
        q *= 2
    indices = allocate_static_indices(nu, q)
    sources = []
    for i in range(radars):
        sources.append(
            SourceSpec(
                source_id=i,
                message_classes=(
                    MessageClass(
                        name=f"tracks-{i}",
                        length=track_kbits * 1000,
                        deadline=12 * MS,
                        bound=DensityBound(a=2, w=4 * MS),
                    ),
                ),
                static_indices=indices[i],
            )
        )
    for j in range(consoles):
        sources.append(
            SourceSpec(
                source_id=radars + j,
                message_classes=(
                    MessageClass(
                        name=f"command-{j}",
                        length=1_000,
                        deadline=command_deadline_ms * MS,
                        bound=DensityBound(a=1, w=10 * MS),
                    ),
                ),
                static_indices=indices[radars + j],
            )
        )
    return HRTDMProblem(sources=tuple(sources), static_q=q, static_m=2)


def feasible(problem) -> bool:
    config = default_ddcr_config(problem, GIGABIT_ETHERNET)
    return check_feasibility(
        problem, GIGABIT_ETHERNET, config.tree_parameters()
    ).feasible


def boundary(axis: str) -> list[list[object]]:
    rows = []
    if axis == "consoles":
        for consoles in (4, 8, 16, 32, 64, 128):
            rows.append([consoles, feasible(build(consoles, 4, 24))])
    elif axis == "deadline":
        for deadline_ms in (16, 8, 4, 2, 1):
            rows.append([deadline_ms, feasible(build(16, deadline_ms, 24))])
    else:
        for track_kbits in (24, 48, 96, 192, 384):
            rows.append([track_kbits, feasible(build(16, 4, track_kbits))])
    return rows


def main() -> None:
    print(
        format_table(
            ["consoles", "feasible"],
            boundary("consoles"),
            title="Axis 1: console count (command deadline 4 ms, 24 kb tracks)",
        )
    )
    print()
    print(
        format_table(
            ["command deadline (ms)", "feasible"],
            boundary("deadline"),
            title="Axis 2: command deadline (16 consoles, 24 kb tracks)",
        )
    )
    print()
    print(
        format_table(
            ["track batch (kbit)", "feasible"],
            boundary("tracks"),
            title="Axis 3: track batch size (16 consoles, 4 ms commands)",
        )
    )

    # Spot-check one admitted configuration in simulation.
    problem = build(consoles=16, command_deadline_ms=4, track_kbits=24)
    config = default_ddcr_config(problem, GIGABIT_ETHERNET)
    result = build_simulation(
        problem, GIGABIT_ETHERNET, ddcr_factory(config)
    ).run(36 * MS)
    metrics = summarize(result)
    print(
        f"\nspot check (16 consoles, 4 ms commands): delivered="
        f"{metrics.delivered}, misses={metrics.misses}, "
        f"utilization={metrics.utilization:.3f}"
    )
    assert metrics.meets_hrtdm


if __name__ == "__main__":
    main()
