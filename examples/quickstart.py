"""Quickstart: specify an HRTDM instance, prove it feasible, simulate it.

This walks the paper's intended workflow end to end:

1. describe message classes with lengths, deadlines and (a, w) arrival
   density bounds (the unimodal arbitrary model of section 2.2);
2. compute the feasibility conditions B_DDCR <= d for every class
   (section 4.3) — the *proof* that the configuration meets <p.HRTDM>;
3. run CSMA/DDCR on a simulated Gigabit Ethernet under the greedy
   adversary that saturates every density bound, and confirm the proof:
   zero deadline misses and every observed latency below its bound.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.bounds import check_latency_bounds
from repro.analysis.metrics import summarize
from repro.analysis.report import format_table
from repro.core.feasibility import check_feasibility
from repro.model.message import DensityBound, MessageClass
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec, allocate_static_indices
from repro.net.network import NetworkSimulation
from repro.net.phy import GIGABIT_ETHERNET
from repro.protocols.ddcr import DDCRConfig, DDCRProtocol

MS = 1_000_000  # 1 ms in bit-times at 1 Gb/s


def build_problem() -> HRTDMProblem:
    """Four stations: two sensor feeds, a control console, a logger."""
    sensor = MessageClass(
        name="sensor",
        length=4_000,                      # 500-byte readings
        deadline=4 * MS,                   # must land within 4 ms
        bound=DensityBound(a=2, w=2 * MS),  # at most 2 per sliding 2 ms
    )
    sensor_b = MessageClass(
        name="sensor-b",
        length=4_000,
        deadline=4 * MS,
        bound=DensityBound(a=2, w=2 * MS),
    )
    control = MessageClass(
        name="control",
        length=1_000,
        deadline=2 * MS,                   # urgent commands
        bound=DensityBound(a=1, w=5 * MS),
    )
    log = MessageClass(
        name="log",
        length=12_000,
        deadline=20 * MS,                  # bulky but relaxed
        bound=DensityBound(a=1, w=10 * MS),
    )
    indices = allocate_static_indices([1, 1, 1, 1], q=4)
    sources = tuple(
        SourceSpec(source_id=i, message_classes=(cls,), static_indices=idx)
        for i, (cls, idx) in enumerate(
            zip((sensor, sensor_b, control, log), indices)
        )
    )
    return HRTDMProblem(sources=sources, static_q=4, static_m=2)


def main() -> None:
    problem = build_problem()
    print(problem.describe())
    print()

    config = DDCRConfig(
        time_f=64,
        time_m=4,
        class_width=max(GIGABIT_ETHERNET.slot_time, 2 * 20 * MS // 64),
        static_q=problem.static_q,
        static_m=problem.static_m,
        alpha=2 * GIGABIT_ETHERNET.slot_time,
        theta_factor=1.0,
    )

    # Step 1: the proof — feasibility conditions for every class.
    report = check_feasibility(
        problem, GIGABIT_ETHERNET, config.tree_parameters()
    )
    print(
        format_table(
            ["class", "deadline (ms)", "B_DDCR (ms)", "slack (ms)", "feasible"],
            [
                [
                    fc.class_name,
                    fc.deadline / MS,
                    fc.bound / MS,
                    fc.slack / MS,
                    fc.feasible,
                ]
                for fc in report.classes
            ],
            title="Feasibility conditions (section 4.3)",
        )
    )
    if not report.feasible:
        print("\ninstance infeasible — re-dimension before deploying")
        return

    # Step 2: the experiment — peak-load adversary on simulated GigE.
    simulation = NetworkSimulation(
        problem,
        GIGABIT_ETHERNET,
        protocol_factory=lambda source: DDCRProtocol(config),
        check_consistency=True,
    )
    result = simulation.run(horizon=60 * MS)
    metrics = summarize(result)

    print()
    print(
        f"simulated 60 ms of peak load: delivered={metrics.delivered} "
        f"misses={metrics.misses} utilization={metrics.utilization:.3f}"
    )
    _, latency_checks = check_latency_bounds(
        result, problem, GIGABIT_ETHERNET, config.tree_parameters()
    )
    print(
        format_table(
            ["class", "worst observed (ms)", "B_DDCR (ms)", "budget used"],
            [
                [
                    check.class_name,
                    check.observed_max / MS,
                    check.bound / MS,
                    f"{check.tightness:.1%}",
                ]
                for check in latency_checks
            ],
            title="Observed worst-case latency vs analytic bound",
        )
    )
    assert metrics.meets_hrtdm, "the feasibility proof must hold in simulation"
    print("\n<p.HRTDM> holds: every message met its deadline.")


if __name__ == "__main__":
    main()
