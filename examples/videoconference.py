"""Videoconferencing on one Gigabit Ethernet segment (section 2.1's example).

Eight participants each send video frames, audio frames and control
messages with per-class deadlines.  The script:

* checks the feasibility conditions as the conference grows, finding the
  largest participant count the proof admits;
* simulates that maximal conference under peak load with CSMA/DDCR and
  with CSMA-CD/BEB, showing the determinism gap (per-class worst latency
  and deadline misses).

Run:  python examples/videoconference.py
"""

from __future__ import annotations

from repro.analysis.metrics import summarize
from repro.analysis.report import format_table
from repro.core.feasibility import check_feasibility
from repro.experiments.harness import (
    build_simulation,
    csma_cd_factory,
    ddcr_factory,
    default_ddcr_config,
)
from repro.model.workloads import videoconference_problem
from repro.net.phy import GIGABIT_ETHERNET

MS = 1_000_000


def max_feasible_participants(limit: int = 64) -> int:
    """Largest conference the feasibility conditions accept."""
    best = 0
    for participants in range(1, limit + 1):
        problem = videoconference_problem(participants=participants)
        config = default_ddcr_config(problem, GIGABIT_ETHERNET)
        report = check_feasibility(
            problem, GIGABIT_ETHERNET, config.tree_parameters()
        )
        if not report.feasible:
            break
        best = participants
    return best


def main() -> None:
    best = max_feasible_participants()
    print(f"feasibility conditions admit up to {best} participants\n")

    problem = videoconference_problem(participants=best)
    config = default_ddcr_config(problem, GIGABIT_ETHERNET)
    horizon = 40 * MS

    rows = []
    per_class_rows = []
    for name, factory in (
        ("CSMA/DDCR", ddcr_factory(config)),
        ("CSMA-CD/BEB", csma_cd_factory(seed=11)),
    ):
        result = build_simulation(
            problem, GIGABIT_ETHERNET, factory
        ).run(horizon)
        metrics = summarize(result)
        rows.append(
            [
                name,
                metrics.delivered,
                metrics.misses,
                round(metrics.utilization, 3),
                round(metrics.max_latency / MS, 3),
                metrics.inversions,
            ]
        )
        for kind in ("video", "audio", "control"):
            stats = [
                cm
                for cls_name, cm in metrics.per_class.items()
                if cls_name.startswith(kind)
            ]
            worst = max(
                (cm.latency.maximum for cm in stats if cm.latency.count),
                default=0.0,
            )
            per_class_rows.append(
                [
                    name,
                    kind,
                    sum(cm.delivered for cm in stats),
                    sum(cm.misses for cm in stats),
                    round(worst / MS, 3),
                ]
            )

    print(
        format_table(
            ["protocol", "delivered", "misses", "util", "max lat (ms)",
             "inversions"],
            rows,
            title=f"{best}-party conference, 40 ms of peak load",
        )
    )
    print()
    print(
        format_table(
            ["protocol", "class", "delivered", "misses", "worst lat (ms)"],
            per_class_rows,
            title="Per-media breakdown",
        )
    )


if __name__ == "__main__":
    main()
