"""CSMA/DDCR on a bus internal to an ATM switch (section 3.2 / section 5).

The second target technology of the paper: a physically tiny broadcast bus
whose slot time is a few bit times, carrying fixed-size 53-byte cells.
Because x is ~1000x smaller than on a LAN, tree-search slots are almost
free and the feasibility region is dominated by pure transmission time.

The script contrasts the *same* cell workload on the ATM bus profile and
on Gigabit Ethernet: identical protocol, radically different search
overhead — reproducing the paper's argument for why the DDCR analysis
carries to switch fabrics.

Run:  python examples/atm_switch.py
"""

from __future__ import annotations

from repro.analysis.metrics import summarize
from repro.analysis.report import format_table
from repro.core.feasibility import check_feasibility
from repro.experiments.harness import (
    build_simulation,
    ddcr_factory,
    default_ddcr_config,
)
from repro.model.workloads import uniform_problem
from repro.net.phy import ATM_BUS, GIGABIT_ETHERNET

MS = 1_000_000
CELL_BITS = 424  # 53-byte ATM cell


def main() -> None:
    # Sixteen port cards pushing cell bursts across the fabric bus.
    # Note the short horizon: with a 4-bit slot the ATM bus simulates
    # ~250k channel rounds per simulated millisecond.
    problem = uniform_problem(
        z=16,
        length=CELL_BITS,
        deadline=250_000,
        a=4,
        w=250_000,
        static_m=2,
        nu=2,
    )
    rows = []
    for medium in (ATM_BUS, GIGABIT_ETHERNET):
        config = default_ddcr_config(problem, medium)
        trees = config.tree_parameters()
        report = check_feasibility(problem, medium, trees)
        result = build_simulation(
            problem, medium, ddcr_factory(config)
        ).run(1 * MS)
        metrics = summarize(result)
        worst = report.worst
        search_bits = medium.slot_time * (
            worst.search_slots_static + worst.search_slots_time
        )
        rows.append(
            [
                medium.name,
                medium.slot_time,
                report.feasible,
                round(worst.bound / MS, 4),
                f"{search_bits / worst.bound:.1%}",
                metrics.delivered,
                metrics.misses,
                round(metrics.utilization, 3),
            ]
        )
    print(
        format_table(
            [
                "medium",
                "slot (bits)",
                "fc_ok",
                "B_DDCR (ms)",
                "search share",
                "delivered",
                "misses",
                "util",
            ],
            rows,
            title="Identical cell workload: ATM fabric bus vs Gigabit LAN",
        )
    )
    print(
        "\nsmall slot time makes collision-resolution nearly free on the "
        "fabric bus:\nthe B_DDCR budget is almost entirely cell "
        "transmission time."
    )


if __name__ == "__main__":
    main()
