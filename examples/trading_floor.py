"""On-line transactions (stock market) — bursty urgent traffic.

Trading desks emit bursts of small order messages with millisecond
deadlines (the paper's on-line transaction example, section 2.1).  The
script sweeps the burst intensity and shows:

* where the feasibility frontier sits (the proof's admission boundary);
* that inside the frontier CSMA/DDCR misses nothing while CSMA-CD/BEB's
  worst-case order latency explodes under the same bursts;
* what the B_DDCR budget is spent on at the frontier (transmission vs
  tree-search slots).

Run:  python examples/trading_floor.py
"""

from __future__ import annotations

from repro.analysis.metrics import summarize
from repro.analysis.report import format_table
from repro.core.feasibility import check_feasibility, max_feasible_scale
from repro.experiments.harness import (
    build_simulation,
    csma_cd_factory,
    ddcr_factory,
    default_ddcr_config,
)
from repro.model.workloads import trading_floor_problem
from repro.net.phy import GIGABIT_ETHERNET

MS = 1_000_000


def main() -> None:
    desks = 16

    def factory(scale: float):
        return trading_floor_problem(desks=desks, scale=scale)

    config = default_ddcr_config(factory(1.0), GIGABIT_ETHERNET)
    trees = config.tree_parameters()
    frontier = max_feasible_scale(
        factory, GIGABIT_ETHERNET, trees, lo=0.05, hi=32.0
    )
    print(f"{desks} desks: feasibility frontier at scale {frontier:.2f}\n")

    # Anatomy of the bound for the binding class at the frontier.
    report = check_feasibility(factory(frontier), GIGABIT_ETHERNET, trees)
    worst = report.worst
    search_bits = GIGABIT_ETHERNET.slot_time * (
        worst.search_slots_static + worst.search_slots_time
    )
    print(
        format_table(
            ["component", "value"],
            [
                ["binding class", worst.class_name],
                ["deadline (ms)", worst.deadline / MS],
                ["B_DDCR (ms)", round(worst.bound / MS, 3)],
                ["u(M) interfering messages", worst.interference],
                ["v(M) static trees", worst.static_trees],
                ["transmission share", f"{worst.transmission_bits / worst.bound:.1%}"],
                ["search-slot share", f"{search_bits / worst.bound:.1%}"],
            ],
            title="B_DDCR decomposition at the frontier",
        )
    )
    print()

    rows = []
    for scale in (0.25, 0.5, min(1.0, frontier)):
        problem = factory(scale)
        cfg = default_ddcr_config(problem, GIGABIT_ETHERNET)
        feasible = check_feasibility(
            problem, GIGABIT_ETHERNET, cfg.tree_parameters()
        ).feasible
        for name, protocol_factory in (
            ("CSMA/DDCR", ddcr_factory(cfg)),
            ("CSMA-CD/BEB", csma_cd_factory(seed=3)),
        ):
            result = build_simulation(
                problem, GIGABIT_ETHERNET, protocol_factory
            ).run(24 * MS)
            metrics = summarize(result)
            order_stats = [
                cm
                for cls, cm in metrics.per_class.items()
                if cls.startswith("order")
            ]
            worst_order = max(
                (cm.latency.maximum for cm in order_stats if cm.latency.count),
                default=0.0,
            )
            rows.append(
                [
                    scale,
                    feasible,
                    name,
                    metrics.misses,
                    round(worst_order / MS, 3),
                    round(metrics.utilization, 3),
                ]
            )
    print(
        format_table(
            ["scale", "fc_ok", "protocol", "misses", "worst order lat (ms)",
             "util"],
            rows,
            title="Burst-intensity sweep, 24 ms of peak load",
        )
    )


if __name__ == "__main__":
    main()
