"""Watch CSMA/DDCR resolve a burst, slot by slot.

Renders the channel activity strip for a synchronized four-station burst:
the entry collision, the time tree descent, the nested static tree search
that untangles the shared deadline class, and the transmissions — then the
same burst again with 5% channel noise injected, showing the protocol
absorbing corrupted slots without losing consistency.

Legend: ``.`` silence, ``X`` collision, ``!`` corrupted slot, digits are
transmitting stations.

Run:  python examples/channel_timeline.py
"""

from __future__ import annotations

from repro.analysis.report import render_timeline
from repro.core.search_cost import worst_case_placement, xi_exact
from repro.model.message import DensityBound, MessageClass
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec
from repro.net.network import NetworkSimulation
from repro.net.phy import ideal_medium
from repro.protocols.ddcr import DDCRConfig, DDCRProtocol


def build() -> tuple[HRTDMProblem, DDCRConfig]:
    placement = worst_case_placement(4, 8, 2)
    sources = tuple(
        SourceSpec(
            source_id=i,
            message_classes=(
                MessageClass(
                    name=f"burst-{i}",
                    length=2_000,
                    deadline=600_000,
                    bound=DensityBound(a=1, w=2_000_000),
                ),
            ),
            static_indices=(index,),
        )
        for i, index in enumerate(placement)
    )
    problem = HRTDMProblem(sources=sources, static_q=8, static_m=2)
    config = DDCRConfig(
        time_f=16,
        time_m=2,
        class_width=600_000,
        static_q=8,
        static_m=2,
        theta_factor=1.0,
    )
    return problem, config


def run_once(noise_rate: float) -> str:
    problem, config = build()
    simulation = NetworkSimulation(
        problem,
        ideal_medium(slot_time=64),
        protocol_factory=lambda source: DDCRProtocol(config),
        trace=True,
        check_consistency=True,
        noise_rate=noise_rate,
        noise_seed=3,
    )
    result = simulation.run(horizon=80_000)
    mac = result.stations[0].mac
    lines = [render_timeline(result.trace, width=80)]
    if mac.sts_records:
        record = mac.sts_records[0]
        lines.append(
            f"static tree search: {record.wasted_slots} wasted slots "
            f"(analytic worst case xi(4, 8) = {xi_exact(4, 8, 2)}), "
            f"{record.successes} messages"
        )
    return "\n".join(lines)


def main() -> None:
    print("clean channel:")
    print(run_once(noise_rate=0.0))
    print()
    print("with 5% common-mode noise:")
    print(run_once(noise_rate=0.05))


if __name__ == "__main__":
    main()
