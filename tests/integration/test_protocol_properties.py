"""Property-based invariants over randomised protocol runs.

Hypothesis generates small random HRTDM scenarios (station counts, message
sizes, deadlines, arrival traces, protocol parameters) and checks the
invariants every MAC protocol must preserve:

* conservation — every arrival is delivered, dropped, or still queued;
* safety — successful transmissions never overlap on the wire
  (<p.HRTDM> mutual exclusion);
* integrity — each message instance completes at most once, after its
  arrival;
* lockstep — deterministic protocols stay slot-consistent (asserted by the
  channel when enabled);
* determinism — identical seeds give identical schedules.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.arrival import TraceArrivals
from repro.model.message import DensityBound, MessageClass
from repro.net.channel import BroadcastChannel
from repro.net.phy import ideal_medium
from repro.net.station import Station
from repro.protocols.csma_cd import CSMACDProtocol
from repro.protocols.dcr import DCRProtocol
from repro.protocols.ddcr import DDCRConfig, DDCRProtocol
from repro.protocols.tdma import TDMAProtocol
from repro.core.trees import BalancedTree
from repro.sim.engine import Environment

HORIZON = 1_200_000


@st.composite
def scenario(draw):
    """A small random scenario: station count + per-station arrival trace."""
    z = draw(st.integers(2, 5))
    length = draw(st.sampled_from([500, 1_000, 4_000]))
    deadline = draw(st.sampled_from([200_000, 400_000, 800_000]))
    arrivals = {}
    for sid in range(z):
        count = draw(st.integers(0, 4))
        times = sorted(
            draw(
                st.lists(
                    st.integers(0, HORIZON // 3),
                    min_size=count,
                    max_size=count,
                )
            )
        )
        arrivals[sid] = times
    return z, length, deadline, arrivals


def _build_and_run(protocol_builder, z, length, deadline, arrivals,
                   check_consistency=True, noise_rate=0.0):
    cls = MessageClass(
        name="p",
        length=length,
        deadline=deadline,
        bound=DensityBound(a=8, w=1_000),  # loose: traces are arbitrary
    )
    env = Environment()
    channel = BroadcastChannel(
        env,
        ideal_medium(slot_time=256),
        check_consistency=check_consistency,
        noise_rate=noise_rate,
        noise_seed=13,
    )
    stations = []
    for sid in range(z):
        station = Station(sid, protocol_builder(sid, z), static_indices=(sid,))
        if arrivals[sid]:
            station.load_arrivals(
                cls, TraceArrivals(trace=tuple(arrivals[sid])), HORIZON
            )
        channel.attach(station)
        stations.append(station)
    env.process(channel.process(HORIZON))
    env.run(until=HORIZON)
    return stations


def _ddcr_builder(z):
    config = DDCRConfig(
        time_f=16,
        time_m=2,
        class_width=100_000,
        static_q=8,
        static_m=2,
        theta_factor=1.0,
    )
    return lambda sid, z: DDCRProtocol(config)


def _dcr_builder(z):
    tree = BalancedTree.of(m=2, leaves=8)
    return lambda sid, z: DCRProtocol(tree)


def _tdma_builder(z):
    return lambda sid, z_: TDMAProtocol(tuple(range(z)))


def _beb_builder(z):
    return lambda sid, z_: CSMACDProtocol(seed=sid + 1)


_BUILDERS = {
    "ddcr": (_ddcr_builder, True),
    "dcr": (_dcr_builder, True),
    "tdma": (_tdma_builder, True),
    "beb": (_beb_builder, False),
}


@settings(max_examples=25)
@given(scenario(), st.sampled_from(sorted(_BUILDERS)))
def test_conservation_and_safety(scn, protocol_name):
    z, length, deadline, arrivals = scn
    builder, lockstep = _BUILDERS[protocol_name]
    stations = _build_and_run(
        builder(z), z, length, deadline, arrivals,
        check_consistency=lockstep,
    )
    total_arrivals = sum(len(times) for times in arrivals.values())
    accounted = sum(
        len(s.completions) + len(s.backlog()) for s in stations
    )
    assert accounted == total_arrivals
    # Safety: wire intervals of successes never overlap.
    intervals = sorted(
        (r.started, r.completion)
        for s in stations
        for r in s.completions
        if not r.dropped
    )
    for (_, end_a), (start_b, _) in zip(intervals, intervals[1:]):
        assert start_b >= end_a
    # Integrity: unique completions, none before arrival.
    seqs = [
        r.message.seq for s in stations for r in s.completions
    ]
    assert len(seqs) == len(set(seqs))
    for s in stations:
        for r in s.completions:
            assert r.completion > r.message.arrival


@settings(max_examples=10)
@given(scenario())
def test_ddcr_under_noise_keeps_invariants(scn):
    z, length, deadline, arrivals = scn
    builder, _ = _BUILDERS["ddcr"]
    stations = _build_and_run(
        builder(z), z, length, deadline, arrivals,
        check_consistency=True, noise_rate=0.05,
    )
    total_arrivals = sum(len(times) for times in arrivals.values())
    accounted = sum(len(s.completions) + len(s.backlog()) for s in stations)
    assert accounted == total_arrivals


@settings(max_examples=10)
@given(scenario())
def test_ddcr_deterministic(scn):
    z, length, deadline, arrivals = scn
    builder, _ = _BUILDERS["ddcr"]

    def run_once():
        stations = _build_and_run(
            builder(z), z, length, deadline, arrivals
        )
        return sorted(
            (r.started, r.completion, r.message.source_id)
            for s in stations
            for r in s.completions
        )

    assert run_once() == run_once()
