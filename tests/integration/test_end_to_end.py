"""End-to-end integration: HRTDM instance -> FCs -> simulation -> guarantee.

These tests exercise the whole stack the way the paper intends it to be
used: specify an instance, check the feasibility conditions, run the
protocol under the unimodal-arbitrary adversary, and confirm <p.HRTDM>.
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import check_latency_bounds, check_search_costs
from repro.analysis.metrics import summarize
from repro.core.feasibility import check_feasibility
from repro.experiments.harness import (
    PROTOCOL_FACTORIES,
    build_simulation,
    ddcr_factory,
    default_ddcr_config,
)
from repro.model.workloads import (
    trading_floor_problem,
    uniform_problem,
    videoconference_problem,
)
from repro.net.phy import ATM_BUS, GIGABIT_ETHERNET

_MS = 1_000_000


class TestHRTDMGuarantee:
    @pytest.mark.parametrize(
        "problem_factory,horizon",
        [
            (
                lambda: uniform_problem(
                    z=4, length=8_000, deadline=12 * _MS, a=1, w=4 * _MS
                ),
                36 * _MS,
            ),
            (
                lambda: videoconference_problem(participants=4, scale=0.5),
                30 * _MS,
            ),
            (
                lambda: trading_floor_problem(desks=4, scale=0.25),
                20 * _MS,
            ),
        ],
        ids=["uniform", "videoconference", "trading"],
    )
    def test_feasible_instances_never_miss(self, problem_factory, horizon):
        problem = problem_factory()
        config = default_ddcr_config(problem, GIGABIT_ETHERNET)
        report = check_feasibility(
            problem, GIGABIT_ETHERNET, config.tree_parameters()
        )
        assert report.feasible, f"instance should be feasible: {report.worst}"
        simulation = build_simulation(
            problem,
            GIGABIT_ETHERNET,
            ddcr_factory(config),
            check_consistency=True,
        )
        result = simulation.run(horizon)
        metrics = summarize(result)
        assert metrics.delivered > 0
        assert metrics.meets_hrtdm, (
            f"missed {metrics.misses} deadlines on a feasible instance"
        )
        assert check_search_costs(result) == []
        _, latency_checks = check_latency_bounds(
            result, problem, GIGABIT_ETHERNET, config.tree_parameters()
        )
        assert all(check.holds for check in latency_checks)

    def test_atm_bus_medium(self):
        # Same protocol on the non-destructive short-slot ATM bus profile.
        # Kept short: with a 4-bit slot every simulated microsecond is 250
        # channel rounds.
        problem = uniform_problem(
            z=4, length=424, deadline=100_000, a=1, w=100_000
        )
        config = default_ddcr_config(problem, ATM_BUS)
        simulation = build_simulation(
            problem, ATM_BUS, ddcr_factory(config), check_consistency=True
        )
        result = simulation.run(400_000)
        metrics = summarize(result)
        assert metrics.meets_hrtdm
        assert metrics.delivered == 4 * 4


class TestMutualExclusion:
    def test_successes_never_overlap(self):
        # Safety property of <p.HRTDM>: transmissions are mutually
        # exclusive.  Verified from the per-completion wire intervals.
        problem = uniform_problem(z=8, deadline=12 * _MS, a=2, w=4 * _MS)
        config = default_ddcr_config(problem, GIGABIT_ETHERNET)
        simulation = build_simulation(
            problem, GIGABIT_ETHERNET, ddcr_factory(config)
        )
        result = simulation.run(24 * _MS)
        intervals = sorted(
            (record.started, record.completion)
            for record in result.completions
        )
        for (_, end_a), (start_b, _) in zip(intervals, intervals[1:]):
            assert start_b >= end_a


class TestCrossProtocolSanity:
    def test_all_protocols_deliver_light_load(self):
        problem = uniform_problem(
            z=4, length=4_000, deadline=20 * _MS, a=1, w=10 * _MS
        )
        for name, factory in PROTOCOL_FACTORIES(
            problem, GIGABIT_ETHERNET
        ).items():
            simulation = build_simulation(problem, GIGABIT_ETHERNET, factory)
            metrics = summarize(simulation.run(30 * _MS))
            assert metrics.delivered == 4 * 3, name
            assert metrics.meets_hrtdm, name

    def test_deterministic_protocols_reproducible(self):
        problem = uniform_problem(z=4, deadline=12 * _MS, a=1, w=4 * _MS)
        config = default_ddcr_config(problem, GIGABIT_ETHERNET)

        def run_once():
            simulation = build_simulation(
                problem, GIGABIT_ETHERNET, ddcr_factory(config)
            )
            return [
                (r.started, r.completion, r.message.msg_class.name)
                for r in simulation.run(24 * _MS).completions
            ]

        assert run_once() == run_once()
