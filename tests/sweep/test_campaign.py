"""Campaign expansion: reserved axes, hashing, shards, serialisation."""

from __future__ import annotations

import json

import pytest

from repro.faults.models import preset_plan
from repro.sweep import Campaign, Grid, builtin_campaigns


class TestPointExpansion:
    def test_points_bind_specs_in_grid_order(self):
        campaign = Campaign.make(
            "demo", experiment="FIG1", zipped={"m": [2, 3], "t": [8, 27]}
        )
        points = campaign.points()
        assert [p.index for p in points] == [0, 1]
        assert points[0].spec.experiment_id == "FIG1"
        assert points[0].spec.kwargs() == {"m": 2, "t": 8}
        assert points[1].spec.kwargs() == {"m": 3, "t": 27}

    def test_seed_axis_becomes_root_seed(self):
        campaign = Campaign.make("demo", experiment="PROTO", seeds=(7, 11))
        seeds = [p.spec.root_seed for p in campaign.points()]
        assert seeds == [7, 11]
        assert all("seed" not in p.spec.kwargs() for p in campaign.points())

    def test_experiment_axis_overrides_default(self):
        campaign = Campaign.make(
            "demo", axes={"experiment": ["FIG1", "FIG2"]}
        )
        ids = [p.spec.experiment_id for p in campaign.points()]
        assert ids == ["FIG1", "FIG2"]

    def test_missing_experiment_rejected(self):
        campaign = Campaign.make("demo", axes={"m": [2]})
        with pytest.raises(ValueError, match="selects no experiment"):
            campaign.points()

    def test_engine_axis_sets_spec_engine(self):
        campaign = Campaign.make(
            "demo", experiment="FIG1", axes={"engine": ["des", "fastloop"]}
        )
        engines = [p.spec.engine for p in campaign.points()]
        assert engines == ["des", "fastloop"]

    def test_fault_axis_expands_presets(self):
        campaign = Campaign.make(
            "demo", experiment="PROTO", axes={"fault": ["crash"]}
        )
        (point,) = campaign.points()
        assert point.spec.faults == preset_plan("crash").dumps()

    def test_fault_and_faults_conflict(self):
        campaign = Campaign.make(
            "demo",
            experiment="PROTO",
            axes={"fault": ["crash"]},
            params={},
        )
        conflicted = campaign.replace(
            grid=Grid.make(
                axes={
                    "fault": ["crash"],
                    "faults": [preset_plan("crash").dumps()],
                }
            )
        )
        with pytest.raises(ValueError, match="both 'fault' and 'faults'"):
            conflicted.points()

    def test_base_params_layer_under_axes(self):
        campaign = Campaign.make(
            "demo",
            experiment="FC",
            axes={"z": [4, 8]},
            params={"deadlines_ms": (2, 4)},
        )
        for point in campaign.points():
            assert point.spec.kwargs()["deadlines_ms"] == (2, 4)

    def test_axis_overrides_base_param(self):
        campaign = Campaign.make(
            "demo", experiment="FC", axes={"z": [16]}, params={"z": 8}
        )
        (point,) = campaign.points()
        assert point.spec.kwargs() == {"z": 16}


class TestShardsAndHash:
    def test_shards_chunk_in_order(self):
        campaign = Campaign.make(
            "demo", experiment="FIG1", zipped={"m": [2] * 5, "t": [8] * 5},
            batch_size=2,
        )
        # Degenerate grid (identical points) still shards positionally.
        shards = campaign.shards()
        assert [len(shard) for shard in shards] == [2, 2, 1]
        assert [p.index for shard in shards for p in shard] == list(range(5))

    def test_hash_stable_for_equal_campaigns(self):
        make = lambda: Campaign.make(  # noqa: E731
            "demo", experiment="FIG1", zipped={"m": [2, 3], "t": [8, 27]}
        )
        assert make().campaign_hash() == make().campaign_hash()

    def test_hash_changes_with_grid(self):
        a = Campaign.make("demo", experiment="FIG1", axes={"m": [2]})
        b = Campaign.make("demo", experiment="FIG1", axes={"m": [3]})
        assert a.campaign_hash() != b.campaign_hash()

    def test_hash_changes_with_batch_size(self):
        a = Campaign.make("demo", experiment="FIG1", axes={"m": [2]})
        assert (
            a.campaign_hash()
            != a.replace(batch_size=2).campaign_hash()
        )

    def test_with_seeds_replaces_replicas(self):
        campaign = Campaign.make("demo", experiment="PROTO", seeds=(7, 11))
        reseeded = campaign.with_seeds((13,))
        assert [p.spec.root_seed for p in reseeded.points()] == [13]

    def test_batch_size_validated(self):
        with pytest.raises(ValueError, match="batch_size"):
            Campaign.make("demo", experiment="FIG1", batch_size=0)


class TestSerialisation:
    def test_round_trip(self):
        campaign = Campaign.make(
            "demo",
            experiment="FC",
            axes={"z": [4, 8]},
            seeds=[7],
            params={"deadlines_ms": (2, 4)},
            batch_size=3,
            description="round trip",
        )
        clone = Campaign.from_dict(campaign.to_dict())
        assert clone == campaign
        assert clone.campaign_hash() == campaign.campaign_hash()

    def test_load_from_json_file(self, tmp_path):
        doc = {
            "name": "file-campaign",
            "experiment": "FIG1",
            "zip": {"m": [2, 3], "t": [8, 27]},
            "batch_size": 2,
        }
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(doc))
        campaign = Campaign.load(path)
        assert campaign.name == "file-campaign"
        assert campaign.grid.size == 2

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign key"):
            Campaign.from_dict({"name": "x", "bogus": 1})

    def test_nameless_rejected(self):
        with pytest.raises(ValueError, match="name"):
            Campaign.from_dict({"experiment": "FIG1"})


class TestBuiltins:
    def test_ports_of_the_hand_rolled_sweeps_registered(self):
        campaigns = builtin_campaigns()
        assert "fc-frontier" in campaigns
        assert "proto-seeds" in campaigns

    def test_fc_frontier_sweeps_z(self):
        campaign = builtin_campaigns()["fc-frontier"]
        assert campaign.experiment == "FC"
        zs = [p.spec.kwargs()["z"] for p in campaign.points()]
        assert zs == [4, 8, 16]

    def test_proto_seeds_replicates_the_full_comparison(self):
        campaign = builtin_campaigns()["proto-seeds"]
        assert campaign.experiment == "PROTO"
        # Scale is never an axis: the PROTO cross-scale checks only hold
        # over the whole scale set, so replicas vary the seed instead.
        assert [p.spec.kwargs() for p in campaign.points()] == [{}] * 3
        assert [p.spec.root_seed for p in campaign.points()] == [7, 11, 13]
