"""Sweep campaign tests."""
