"""Checkpoint/resume: zero resubmissions and byte-identical aggregates."""

from __future__ import annotations

import json

import pytest

from repro.net.engine import use_engine
from repro.runtime.cache import ResultCache
from repro.sweep import Campaign, JournalMismatch, run_campaign


def fig1_campaign(batch_size: int = 1) -> Campaign:
    # FIG1 needs t to be a power of m, so the shapes are a zipped axis.
    return Campaign.make(
        "resume-fig1",
        experiment="FIG1",
        zipped={"m": (2, 2, 3, 3), "t": (8, 16, 9, 27)},
        batch_size=batch_size,
    )


class TestResume:
    def test_killed_then_resumed_matches_uninterrupted_run(self, tmp_path):
        campaign = fig1_campaign()
        journal = tmp_path / "campaign.journal.jsonl"
        cache = ResultCache(tmp_path / "cache")

        # The reference: one uninterrupted run against its own cache.
        reference = run_campaign(
            campaign, cache=ResultCache(tmp_path / "ref-cache")
        )
        assert reference.complete and reference.ok

        # "Kill" the campaign after two of four shards...
        partial = run_campaign(
            campaign, cache=cache, journal_path=journal, max_shards=2
        )
        assert not partial.complete
        assert partial.executed_shards == 2
        assert len(partial.outcomes) == 2

        # ...then resume: the journaled shards replay from the cache
        # without a single executor submission.
        resumed = run_campaign(
            campaign, cache=cache, journal_path=journal, resume=True
        )
        assert resumed.complete and resumed.ok
        assert resumed.replayed_shards == 2
        assert resumed.executed_shards == 2
        assert resumed.submissions == 2  # only the never-run shards
        assert resumed.aggregate_json() == reference.aggregate_json()

    def test_fully_journaled_resume_resubmits_nothing(self, tmp_path):
        campaign = fig1_campaign(batch_size=2)
        journal = tmp_path / "campaign.journal.jsonl"
        cache = ResultCache(tmp_path / "cache")

        cold = run_campaign(campaign, cache=cache, journal_path=journal)
        assert cold.complete and cold.submissions == 4

        resumed = run_campaign(
            campaign, cache=cache, journal_path=journal, resume=True
        )
        assert resumed.submissions == 0
        assert resumed.executed_shards == 0
        assert resumed.replayed_shards == resumed.total_shards == 2
        assert all(o.source == "journal" for o in resumed.outcomes)
        assert resumed.aggregate_json() == cold.aggregate_json()

    def test_resume_without_journal_file_degrades_to_fresh_run(
        self, tmp_path
    ):
        campaign = fig1_campaign(batch_size=4)
        result = run_campaign(
            campaign,
            cache=ResultCache(tmp_path / "cache"),
            journal_path=tmp_path / "never-written.jsonl",
            resume=True,
        )
        assert result.complete
        assert result.replayed_shards == 0
        assert result.executed_shards == 1

    def test_cache_eviction_falls_back_to_re_execution(self, tmp_path):
        campaign = fig1_campaign(batch_size=2)
        journal = tmp_path / "campaign.journal.jsonl"
        cache = ResultCache(tmp_path / "cache")
        cold = run_campaign(campaign, cache=cache, journal_path=journal)

        # Evict one journaled point: its shard must re-run, the other
        # still replays, and the aggregate is unchanged.
        cache.path_for(campaign.points()[0].spec).unlink()
        resumed = run_campaign(
            campaign, cache=cache, journal_path=journal, resume=True
        )
        assert resumed.complete
        assert resumed.replayed_shards == 1
        assert resumed.executed_shards == 1
        assert resumed.aggregate_json() == cold.aggregate_json()

    def test_truncated_journal_tail_is_skipped(self, tmp_path):
        campaign = fig1_campaign()
        journal = tmp_path / "campaign.journal.jsonl"
        cache = ResultCache(tmp_path / "cache")
        run_campaign(campaign, cache=cache, journal_path=journal)

        # Simulate a crash mid-append: chop the last line in half.
        text = journal.read_text()
        journal.write_text(text[: len(text) - 25])
        resumed = run_campaign(
            campaign, cache=cache, journal_path=journal, resume=True
        )
        assert resumed.complete
        assert resumed.replayed_shards == 3
        assert resumed.executed_shards == 1

    def test_stale_journal_is_rejected(self, tmp_path):
        journal = tmp_path / "campaign.journal.jsonl"
        cache = ResultCache(tmp_path / "cache")
        run_campaign(
            fig1_campaign(), cache=cache, journal_path=journal
        )
        # Same journal, different grid: the campaign hash no longer
        # matches, so resuming must refuse rather than replay garbage.
        edited = Campaign.make(
            "resume-fig1",
            experiment="FIG1",
            zipped={"m": (2, 2), "t": (8, 16)},
        )
        with pytest.raises(JournalMismatch):
            run_campaign(
                edited, cache=cache, journal_path=journal, resume=True
            )

    def test_resume_needs_journal_and_cache(self, tmp_path):
        with pytest.raises(ValueError, match="journal_path"):
            run_campaign(
                fig1_campaign(),
                cache=ResultCache(tmp_path / "cache"),
                resume=True,
            )
        with pytest.raises(ValueError, match="cache"):
            run_campaign(
                fig1_campaign(),
                journal_path=tmp_path / "j.jsonl",
                resume=True,
            )


class TestEngineIdentity:
    def test_aggregate_is_byte_identical_across_engines(self, tmp_path):
        # The acceptance bar: same campaign, both engines, separate
        # caches — the deterministic aggregate must not move a byte.
        campaign = Campaign.make(
            "proto-engine-pair",
            experiment="PROTO",
            seeds=(7,),
            batch_size=1,
        )
        aggregates = {}
        for engine in ("des", "fastloop"):
            with use_engine(engine):
                result = run_campaign(
                    campaign,
                    cache=ResultCache(tmp_path / f"cache-{engine}"),
                    journal_path=tmp_path / f"{engine}.journal.jsonl",
                )
            assert result.complete and result.ok
            aggregates[engine] = result.aggregate_json()
        assert aggregates["des"] == aggregates["fastloop"]
        # Sanity: the aggregate actually carries content to compare.
        doc = json.loads(aggregates["des"])
        assert doc["points"] and doc["axes"]
