"""The sweep CLI: listing, running, resuming, exit codes, artifacts."""

from __future__ import annotations

import json

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.sweep.cli import main as sweep_main


@pytest.fixture()
def campaign_file(tmp_path):
    doc = {
        "name": "cli-fig1",
        "experiment": "FIG1",
        "zip": {"m": [2, 2], "t": [8, 16]},
        "batch_size": 1,
    }
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(doc))
    return path


def run_cli(campaign_file, tmp_path, *extra):
    return sweep_main(
        [str(campaign_file), "--cache-dir", str(tmp_path / "cache"), *extra]
    )


class TestListing:
    def test_bare_invocation_lists_builtins(self, capsys):
        assert sweep_main([]) == 0
        out = capsys.readouterr().out
        assert "fc-frontier" in out
        assert "proto-seeds" in out

    def test_list_flag(self, capsys):
        assert sweep_main(["--list"]) == 0
        assert "registered campaigns" in capsys.readouterr().out

    def test_experiments_module_dispatches_sweep(self, capsys):
        assert experiments_main(["sweep", "--list"]) == 0
        assert "fc-frontier" in capsys.readouterr().out


class TestRunning:
    def test_run_from_json_file(self, campaign_file, tmp_path, capsys):
        assert run_cli(campaign_file, tmp_path) == 0
        out = capsys.readouterr().out
        assert "cli-fig1" in out
        assert "points: 2/2" in out

    def test_json_and_csv_artifacts(self, campaign_file, tmp_path, capsys):
        agg = tmp_path / "agg.json"
        csv = tmp_path / "table.csv"
        code = run_cli(
            campaign_file, tmp_path, "--json", str(agg), "--csv", str(csv)
        )
        assert code == 0
        doc = json.loads(agg.read_text())
        assert doc["campaign"] == "cli-fig1"
        assert len(doc["points"]) == 2
        assert csv.read_text().count("\n") >= 3  # header + 2 rows

    def test_telemetry_manifests_written(
        self, campaign_file, tmp_path, capsys
    ):
        sink = tmp_path / "telemetry.jsonl"
        assert run_cli(campaign_file, tmp_path, "--telemetry", str(sink)) == 0
        lines = sink.read_text().splitlines()
        assert len(lines) == 2

    def test_batch_size_override(self, campaign_file, tmp_path, capsys):
        assert run_cli(campaign_file, tmp_path, "--batch-size", "2") == 0
        assert "1 total" in capsys.readouterr().out


class TestResumeFlow:
    def test_max_shards_exits_incomplete_then_resume_finishes(
        self, campaign_file, tmp_path, capsys
    ):
        assert run_cli(campaign_file, tmp_path, "--max-shards", "1") == 3
        assert "INCOMPLETE" in capsys.readouterr().out
        assert run_cli(campaign_file, tmp_path, "--resume") == 0
        err = capsys.readouterr().err
        # One shard replayed from the journal, one executed fresh.
        assert "0 executed" not in err

    def test_resumed_aggregate_matches_uninterrupted(
        self, campaign_file, tmp_path, capsys
    ):
        cold = tmp_path / "cold.json"
        resumed = tmp_path / "resumed.json"
        other = tmp_path / "other-cache"
        assert sweep_main(
            [
                str(campaign_file),
                "--cache-dir",
                str(other),
                "--json",
                str(cold),
            ]
        ) == 0
        assert run_cli(campaign_file, tmp_path, "--max-shards", "1") == 3
        assert (
            run_cli(
                campaign_file, tmp_path, "--resume", "--json", str(resumed)
            )
            == 0
        )
        assert resumed.read_bytes() == cold.read_bytes()

    def test_stale_journal_exits_2(self, campaign_file, tmp_path, capsys):
        assert run_cli(campaign_file, tmp_path) == 0
        edited = json.loads(campaign_file.read_text())
        edited["zip"] = {"m": [2], "t": [8]}
        campaign_file.write_text(json.dumps(edited))
        assert run_cli(campaign_file, tmp_path, "--resume") == 2
        assert "error:" in capsys.readouterr().err


class TestValidation:
    def test_unknown_campaign_name(self, capsys):
        with pytest.raises(SystemExit):
            sweep_main(["no-such-campaign"])
        assert "unknown campaign" in capsys.readouterr().err

    def test_unknown_experiment_in_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "bad", "experiment": "NOPE"}))
        with pytest.raises(SystemExit):
            sweep_main([str(path)])
        assert "unknown experiment" in capsys.readouterr().err

    def test_seed_on_seedless_experiment(self, tmp_path, capsys):
        path = tmp_path / "seedless.json"
        path.write_text(json.dumps({"name": "s", "experiment": "FIG1"}))
        with pytest.raises(SystemExit):
            sweep_main([str(path), "--seed", "3"])
        assert "takes no seed" in capsys.readouterr().err

    def test_resume_requires_cache(self, campaign_file, capsys):
        with pytest.raises(SystemExit):
            sweep_main([str(campaign_file), "--resume", "--no-cache"])
        assert "--no-cache" in capsys.readouterr().err

    def test_resume_requires_journal(self, campaign_file, tmp_path, capsys):
        with pytest.raises(SystemExit):
            run_cli(campaign_file, tmp_path, "--resume", "--no-journal")
        assert "--no-journal" in capsys.readouterr().err
