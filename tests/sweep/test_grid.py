"""Grid expansion: ordering, zipped axes, seeds, serialisation."""

from __future__ import annotations

import pytest

from repro.sweep import Grid


class TestExpansion:
    def test_cartesian_order_first_axis_outermost(self):
        grid = Grid.make(axes={"a": [1, 2], "b": [10, 20]})
        assert grid.points() == [
            {"a": 1, "b": 10},
            {"a": 1, "b": 20},
            {"a": 2, "b": 10},
            {"a": 2, "b": 20},
        ]

    def test_zipped_axes_vary_together(self):
        grid = Grid.make(zipped={"m": [2, 3], "t": [8, 27]})
        assert grid.points() == [{"m": 2, "t": 8}, {"m": 3, "t": 27}]

    def test_seeds_are_the_innermost_axis(self):
        grid = Grid.make(axes={"z": [4, 8]}, seeds=[7, 11])
        assert grid.points() == [
            {"z": 4, "seed": 7},
            {"z": 4, "seed": 11},
            {"z": 8, "seed": 7},
            {"z": 8, "seed": 11},
        ]

    def test_cartesian_times_zip_times_seeds(self):
        grid = Grid.make(
            axes={"a": [1, 2]},
            zipped={"m": [2, 3], "t": [8, 27]},
            seeds=[5],
        )
        assert grid.size == 4
        assert grid.points() == [
            {"a": 1, "m": 2, "t": 8, "seed": 5},
            {"a": 1, "m": 3, "t": 27, "seed": 5},
            {"a": 2, "m": 2, "t": 8, "seed": 5},
            {"a": 2, "m": 3, "t": 27, "seed": 5},
        ]

    def test_empty_grid_is_one_point(self):
        assert Grid.make().points() == [{}]
        assert Grid.make().size == 1

    def test_axis_names_in_point_order(self):
        grid = Grid.make(
            axes={"a": [1]}, zipped={"b": [2]}, seeds=[3]
        )
        assert grid.axis_names() == ("a", "b", "seed")

    def test_expansion_is_deterministic(self):
        grid = Grid.make(axes={"x": [3, 1, 2]}, seeds=[9, 8])
        assert grid.points() == grid.points()

    def test_values_are_frozen(self):
        grid = Grid.make(axes={"shapes": [[[2, 8]], [[2, 16]]]})
        (point_a, point_b) = grid.points()
        assert point_a["shapes"] == ((2, 8),)
        assert point_b["shapes"] == ((2, 16),)


class TestValidation:
    def test_zipped_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            Grid.make(zipped={"a": [1, 2], "b": [1]})

    def test_duplicate_axis_across_kinds(self):
        with pytest.raises(ValueError, match="declared twice"):
            Grid.make(axes={"a": [1]}, zipped={"a": [2]})

    def test_seed_axis_is_reserved(self):
        with pytest.raises(ValueError, match="implicit"):
            Grid.make(axes={"seed": [1, 2]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            Grid.make(axes={"a": []})

    def test_scalar_axis_value_rejected(self):
        with pytest.raises(TypeError, match="sequence"):
            Grid.make(axes={"a": 3})

    def test_string_axis_value_rejected(self):
        # A string is iterable but almost never means per-character axes.
        with pytest.raises(TypeError, match="sequence"):
            Grid.make(axes={"a": "abc"})

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError, match="seeds must be ints"):
            Grid.make(seeds=[1.5])

    def test_unfreezable_value_rejected(self):
        with pytest.raises(TypeError, match="unsupported"):
            Grid.make(axes={"a": [object()]})


class TestSerialisation:
    def test_round_trip(self):
        grid = Grid.make(
            axes={"z": [4, 8]},
            zipped={"m": [2, 3], "t": [8, 27]},
            seeds=[7, 11],
        )
        assert Grid.from_dict(grid.to_dict()) == grid

    def test_round_trip_preserves_expansion(self):
        grid = Grid.make(axes={"shapes": [[[2, 8]]]}, seeds=[1])
        clone = Grid.from_dict(grid.to_dict())
        assert clone.points() == grid.points()

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown grid key"):
            Grid.from_dict({"axes": {}, "bogus": 1})
