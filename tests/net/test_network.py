"""Tests for the NetworkSimulation orchestration layer."""

from __future__ import annotations

from repro.model.arrival import PeriodicArrivals
from repro.model.workloads import uniform_problem
from repro.net.network import NetworkSimulation
from repro.net.phy import ideal_medium
from repro.protocols.csma_cd import CSMACDProtocol
from repro.protocols.ddcr.config import DDCRConfig
from repro.protocols.ddcr.protocol import DDCRProtocol

_MS = 1_000_000


def _ddcr_factory(problem):
    config = DDCRConfig(
        time_f=64,
        time_m=4,
        class_width=max(1, 2 * 10 * _MS // 64),
        static_q=problem.static_q,
        static_m=problem.static_m,
        theta_factor=1.0,
    )
    return lambda source: DDCRProtocol(config)


class TestRun:
    def test_default_adversary_arrivals(self):
        problem = uniform_problem(z=4, deadline=10 * _MS, a=1, w=5 * _MS)
        simulation = NetworkSimulation(
            problem, ideal_medium(slot_time=512), _ddcr_factory(problem)
        )
        result = simulation.run(20 * _MS)
        # Greedy adversary: one arrival per window per class.
        assert result.delivered == 4 * 4
        assert result.dropped == 0

    def test_explicit_arrival_override(self):
        problem = uniform_problem(z=2, deadline=10 * _MS, a=1, w=5 * _MS)
        simulation = NetworkSimulation(
            problem,
            ideal_medium(slot_time=512),
            _ddcr_factory(problem),
            arrivals={"uniform-0": PeriodicArrivals(period=2 * _MS)},
        )
        result = simulation.run(10 * _MS)
        by_class = {}
        for record in result.completions:
            name = record.message.msg_class.name
            by_class[name] = by_class.get(name, 0) + 1
        assert by_class["uniform-0"] == 5
        assert by_class["uniform-1"] == 2

    def test_completions_sorted_by_time(self):
        problem = uniform_problem(z=4, deadline=10 * _MS, a=1, w=5 * _MS)
        simulation = NetworkSimulation(
            problem, ideal_medium(slot_time=512), _ddcr_factory(problem)
        )
        result = simulation.run(20 * _MS)
        times = [record.completion for record in result.completions]
        assert times == sorted(times)

    def test_per_station_protocol_instances(self):
        problem = uniform_problem(z=3, deadline=10 * _MS)
        built = []

        def factory(source):
            mac = CSMACDProtocol(seed=source.source_id)
            built.append(mac)
            return mac

        simulation = NetworkSimulation(
            problem, ideal_medium(slot_time=512), factory
        )
        result = simulation.run(5 * _MS)
        assert len(built) == 3
        assert len({id(mac) for mac in built}) == 3
        assert [s.mac for s in result.stations] == built

    def test_backlog_reported(self):
        # Horizon too short for everything to drain.
        problem = uniform_problem(
            z=8, length=500_000, deadline=50 * _MS, a=2, w=5 * _MS
        )
        simulation = NetworkSimulation(
            problem, ideal_medium(slot_time=512), _ddcr_factory(problem)
        )
        result = simulation.run(6 * _MS)
        assert len(result.backlog()) > 0

    def test_utilization_matches_stats(self):
        problem = uniform_problem(z=2, deadline=10 * _MS)
        simulation = NetworkSimulation(
            problem, ideal_medium(slot_time=512), _ddcr_factory(problem)
        )
        result = simulation.run(10 * _MS)
        assert result.utilization() == result.stats.utilization(10 * _MS)
