"""Differential tests: all three engines are byte-identical.

The slot-loop fast path (:meth:`BroadcastChannel.run_fast`) and the
struct-of-arrays batch kernel (:meth:`BroadcastChannel.run_batch`) must
be indistinguishable from the general DES by results: same
:class:`ChannelStats`, same completion records, same trace stream, same
final clock — across protocols, noise, jamming, bursting, and the
automatic fallback paths (foreign processes at entry and mid-run,
structural batch ineligibility).
"""

from __future__ import annotations

import itertools
import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.models import (
    BabblingStation,
    ClockDrift,
    FaultPlan,
    GilbertElliottNoise,
    StationCrash,
)
from repro.model.arrival import GreedyBurstArrivals
from repro.model.workloads import uniform_problem
from repro.net.channel import BroadcastChannel
from repro.net.dualbus import DualBusSimulation, suggested_jam_threshold
from repro.net.engine import resolve_engine, use_engine
from repro.net.network import NetworkSimulation
from repro.net.phy import ideal_medium
from repro.net.station import Station
from repro.protocols.base import MACProtocol
from repro.protocols.csma_cd import CSMACDProtocol
from repro.protocols.ddcr import DDCRConfig, DDCRProtocol
from repro.protocols.tdma import TDMAProtocol
from repro.sim.engine import Environment
from repro.sim.trace import TraceLog

ENGINES = ("des", "fastloop", "batch")
_HORIZON = 250_000


def _ddcr_config(problem, burst_limit=0):
    return DDCRConfig(
        time_f=16,
        time_m=2,
        class_width=65_536,
        static_q=problem.static_q,
        static_m=problem.static_m,
        burst_limit=burst_limit,
    )


def _protocol_factory(protocol: str, problem, burst_limit=0):
    if protocol == "ddcr":
        config = _ddcr_config(problem, burst_limit)
        return lambda source: DDCRProtocol(config)
    if protocol == "csma_cd":
        return lambda source: CSMACDProtocol(seed=source.source_id)
    roster = tuple(source.source_id for source in problem.sources)
    return lambda source: TDMAProtocol(roster)


def _snapshot(stats, completions, trace):
    """Picklable byte-for-byte digest of one run's observable output."""
    return pickle.dumps((stats, completions, list(trace.records())))


def _run_network(
    engine, protocol, z=6, noise=0.0, burst_limit=0, seed=0,
    faults=None, horizon=_HORIZON,
):
    problem = uniform_problem(
        z=z, length=1_000, deadline=400_000, a=1, w=200_000
    )
    simulation = NetworkSimulation(
        problem,
        ideal_medium(slot_time=64),
        protocol_factory=_protocol_factory(protocol, problem, burst_limit),
        trace=True,
        noise_rate=noise,
        noise_seed=seed,
        root_seed=seed,
        engine=engine,
        faults=faults,
        monitors=None if faults is not None else False,
    )
    result = simulation.run(horizon)
    return pickle.dumps(
        (
            result.stats,
            result.completions,
            list(result.trace.records()),
            result.invariants,
        )
    )


@pytest.mark.parametrize("protocol", ["ddcr", "csma_cd", "tdma"])
@pytest.mark.parametrize("noise", [0.0, 0.02])
def test_engines_identical_across_protocols(protocol, noise):
    """Stats, completions and traces match byte-for-byte, noise or not."""
    runs = [_run_network(engine, protocol, noise=noise) for engine in ENGINES]
    assert len(set(runs)) == 1


def test_engines_identical_with_bursting():
    """DDCR packet bursting (section 5) follows the same slot sequence."""
    runs = [
        _run_network(engine, "ddcr", noise=0.01, burst_limit=3_000)
        for engine in ENGINES
    ]
    assert len(set(runs)) == 1


def _run_manual_channel(engine, jam_from=None, noise=0.0):
    """Hand-built channel (no NetworkSimulation) with optional jamming."""
    problem = uniform_problem(
        z=5, length=1_000, deadline=400_000, a=1, w=200_000
    )
    config = _ddcr_config(problem)
    env = Environment()
    trace = TraceLog(enabled=True)
    channel = BroadcastChannel(
        env,
        ideal_medium(slot_time=64),
        trace=trace,
        noise_rate=noise,
        noise_seed=11,
    )
    seq_source = itertools.count()
    stations = []
    for source in problem.sources:
        station = Station(
            station_id=source.source_id,
            mac=DDCRProtocol(config),
            static_indices=source.static_indices,
            seq_source=seq_source,
        )
        for msg_class in source.message_classes:
            station.load_arrivals(
                msg_class, GreedyBurstArrivals(bound=msg_class.bound), _HORIZON
            )
        channel.attach(station)
        stations.append(station)
    channel.jam_from = jam_from
    # The unified entry point owns the dispatch for all three engines.
    channel.run(_HORIZON, engine=engine)
    assert env.now == _HORIZON
    completions = [
        record for station in stations for record in station.completions
    ]
    return _snapshot(channel.stats, completions, trace)


@pytest.mark.parametrize("noise", [0.0, 0.03])
def test_engines_identical_under_mid_run_jamming(noise):
    """A bus jammed from mid-run on: every later slot collides, identically."""
    runs = [
        _run_manual_channel(engine, jam_from=_HORIZON // 2, noise=noise)
        for engine in ENGINES
    ]
    assert len(set(runs)) == 1


class _ForeignRegistrar(MACProtocol):
    """Wrapper MAC that registers a foreign DES process mid-run.

    Forces the fast loop onto its mid-run rejoin path: after
    ``trigger_after`` observed slots, it schedules an unrelated ticker
    process on the environment, exactly as a host extension would.
    """

    def __init__(self, inner, env, ticks, trigger_after=40):
        super().__init__()
        self.inner = inner
        self._env = env
        self._ticks = ticks
        self._remaining = trigger_after

    def attach(self, station):
        super().attach(station)
        self.inner.attach(station)

    def offer(self, now):
        return self.inner.offer(now)

    def suppress_offer(self):
        self.inner.suppress_offer()

    def observe(self, observation):
        self.inner.observe(observation)
        if self._remaining > 0:
            self._remaining -= 1
            if self._remaining == 0:
                self._env.process(self._ticker())

    def _ticker(self):
        for _ in range(5):
            yield self._env.timeout(10_000)
            self._ticks.append(self._env.now)

    def wants_burst_continuation(self, now):
        return self.inner.wants_burst_continuation(now)

    def contention_tag(self, now):
        return self.inner.contention_tag(now)

    def public_state(self):
        return self.inner.public_state()


def _run_with_foreign_process(engine):
    problem = uniform_problem(
        z=4, length=1_000, deadline=400_000, a=1, w=200_000
    )
    config = _ddcr_config(problem)
    env = Environment()
    trace = TraceLog(enabled=True)
    channel = BroadcastChannel(
        env, ideal_medium(slot_time=64), trace=trace
    )
    seq_source = itertools.count()
    ticks: list[float] = []
    stations = []
    for position, source in enumerate(problem.sources):
        mac = DDCRProtocol(config)
        if position == 0:
            mac = _ForeignRegistrar(mac, env, ticks)
        station = Station(
            station_id=source.source_id,
            mac=mac,
            static_indices=source.static_indices,
            seq_source=seq_source,
        )
        for msg_class in source.message_classes:
            station.load_arrivals(
                msg_class, GreedyBurstArrivals(bound=msg_class.bound), _HORIZON
            )
        channel.attach(station)
        stations.append(station)
    # Station 0's MAC is a wrapper type, so under ``batch`` the kernel
    # structurally falls back (through the fast loop, into the mid-run
    # DES rejoin); the unified entry point hides all of that.
    channel.run(_HORIZON, engine=engine)
    assert env.now == _HORIZON
    completions = [
        record for station in stations for record in station.completions
    ]
    return ticks, _snapshot(channel.stats, completions, trace)


def test_fast_loop_rejoins_des_mid_run():
    """A foreign process appearing mid-run is interleaved identically."""
    des_ticks, des_run = _run_with_foreign_process("des")
    fast_ticks, fast_run = _run_with_foreign_process("fastloop")
    batch_ticks, batch_run = _run_with_foreign_process("batch")
    assert len(des_ticks) == len(fast_ticks) == 5  # ticker actually ran
    assert des_ticks == fast_ticks == batch_ticks
    assert des_run == fast_run == batch_run


def _run_dualbus(engine):
    problem = uniform_problem(
        z=4, length=1_000, deadline=400_000, a=1, w=200_000
    )
    config = _ddcr_config(problem)
    simulation = DualBusSimulation(
        problem,
        ideal_medium(slot_time=64),
        protocol_factory=lambda source: DDCRProtocol(config),
        jam_threshold=suggested_jam_threshold(config),
        fail_bus_at=_HORIZON // 3,
        trace=True,
        engine=engine,
    )
    result = simulation.run(_HORIZON)
    return pickle.dumps(
        (
            result.bus_stats,
            result.failovers,
            result.completions,
            [list(trace.records()) for trace in result.traces],
        )
    )


def test_dualbus_engine_fallback_is_identical():
    """Two channels on one clock: fastloop and batch must fall back to
    the DES and still produce byte-identical results (failover included)."""
    assert _run_dualbus("des") == _run_dualbus("fastloop") == _run_dualbus("batch")


def test_seed_randomized_engine_equivalence():
    """Random z / noise / protocol / seed combos agree across engines."""
    rng = random.Random(0xDDC2)
    for _ in range(8):
        protocol = rng.choice(["ddcr", "csma_cd", "tdma"])
        z = rng.randint(2, 10)
        noise = rng.choice([0.0, 0.005, 0.02, 0.05])
        burst = rng.choice([0, 3_000]) if protocol == "ddcr" else 0
        seed = rng.randint(0, 2**31)
        runs = [
            _run_network(
                engine, protocol, z=z, noise=noise, burst_limit=burst,
                seed=seed,
            )
            for engine in ENGINES
        ]
        assert len(set(runs)) == 1, (protocol, z, noise, burst, seed)


def test_same_engine_repetition_is_deterministic():
    """Two identical runs on one engine are byte-identical (run-local
    sequence numbers: no process-global state leaks into results)."""
    for engine in ENGINES:
        assert _run_network(engine, "ddcr", noise=0.01) == _run_network(
            engine, "ddcr", noise=0.01
        )


@settings(max_examples=15)
@given(
    protocol=st.sampled_from(["ddcr", "csma_cd", "tdma"]),
    noise=st.sampled_from([0.0, 0.02]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_empty_fault_plan_is_byte_identical_to_fault_free(
    protocol, noise, seed
):
    """An empty FaultPlan must be indistinguishable from no plan at all —
    same RNG draw order, same results — under both engines.  (This is the
    premise that lets RunSpec normalise empty plans to fault-free hashes.)"""
    for engine in ENGINES:
        plain = _run_network(
            engine, protocol, z=3, noise=noise, seed=seed, horizon=60_000
        )
        empty = _run_network(
            engine, protocol, z=3, noise=noise, seed=seed, horizon=60_000,
            faults=FaultPlan(),
        )
        assert plain == empty


_FAULT_POOL = (
    FaultPlan((GilbertElliottNoise(
        p_enter_bad=0.002, p_exit_bad=0.05, bad_rate=0.5),)),
    FaultPlan((StationCrash(station_id=0, at=40_000, restart_at=120_000),)),
    FaultPlan((BabblingStation(start=40_000, stop=60_000, period=8),)),
    FaultPlan((ClockDrift(station_id=0, skew_per_slot=4.0),)),
    FaultPlan((
        GilbertElliottNoise(p_enter_bad=0.002, p_exit_bad=0.05, bad_rate=0.5),
        StationCrash(station_id=1, at=40_000, restart_at=120_000),
    )),
)


def test_seed_randomized_faulted_equivalence():
    """Random (plan, protocol, seed) combos agree across engines — stats,
    completions, traces AND invariant-violation reports byte-for-byte."""
    rng = random.Random(0xFA017)
    for _ in range(6):
        plan = rng.choice(_FAULT_POOL)
        protocol = rng.choice(["ddcr", "tdma"])
        seed = rng.randint(0, 2**31)
        runs = [
            _run_network(engine, protocol, seed=seed, faults=plan)
            for engine in ENGINES
        ]
        assert len(set(runs)) == 1, (plan, protocol, seed)


def _run_telemetry(engine, protocol="ddcr", noise=0.0, seed=0, faults=None):
    from repro.obs.instruments import Telemetry

    problem = uniform_problem(
        z=6, length=1_000, deadline=400_000, a=1, w=200_000
    )
    simulation = NetworkSimulation(
        problem,
        ideal_medium(slot_time=64),
        protocol_factory=_protocol_factory(protocol, problem),
        noise_rate=noise,
        noise_seed=seed,
        root_seed=seed,
        engine=engine,
        faults=faults,
        monitors=False if faults is None else None,
        telemetry=Telemetry(),
    )
    manifest = simulation.run(_HORIZON).telemetry
    assert manifest is not None
    return manifest


@pytest.mark.parametrize("protocol", ["ddcr", "csma_cd", "tdma"])
def test_telemetry_identical_across_engines(protocol):
    """The deterministic manifest projection — counters, gauges,
    histograms, span structure — is byte-identical across engines.
    (Wall-clock span durations and the engine label are excluded by
    :meth:`RunTelemetry.content_json`; they describe how the run was
    driven, not what it computed.)"""
    des, fast, batch = (
        _run_telemetry(engine, protocol, noise=0.01) for engine in ENGINES
    )
    assert des.content_json() == fast.content_json() == batch.content_json()
    assert des.engine == "des" and fast.engine == "fastloop"
    assert batch.engine == "batch"
    if protocol == "ddcr":
        # Eligible run: the kernel itself executed (the note is only
        # non-None when numpy is missing and the pure-Python twin ran).
        from repro.net.engine import batch_capability

        assert batch.engine_fallback == batch_capability()
    else:
        # Foreign MAC types: structural fallback, reason recorded.
        assert "batch engine unavailable" in batch.engine_fallback


def test_telemetry_identical_across_engines_under_faults():
    """Fault-gate fire counters and faulted slot outcomes agree too."""
    plan = _FAULT_POOL[4]  # burst noise + crash/restart
    des, fast, batch = (
        _run_telemetry(engine, "ddcr", seed=7, faults=plan)
        for engine in ENGINES
    )
    assert des.content_json() == fast.content_json() == batch.content_json()
    assert des.counters["faults/crash"] == 1
    assert des.counters["faults/restart"] == 1
    assert des.fault_plan is not None
    # An armed injector is structurally ineligible for the batch kernel:
    # the run fell back and the manifest says why.
    assert "fault injector armed" in batch.engine_fallback
    assert des.engine_fallback is None and fast.engine_fallback is None


def test_dualbus_telemetry_identical_across_engines():
    """Per-bus instrument namespaces survive the dual-bus DES fallback."""
    from repro.obs.instruments import Telemetry

    def run(engine):
        problem = uniform_problem(
            z=4, length=1_000, deadline=400_000, a=1, w=200_000
        )
        config = _ddcr_config(problem)
        simulation = DualBusSimulation(
            problem,
            ideal_medium(slot_time=64),
            protocol_factory=lambda source: DDCRProtocol(config),
            jam_threshold=suggested_jam_threshold(config),
            fail_bus_at=_HORIZON // 3,
            engine=engine,
            telemetry=Telemetry(),
        )
        manifest = simulation.run(_HORIZON).telemetry
        assert manifest is not None
        return manifest

    des, fast, batch = (run(engine) for engine in ENGINES)
    assert des.content_json() == fast.content_json() == batch.content_json()
    assert des.counters["bus0/slots/success"] > 0
    assert des.counters["bus1/slots/success"] > 0
    assert des.gauges["failovers"] >= 1
    # Dual-bus shares one clock between two channels, so batch falls
    # back at entry (bus A's process is pending) and the manifest says so.
    assert "batch engine unavailable" in batch.engine_fallback


def test_engine_resolution_and_scoping():
    """`auto` resolves through the scoped default; bad names are rejected."""
    assert resolve_engine("des") == "des"
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine("warp")
    with pytest.raises(ValueError, match="unknown engine"):
        NetworkSimulation(
            uniform_problem(z=2),
            ideal_medium(slot_time=64),
            protocol_factory=lambda s: CSMACDProtocol(),
            engine="warp",
        )
    before = resolve_engine(None)
    with use_engine("des"):
        assert resolve_engine(None) == "des"
    assert resolve_engine(None) == before
