"""Tests for the 802.1p deadline-priority bridging."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.message import DensityBound, MessageClass
from repro.net.dot1q import DEFAULT_PRIORITY_MAP, PriorityMap


class TestEncode:
    def test_most_urgent_is_seven(self):
        assert DEFAULT_PRIORITY_MAP.encode(1) == 7
        assert DEFAULT_PRIORITY_MAP.encode(4_096) == 7

    def test_monotone_nonincreasing_in_deadline(self):
        pcp = [
            DEFAULT_PRIORITY_MAP.encode(d)
            for d in (1_000, 10_000, 100_000, 10**6, 10**8, 10**10)
        ]
        assert pcp == sorted(pcp, reverse=True)

    def test_long_deadlines_floor_at_zero(self):
        assert DEFAULT_PRIORITY_MAP.encode(10**12) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DEFAULT_PRIORITY_MAP.encode(0)
        with pytest.raises(ValueError):
            PriorityMap(min_deadline=0, ratio=2.0)
        with pytest.raises(ValueError):
            PriorityMap(min_deadline=10, ratio=1.0)


class TestDecode:
    def test_round_trip_never_shrinks_urgent_class(self):
        # pcp 7's representative is the band's upper edge.
        assert DEFAULT_PRIORITY_MAP.decode(7) == 4_096

    def test_decode_monotone(self):
        values = [DEFAULT_PRIORITY_MAP.decode(p) for p in range(8)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            DEFAULT_PRIORITY_MAP.decode(8)

    @given(st.integers(1, 10**10))
    def test_quantise_is_idempotent(self, deadline):
        once = DEFAULT_PRIORITY_MAP.quantise(deadline)
        assert DEFAULT_PRIORITY_MAP.quantise(once) == once

    @given(st.integers(1, 10**9))
    def test_quantise_bounded_relative_error(self, deadline):
        # Within the grid, the representative is within one ratio factor.
        quantised = DEFAULT_PRIORITY_MAP.quantise(deadline)
        if 4_096 <= deadline <= DEFAULT_PRIORITY_MAP.decode(1):
            assert deadline <= quantised <= deadline * 8


class TestOrderPreservation:
    @given(st.lists(st.integers(1, 10**9), min_size=2, max_size=20))
    def test_never_inverts(self, deadlines):
        # Quantisation may merge classes but must never invert them.
        assert DEFAULT_PRIORITY_MAP.preserves_order(deadlines)

    def test_merge_report(self):
        def cls(name, deadline):
            return MessageClass(
                name=name, length=100, deadline=deadline,
                bound=DensityBound(a=1, w=1000),
            )

        classes = [
            cls("a", 2_000),
            cls("b", 4_000),     # merges with a into pcp 7
            cls("c", 40_000),
        ]
        used = DEFAULT_PRIORITY_MAP.classes_used(classes)
        assert used[7] == ["a", "b"]
        assert any("c" in names for pcp, names in used.items() if pcp < 7)
