"""Tests for the broadcast channel and station plumbing."""

from __future__ import annotations

import pytest

from repro.model.arrival import PeriodicArrivals, TraceArrivals
from repro.net.channel import BroadcastChannel
from repro.net.phy import GIGABIT_ETHERNET, ideal_medium
from repro.net.station import CompletionRecord, Station
from repro.protocols.csma_cd import CSMACDProtocol
from repro.protocols.tdma import TDMAProtocol
from repro.sim.engine import Environment
from tests.protocols.conftest import make_class, run_network


class TestChannelAccounting:
    def test_slot_kinds_partition_rounds(self):
        macs = [CSMACDProtocol(seed=i) for i in range(3)]
        channel, _ = run_network(
            macs, {i: [0] for i in range(3)}, horizon=1_000_000,
            check_consistency=False,
        )
        stats = channel.stats
        assert (
            stats.silence_slots + stats.collision_slots + stats.successes
            == stats.rounds
        )
        assert stats.rounds == channel.observations

    def test_time_accounting_covers_horizon(self):
        macs = [TDMAProtocol((0,))]
        channel, _ = run_network(macs, {0: [0, 100]}, horizon=64_000)
        stats = channel.stats
        total = stats.busy_time + stats.idle_time + stats.collision_time
        # The last round may overshoot the horizon by < one duration.
        assert total >= 64_000

    def test_payload_counts_dl_pdu_bits(self):
        macs = [TDMAProtocol((0,))]
        cls = make_class(length=5_000)
        channel, _ = run_network(
            macs, {0: [0]}, horizon=500_000, msg_class=cls
        )
        assert channel.stats.payload_bits == 5_000

    def test_utilization_below_one(self):
        macs = [TDMAProtocol((0,))]
        channel, _ = run_network(
            macs, {0: [0, 1, 2]}, horizon=500_000
        )
        assert 0 < channel.stats.utilization(500_000) < 1

    def test_carrier_extension_on_destructive_media(self):
        # A short frame on GigE occupies at least one 4096-bit slot.
        macs = [TDMAProtocol((0,))]
        cls = make_class(length=100)
        channel, stations = run_network(
            macs, {0: [0]}, horizon=200_000, medium=GIGABIT_ETHERNET,
            msg_class=cls,
        )
        record = stations[0].completions[0]
        assert record.completion - record.started >= 4096

    def test_duplicate_station_rejected(self):
        env = Environment()
        channel = BroadcastChannel(env, ideal_medium())
        channel.attach(Station(0, CSMACDProtocol()))
        with pytest.raises(ValueError):
            channel.attach(Station(0, CSMACDProtocol()))

    def test_running_without_stations_rejected(self):
        env = Environment()
        channel = BroadcastChannel(env, ideal_medium())
        with pytest.raises(RuntimeError):
            channel.run(1000)

    def test_trace_records_slots(self):
        from repro.sim.trace import TraceLog

        env = Environment()
        trace = TraceLog()
        channel = BroadcastChannel(env, ideal_medium(slot_time=64), trace=trace)
        station = Station(0, TDMAProtocol((0,)))
        station.load_arrivals(make_class(), TraceArrivals(trace=(0,)), 10_000)
        channel.attach(station)
        env.process(channel.process(10_000))
        env.run(until=10_000)
        kinds = {record["state"] for record in trace.records("slot")}
        assert "success" in kinds


class TestStation:
    def test_deliver_due_moves_arrivals(self):
        station = Station(0, CSMACDProtocol())
        station.load_arrivals(
            make_class(), TraceArrivals(trace=(5, 10, 20)), horizon=100
        )
        assert station.deliver_due(10) == 2
        assert len(station.queue) == 2
        assert station.undelivered_arrivals == 1

    def test_periodic_loading(self):
        station = Station(0, CSMACDProtocol())
        loaded = station.load_arrivals(
            make_class(), PeriodicArrivals(period=100), horizon=1000
        )
        assert loaded == 10

    def test_complete_records_latency(self):
        station = Station(0, CSMACDProtocol())
        station.load_arrivals(make_class(), TraceArrivals(trace=(5,)), 100)
        station.deliver_due(5)
        message = station.queue.peek()
        station.complete(message, completion=500, started=400)
        record = station.completions[0]
        assert record.latency == 495
        assert record.started == 400
        assert not record.dropped

    def test_drop_records_miss(self):
        station = Station(0, CSMACDProtocol())
        station.add_arrival(make_class(deadline=10), 0)
        station.deliver_due(0)
        message = station.queue.peek()
        station.drop(message, when=50)
        record = station.completions[0]
        assert record.dropped
        assert not record.on_time

    def test_needs_static_index(self):
        with pytest.raises(ValueError):
            Station(0, CSMACDProtocol(), static_indices=())

    def test_backlog_snapshot(self):
        station = Station(0, CSMACDProtocol())
        station.add_arrival(make_class(), 0)
        station.add_arrival(make_class(), 0)
        station.deliver_due(0)
        assert len(station.backlog()) == 2


class TestCompletionRecord:
    def test_on_time_boundary(self):
        cls = make_class(deadline=100)
        from repro.model.message import MessageInstance

        message = MessageInstance.arrive(cls, 0, 0)
        exactly = CompletionRecord(message=message, completion=100, started=50)
        late = CompletionRecord(message=message, completion=101, started=50)
        assert exactly.on_time
        assert not late.on_time
