"""Tests for medium profiles and encapsulation."""

from __future__ import annotations

import pytest

from repro.net.phy import (
    ATM_BUS,
    CLASSIC_ETHERNET,
    GIGABIT_ETHERNET,
    MediumProfile,
    ideal_medium,
)
from repro.model.units import Throughput


class TestEncapsulation:
    @pytest.mark.parametrize(
        "medium", [GIGABIT_ETHERNET, CLASSIC_ETHERNET, ATM_BUS, ideal_medium()]
    )
    def test_l_prime_strictly_greater(self, medium):
        # The paper requires l'(msg) > l(msg) for every message.
        for length in (1, 64, 512, 12_000):
            assert medium.encapsulate(length) > length

    def test_minimum_frame_padding(self):
        # 64-byte minimum on Ethernet: tiny payloads pad up.
        tiny = GIGABIT_ETHERNET.encapsulate(8)
        small = GIGABIT_ETHERNET.encapsulate(300)
        assert tiny == small  # both below the minimum frame

    def test_big_frames_scale_linearly(self):
        a = GIGABIT_ETHERNET.encapsulate(10_000)
        b = GIGABIT_ETHERNET.encapsulate(20_000)
        assert b - a == 10_000

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            GIGABIT_ETHERNET.encapsulate(0)

    def test_transmission_time_equals_encapsulated_bits(self):
        assert GIGABIT_ETHERNET.transmission_time(
            1000
        ) == GIGABIT_ETHERNET.encapsulate(1000)


class TestProfiles:
    def test_gige_slot_is_512_bytes(self):
        assert GIGABIT_ETHERNET.slot_time == 4096
        assert GIGABIT_ETHERNET.destructive_collisions

    def test_classic_slot_is_512_bits(self):
        assert CLASSIC_ETHERNET.slot_time == 512

    def test_atm_bus_small_slot_nondestructive(self):
        assert ATM_BUS.slot_time <= 8
        assert not ATM_BUS.destructive_collisions

    def test_slot_seconds(self):
        assert GIGABIT_ETHERNET.slot_seconds() == pytest.approx(4.096e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            MediumProfile(
                name="bad",
                throughput=Throughput(10),
                slot_time=0,
                preamble_bits=0,
                framing_bits=0,
                min_frame_bits=0,
                interframe_gap_bits=0,
                destructive_collisions=True,
            )
        with pytest.raises(ValueError):
            MediumProfile(
                name="bad",
                throughput=Throughput(10),
                slot_time=1,
                preamble_bits=-1,
                framing_bits=0,
                min_frame_bits=0,
                interframe_gap_bits=0,
                destructive_collisions=True,
            )
