"""Scenario: the frozen configuration object behind NetworkSimulation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.model.workloads import uniform_problem
from repro.net import Scenario
from repro.net.network import NetworkSimulation
from repro.net.phy import ideal_medium
from repro.protocols.ddcr.config import DDCRConfig
from repro.protocols.ddcr.protocol import DDCRProtocol

_MS = 1_000_000


def _problem():
    return uniform_problem(z=4, deadline=10 * _MS, a=1, w=5 * _MS)


def _factory(problem):
    config = DDCRConfig(
        time_f=64,
        time_m=4,
        class_width=max(1, 2 * 10 * _MS // 64),
        static_q=problem.static_q,
        static_m=problem.static_m,
        theta_factor=1.0,
    )
    return lambda source: DDCRProtocol(config)


def _scenario(**overrides):
    problem = _problem()
    base = Scenario(
        problem=problem,
        medium=ideal_medium(slot_time=512),
        protocol_factory=_factory(problem),
    )
    return base.replace(**overrides) if overrides else base


def _digest(result):
    return (
        result.delivered,
        result.dropped,
        tuple(
            (record.message.msg_class.name, record.completion)
            for record in result.completions
        ),
    )


class TestFromScenario:
    def test_from_scenario_matches_kwargs_constructor(self):
        problem = _problem()
        medium = ideal_medium(slot_time=512)
        factory = _factory(problem)
        via_kwargs = NetworkSimulation(problem, medium, factory).run(20 * _MS)
        via_scenario = NetworkSimulation.from_scenario(
            Scenario(
                problem=problem, medium=medium, protocol_factory=factory
            )
        ).run(20 * _MS)
        assert _digest(via_scenario) == _digest(via_kwargs)

    def test_kwargs_constructor_records_its_scenario(self):
        problem = _problem()
        simulation = NetworkSimulation(
            problem, ideal_medium(slot_time=512), _factory(problem)
        )
        assert isinstance(simulation.scenario, Scenario)
        assert simulation.scenario.problem is problem

    def test_replace_overrides_one_field(self):
        base = _scenario()
        noisy = base.replace(noise_rate=0.05, root_seed=3)
        assert noisy.noise_rate == 0.05
        assert noisy.root_seed == 3
        # Untouched fields carry over; the original is unmodified.
        assert noisy.problem is base.problem
        assert base.noise_rate == 0.0

    def test_replace_rejects_unknown_field(self):
        with pytest.raises(TypeError):
            _scenario().replace(noise_rte=0.05)


class TestInvariants:
    def test_scenario_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            _scenario().noise_rate = 0.5

    def test_arrivals_copied_at_construction(self):
        arrivals = {}
        scenario = _scenario(arrivals=arrivals)
        arrivals["uniform-0"] = object()
        assert scenario.arrivals == {}

    def test_bad_engine_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown engine"):
            _scenario(engine="warp-drive")

    def test_field_names_cover_the_constructor(self):
        names = _scenario().field_names()
        assert names[:3] == ("problem", "medium", "protocol_factory")
        assert len(names) == 14  # + telemetry_prefix (fabric segments)
