"""Fabric: topologies, staged execution, composed end-to-end bounds.

The two load-bearing claims of the multi-segment API:

* a one-segment :class:`~repro.net.fabric.Fabric` is byte-identical to
  the bare ``NetworkSimulation.from_scenario`` run — stats, completions,
  traces, invariants and telemetry content — under every engine;
* at feasible loads, the composed route bound (sum of per-hop B_DDCR
  plus bridge forwarding latencies) dominates every observed end-to-end
  journey latency.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.harness import build_chain_topology
from repro.model.workloads import relay_chain_problems, uniform_problem
from repro.net.fabric import Fabric
from repro.net.network import NetworkSimulation, Scenario
from repro.net.phy import ideal_medium
from repro.net.topology import (
    BridgeSpec,
    SegmentSpec,
    Topology,
    TopologyError,
)
from repro.obs.instruments import Telemetry
from repro.protocols.ddcr import DDCRConfig, DDCRProtocol
from repro.sim.invariants import BridgeConservationMonitor

_MS = 1_000_000
ENGINES = ("des", "fastloop", "batch")
_HORIZON = 250_000


def _ddcr_factory(problem):
    config = DDCRConfig(
        time_f=16,
        time_m=2,
        class_width=65_536,
        static_q=problem.static_q,
        static_m=problem.static_m,
    )
    return lambda source: DDCRProtocol(config)


def _segment(name="seg0", z=4, **overrides):
    problem = uniform_problem(
        z=z, length=1_000, deadline=400_000, a=1, w=200_000
    )
    params = dict(
        name=name,
        problem=problem,
        medium=ideal_medium(slot_time=64),
        protocol_factory=_ddcr_factory(problem),
    )
    params.update(overrides)
    return SegmentSpec(**params)


def _chain_segment(name, problem, medium=None):
    return SegmentSpec(
        name=name,
        problem=problem,
        medium=medium if medium is not None else ideal_medium(slot_time=64),
        protocol_factory=_ddcr_factory(problem),
    )


def _two_segment_topology(**bridge_overrides):
    """seg0 -> seg1 forwarding local-0 onto relay-1."""
    problems = relay_chain_problems(
        2, z=3, length=1_000, deadline=400_000, a=1, w=200_000
    )
    bridge = dict(
        source="seg0",
        target="seg1",
        station_id=0,
        class_map={"local-0": "relay-1"},
        forwarding_latency=1_024,
    )
    bridge.update(bridge_overrides)
    return Topology(
        segments=(
            _chain_segment("seg0", problems[0]),
            _chain_segment("seg1", problems[1]),
        ),
        bridges=(BridgeSpec(**bridge),),
    )


class TestTopologyValidation:
    def test_duplicate_segment_names_rejected(self):
        with pytest.raises(TopologyError, match="duplicate segment names"):
            Topology(segments=(_segment("seg0"), _segment("seg0")))

    def test_bridge_to_unknown_segment_rejected(self):
        with pytest.raises(TopologyError, match="not in the topology"):
            Topology(
                segments=(_segment("seg0"),),
                bridges=(
                    BridgeSpec(
                        source="seg0",
                        target="nowhere",
                        station_id=0,
                        class_map={"uniform-0": "uniform-0"},
                    ),
                ),
            )

    def test_self_bridge_rejected(self):
        with pytest.raises(TopologyError, match="onto itself"):
            BridgeSpec(
                source="seg0",
                target="seg0",
                station_id=0,
                class_map={"a": "b"},
            )

    def test_empty_class_map_rejected(self):
        with pytest.raises(TopologyError, match="forwards no classes"):
            BridgeSpec(
                source="seg0", target="seg1", station_id=0, class_map={}
            )

    def test_unknown_heard_class_rejected(self):
        with pytest.raises(TopologyError, match="unknown class"):
            _two_segment_topology(class_map={"nonesuch": "relay-1"})

    def test_relay_class_must_belong_to_bridge_station(self):
        # relay-1 is owned by station 0; station 1 only has local-1.
        with pytest.raises(TopologyError, match="not owned by station"):
            _two_segment_topology(station_id=1)

    def test_unknown_station_rejected(self):
        with pytest.raises(TopologyError, match="no station 99"):
            _two_segment_topology(station_id=99)

    def test_cycle_rejected(self):
        problems = relay_chain_problems(
            3, z=3, length=1_000, deadline=400_000, a=1, w=200_000
        )
        # seg1 and seg2 both own relay classes; close the loop 1->2->1.
        with pytest.raises(TopologyError, match="cyclic"):
            Topology(
                segments=(
                    _chain_segment("seg1", problems[1]),
                    _chain_segment("seg2", problems[2]),
                ),
                bridges=(
                    BridgeSpec(
                        source="seg1",
                        target="seg2",
                        station_id=0,
                        class_map={"local-0": "relay-2"},
                    ),
                    BridgeSpec(
                        source="seg2",
                        target="seg1",
                        station_id=0,
                        class_map={"local-0": "relay-1"},
                    ),
                ),
            )

    def test_multiply_fed_relay_class_rejected(self):
        problems = relay_chain_problems(
            3, z=3, length=1_000, deadline=400_000, a=1, w=200_000
        )
        with pytest.raises(TopologyError, match="fed by more than one"):
            Topology(
                segments=(
                    _chain_segment("seg0", problems[0]),
                    _chain_segment("seg1", problems[1]),
                    _chain_segment("seg2", problems[2]),
                ),
                bridges=(
                    BridgeSpec(
                        source="seg0",
                        target="seg2",
                        station_id=0,
                        class_map={"local-0": "relay-2"},
                    ),
                    BridgeSpec(
                        source="seg1",
                        target="seg2",
                        station_id=0,
                        class_map={"local-1": "relay-2"},
                    ),
                ),
            )

    def test_multiply_forwarded_class_rejected(self):
        problems = relay_chain_problems(
            3, z=3, length=1_000, deadline=400_000, a=1, w=200_000
        )
        with pytest.raises(TopologyError, match="more than one bridge"):
            Topology(
                segments=(
                    _chain_segment("seg0", problems[0]),
                    _chain_segment("seg1", problems[1]),
                    _chain_segment("seg2", problems[2]),
                ),
                bridges=(
                    BridgeSpec(
                        source="seg0",
                        target="seg1",
                        station_id=0,
                        class_map={"local-0": "relay-1"},
                    ),
                    BridgeSpec(
                        source="seg0",
                        target="seg2",
                        station_id=0,
                        class_map={"local-0": "relay-2"},
                    ),
                ),
            )

    def test_explicit_arrivals_for_relay_class_rejected(self):
        from repro.model.arrival import TraceArrivals

        problems = relay_chain_problems(
            2, z=3, length=1_000, deadline=400_000, a=1, w=200_000
        )
        with pytest.raises(TopologyError, match="fed exclusively"):
            Topology(
                segments=(
                    _chain_segment("seg0", problems[0]),
                    SegmentSpec(
                        name="seg1",
                        problem=problems[1],
                        medium=ideal_medium(slot_time=64),
                        protocol_factory=_ddcr_factory(problems[1]),
                        arrivals={"relay-1": TraceArrivals((0,))},
                    ),
                ),
                bridges=(
                    BridgeSpec(
                        source="seg0",
                        target="seg1",
                        station_id=0,
                        class_map={"local-0": "relay-1"},
                    ),
                ),
            )

    def test_segment_order_follows_edges_not_declaration(self):
        problems = relay_chain_problems(
            2, z=3, length=1_000, deadline=400_000, a=1, w=200_000
        )
        # Declare the downstream segment first; order must still put
        # the feeder before its target.
        topology = Topology(
            segments=(
                _chain_segment("seg1", problems[1]),
                _chain_segment("seg0", problems[0]),
            ),
            bridges=(
                BridgeSpec(
                    source="seg0",
                    target="seg1",
                    station_id=0,
                    class_map={"local-0": "relay-1"},
                ),
            ),
        )
        assert topology.segment_order() == ("seg0", "seg1")

    def test_route_for_follows_the_chain(self):
        topology, _ = build_chain_topology(segments=3, z=3)
        route = topology.route_for("seg0", "local-0")
        assert [(h.segment, h.class_name) for h in route.hops] == [
            ("seg0", "local-0"),
            ("seg1", "relay-1"),
            ("seg2", "relay-2"),
        ]
        assert route.bridge_count == 2
        # Unforwarded classes are single-hop routes.
        assert topology.route_for("seg0", "local-1").bridge_count == 0
        # Relay classes are mid-chain, not origins.
        with pytest.raises(TopologyError, match="relay class"):
            topology.route_for("seg1", "relay-1")
        # One multi-hop route in the whole chain.
        assert topology.routes() == (route,)


class TestSingleSegmentByteIdentity:
    """The 1-segment fabric IS the bare simulation, engine by engine."""

    def _scenario(self, engine, telemetry=None):
        problem = uniform_problem(
            z=5, length=1_000, deadline=400_000, a=1, w=200_000
        )
        return Scenario(
            problem=problem,
            medium=ideal_medium(slot_time=64),
            protocol_factory=_ddcr_factory(problem),
            trace=True,
            noise_rate=0.01,
            noise_seed=3,
            root_seed=3,
            engine=engine,
            monitors=True,
            telemetry=telemetry,
        )

    @staticmethod
    def _digest(result):
        return pickle.dumps(
            (
                result.stats,
                result.completions,
                list(result.trace.records()),
                result.invariants,
            )
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_results_byte_identical(self, engine):
        bare = NetworkSimulation.from_scenario(self._scenario(engine)).run(
            _HORIZON
        )
        fabric = Fabric.from_scenario(self._scenario(engine)).run(_HORIZON)
        assert len(fabric.segments) == 1
        (segment_result,) = fabric.segments.values()
        assert self._digest(segment_result) == self._digest(bare)
        assert fabric.bridges == () and fabric.journeys == ()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_telemetry_content_identical(self, engine):
        bare = NetworkSimulation.from_scenario(
            self._scenario(engine, telemetry=Telemetry())
        ).run(_HORIZON)
        fabric = Fabric.from_scenario(
            self._scenario(engine, telemetry=Telemetry())
        ).run(_HORIZON)
        assert fabric.telemetry is not None and bare.telemetry is not None
        assert fabric.telemetry.content_json() == bare.telemetry.content_json()
        # Single segment: no fabric/... instruments, no prefixes.
        assert not any(
            name.startswith("fabric/") for name in fabric.telemetry.counters
        )

    def test_from_topology_entry_point(self):
        scenario = self._scenario("des")
        fabric = NetworkSimulation.from_topology(scenario.as_topology())
        assert isinstance(fabric, Fabric)
        assert len(fabric.topology.segments) == 1


class TestMultiSegmentExecution:
    def test_chain_delivers_and_accounts(self):
        topology, trees = build_chain_topology(
            segments=3, z=4, monitors=True
        )
        fabric = Fabric(topology)
        result = fabric.run(40 * _MS)
        assert result.invariants_ok
        delivered = result.delivered()
        assert delivered
        for journey in delivered:
            hops = journey.hops
            assert [h.segment for h in hops] == ["seg0", "seg1", "seg2"]
            # Completions advance strictly along the chain.
            assert all(
                earlier.completion < later.completion
                for earlier, later in zip(hops, hops[1:])
            )
            assert journey.latency > 0
        for report in result.bridges:
            assert report.heard == report.enqueued + report.expired
            assert report.dropped == 0
            assert 0 <= report.backlog
            assert report.max_occupancy <= report.queue_capacity
        # Multi-segment manifests only exist when the topology owns a
        # registry; the per-segment fallbacks are collected regardless.
        assert set(result.engine_fallbacks) <= {"seg0", "seg1", "seg2"}

    def test_multi_segment_telemetry_namespaces(self):
        registry = Telemetry()
        topology, _ = build_chain_topology(
            segments=2, z=3, telemetry=registry
        )
        result = Fabric(topology).run(20 * _MS)
        assert result.telemetry is not None
        assert result.telemetry.run_id == "fabric"
        counters = result.telemetry.counters
        assert counters["seg0/slots/success"] > 0
        assert counters["seg1/slots/success"] > 0
        assert counters["fabric/journeys/delivered"] > 0
        assert counters["fabric/seg0->seg1/forwarded"] > 0

    def test_relay_classes_fed_only_by_their_bridge(self):
        # A forwarding latency beyond the horizon expires every frame:
        # the relay class must then see *zero* arrivals (the empty
        # journal still overrides the greedy default).
        topology = _two_segment_topology(forwarding_latency=10**9)
        result = Fabric(topology).run(2 * _MS)
        (report,) = result.bridges
        assert report.heard > 0
        assert report.expired == report.heard and report.enqueued == 0
        relayed = [
            record
            for record in result.segments["seg1"].completions
            if record.message.msg_class.name == "relay-1"
        ]
        assert relayed == []
        assert result.delivered() == []
        assert result.in_flight()  # journeys exist, stuck at hop 1

    def test_relay_deliveries_match_bridge_journal(self):
        topology = _two_segment_topology()
        result = Fabric(topology).run(4 * _MS)
        (report,) = result.bridges
        relayed = [
            record
            for record in result.segments["seg1"].completions
            if record.message.msg_class.name == "relay-1"
            and not record.dropped
        ]
        assert report.forwarded == len(relayed) > 0
        # Every relay arrival equals a journalled ready time.
        schedule = {
            record.message.arrival for record in relayed
        }
        assert len(schedule) == len(relayed)  # unique ready times

    def test_same_seed_repeats_are_identical(self):
        topology, _ = build_chain_topology(segments=2, z=3)

        def digest():
            result = Fabric(topology).run(10 * _MS)
            return pickle.dumps(
                [
                    (name, seg.stats, seg.completions)
                    for name, seg in result.segments.items()
                ]
                + [result.journeys]
            )

        assert digest() == digest()


class TestComposedBound:
    @settings(max_examples=8, deadline=None)
    @given(
        depth=st.integers(min_value=2, max_value=3),
        scale=st.sampled_from([0.5, 1.0, 2.0]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_bound_dominates_observed_latency_when_feasible(
        self, depth, scale, seed
    ):
        topology, trees = build_chain_topology(
            segments=depth, z=3, scale=scale, root_seed=seed, monitors=True
        )
        fabric = Fabric(topology)
        (route_bound,) = fabric.route_bounds(trees)
        if not route_bound.feasible:
            return  # the composition theorem only speaks at feasible loads
        result = fabric.run(30 * _MS)
        assert result.invariants_ok
        worst = result.worst_latency(route_bound.route)
        assert worst is not None
        assert worst <= route_bound.bound
        assert sum(report.dropped for report in result.bridges) == 0

    def test_route_bound_shape(self):
        topology, trees = build_chain_topology(segments=3, z=4)
        (route_bound,) = Fabric(topology).route_bounds(trees)
        assert len(route_bound.hops) == 3
        # First hop has no ingress latency; later hops carry the bridge's.
        assert route_bound.hops[0].ingress_latency == 0
        assert all(h.ingress_latency > 0 for h in route_bound.hops[1:])
        assert route_bound.bound == pytest.approx(
            sum(h.contribution for h in route_bound.hops)
        )
        assert route_bound.slack == pytest.approx(
            route_bound.end_to_end_deadline - route_bound.bound
        )


class TestBridgeConservationMonitor:
    def test_clean_on_a_healthy_chain(self):
        topology, _ = build_chain_topology(segments=2, z=3, monitors=True)
        result = Fabric(topology).run(20 * _MS)
        report = result.segments["seg1"].invariants
        assert report is not None and report.ok

    def test_bogus_schedule_breaks_conservation(self):
        # Arm the monitor against a schedule the run never satisfies:
        # the claimed frame (ready=12_345) never arrives, so the real
        # successes of local-0 mismatch FIFO order and the horizon
        # count comes up short.
        problem = uniform_problem(
            z=3, length=1_000, deadline=400_000, a=1, w=200_000
        )
        simulation = NetworkSimulation.from_scenario(
            Scenario(
                problem=problem,
                medium=ideal_medium(slot_time=64),
                protocol_factory=_ddcr_factory(problem),
            )
        )
        simulation.extra_monitors = (
            BridgeConservationMonitor(
                bridge="ghost->here",
                station_id=0,
                schedule={"uniform-0": (12_345,)},
                capacity=4,
            ),
        )
        result = simulation.run(_HORIZON)
        assert result.invariants is not None
        assert not result.invariants.ok
        text = " ".join(v.message for v in result.invariants.violations)
        assert "FIFO" in text or "conservation" in text


class TestDeprecations:
    def test_kwargs_constructor_warns(self):
        problem = uniform_problem(
            z=2, length=1_000, deadline=400_000, a=1, w=200_000
        )
        with pytest.warns(DeprecationWarning, match="from_scenario"):
            NetworkSimulation(
                problem, ideal_medium(slot_time=64), _ddcr_factory(problem)
            )

    def test_run_fast_and_run_batch_warn(self):
        import itertools

        from repro.model.arrival import GreedyBurstArrivals
        from repro.net.channel import BroadcastChannel
        from repro.net.station import Station
        from repro.sim.engine import Environment

        def build():
            problem = uniform_problem(
                z=2, length=1_000, deadline=400_000, a=1, w=200_000
            )
            env = Environment()
            channel = BroadcastChannel(env, ideal_medium(slot_time=64))
            seq = itertools.count()
            for source in problem.sources:
                station = Station(
                    station_id=source.source_id,
                    mac=_ddcr_factory(problem)(source),
                    static_indices=source.static_indices,
                    seq_source=seq,
                )
                for msg_class in source.message_classes:
                    station.load_arrivals(
                        msg_class,
                        GreedyBurstArrivals(bound=msg_class.bound),
                        10_000,
                    )
                channel.attach(station)
            return channel

        with pytest.warns(DeprecationWarning, match="engine="):
            build().run_fast(10_000)
        with pytest.warns(DeprecationWarning, match="engine="):
            build().run_batch(10_000)
