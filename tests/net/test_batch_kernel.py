"""The batch-slot kernel's own contract: eligibility, backends, leap.

The three-way byte-identity oracle lives in
``test_engine_differential.py``; this file covers what is specific to
:mod:`repro.net.batch` — the structural eligibility matrix and its
recorded reasons, the numpy-absent degradation to the pure-Python
backend, backend parity, the mid-run DES rejoin out of the kernel
itself, and the idle-leap fast path (which the differential suite never
exercises, because its runs keep tracing on).
"""

from __future__ import annotations

import itertools
import pickle
import sys

import pytest

import repro.net.batch as batch_module
from repro.model.arrival import GreedyBurstArrivals
from repro.model.workloads import uniform_problem
from repro.net.batch import BatchKernel, batch_unavailable_reason
from repro.net.channel import BroadcastChannel
from repro.net.engine import batch_capability
from repro.net.network import NetworkSimulation
from repro.net.phy import ATM_BUS, ideal_medium
from repro.net.station import Station
from repro.protocols.csma_cd import CSMACDProtocol
from repro.protocols.ddcr import DDCRConfig, DDCRProtocol
from repro.sim.engine import Environment
from repro.sim.invariants import InvariantMonitor, MonitorSuite
from repro.sim.trace import TraceLog

_HORIZON = 250_000


def _problem(z=5):
    return uniform_problem(z=z, length=1_000, deadline=400_000, a=1, w=200_000)


def _config(problem, **overrides):
    kwargs = dict(
        time_f=16,
        time_m=2,
        class_width=65_536,
        static_q=problem.static_q,
        static_m=problem.static_m,
    )
    kwargs.update(overrides)
    return DDCRConfig(**kwargs)


def _build_channel(
    problem=None,
    config=None,
    medium=None,
    mac_factory=None,
    trace=False,
    load=True,
    horizon=_HORIZON,
):
    problem = problem if problem is not None else _problem()
    config = config if config is not None else _config(problem)
    env = Environment()
    channel = BroadcastChannel(
        env,
        medium if medium is not None else ideal_medium(slot_time=64),
        trace=TraceLog(enabled=trace),
    )
    seq_source = itertools.count()
    for source in problem.sources:
        mac = (
            mac_factory(source) if mac_factory is not None
            else DDCRProtocol(config)
        )
        station = Station(
            station_id=source.source_id,
            mac=mac,
            static_indices=source.static_indices,
            seq_source=seq_source,
        )
        if load:
            for msg_class in source.message_classes:
                station.load_arrivals(
                    msg_class,
                    GreedyBurstArrivals(bound=msg_class.bound),
                    horizon,
                )
        channel.attach(station)
    return channel


def _digest(channel):
    completions = [
        record
        for station in channel.stations
        for record in station.completions
    ]
    return pickle.dumps(
        (
            channel.stats,
            completions,
            list(channel.trace.records()),
            channel.observations,
            [
                (s.mac.mode, s.mac.reft, s.mac.empty_tts_runs,
                 len(s.mac.tts_records), len(s.mac.sts_records),
                 s.mac._sts_member, s.mac._sts_cursor)
                for s in channel.stations
                if isinstance(s.mac, DDCRProtocol)
            ],
        )
    )


# -- eligibility matrix ------------------------------------------------------


def test_eligible_channel_has_no_reason():
    assert batch_unavailable_reason(_build_channel()) is None


def test_foreign_pending_process_is_ineligible():
    channel = _build_channel()

    def ticker():
        yield channel.env.timeout(1_000)

    channel.env.process(ticker())
    assert "foreign processes" in batch_unavailable_reason(channel)


def test_foreign_mac_type_is_ineligible():
    channel = _build_channel(
        mac_factory=lambda source: CSMACDProtocol(seed=source.source_id)
    )
    assert "not plain DDCRProtocol" in batch_unavailable_reason(channel)


def test_differing_configs_are_ineligible():
    problem = _problem()
    configs = iter(
        [_config(problem)] * (len(problem.sources) - 1)
        + [_config(problem, time_f=32)]
    )
    channel = _build_channel(
        problem=problem,
        mac_factory=lambda source: DDCRProtocol(next(configs)),
    )
    assert "differing DDCR configurations" in batch_unavailable_reason(channel)


def test_bursting_is_ineligible():
    problem = _problem()
    channel = _build_channel(
        problem=problem, config=_config(problem, burst_limit=3_000)
    )
    assert "bursting" in batch_unavailable_reason(channel)


def test_non_destructive_medium_is_ineligible():
    channel = _build_channel(medium=ATM_BUS)
    assert "non-destructive" in batch_unavailable_reason(channel)


def test_armed_faults_are_ineligible():
    channel = _build_channel()
    channel.faults = object()  # any armed injector
    assert "fault injector" in batch_unavailable_reason(channel)


def test_consistency_checks_are_ineligible():
    channel = _build_channel()
    channel.check_consistency = True
    assert "consistency checks" in batch_unavailable_reason(channel)


def test_run_batch_falls_back_and_reports_why():
    """Ineligible runs execute on the fast loop, byte-identically."""
    fast = _build_channel(
        trace=True,
        mac_factory=lambda source: CSMACDProtocol(seed=source.source_id),
    )
    fast.run(_HORIZON, engine="fastloop")
    batched = _build_channel(
        trace=True,
        mac_factory=lambda source: CSMACDProtocol(seed=source.source_id),
    )
    note = batched.run(_HORIZON, engine="batch")
    assert "batch engine unavailable" in note
    assert "not plain DDCRProtocol" in note
    assert _digest(batched) == _digest(fast)


# -- backend selection and parity --------------------------------------------


def test_pure_python_backend_is_byte_identical():
    reference = _build_channel(trace=True)
    reference.run(_HORIZON, engine="fastloop")
    forced = _build_channel(trace=True)
    kernel = BatchKernel(forced, force_python=True)
    assert kernel.backend_note == "pure-python backend (forced)"
    assert not kernel.backend.vectorized
    kernel.run(_HORIZON)
    assert forced.env.now == _HORIZON
    assert _digest(forced) == _digest(reference)


def test_numpy_absent_degrades_not_fails(monkeypatch):
    """With numpy unimportable, the batch engine still runs — on the
    pure-Python backend, byte-identically — and the run manifest records
    why the vectorized backend was unavailable."""
    from repro.obs.instruments import Telemetry

    real_numpy = pytest.importorskip("numpy")

    def run(engine, break_numpy):
        if break_numpy:
            monkeypatch.setitem(sys.modules, "numpy", None)
        else:
            monkeypatch.setitem(sys.modules, "numpy", real_numpy)
        monkeypatch.setattr(batch_module, "_NUMPY_STATE", None)
        problem = _problem()
        config = _config(problem)
        simulation = NetworkSimulation(
            problem,
            ideal_medium(slot_time=64),
            protocol_factory=lambda source: DDCRProtocol(config),
            trace=True,
            root_seed=3,
            engine=engine,
            telemetry=Telemetry(),
        )
        result = simulation.run(_HORIZON)
        return result, result.telemetry

    broken, broken_manifest = run("batch", break_numpy=True)
    assert "numpy unavailable" in broken_manifest.engine_fallback
    assert batch_capability() is not None  # the cached probe agrees
    reference, reference_manifest = run("fastloop", break_numpy=True)
    vectorized, vectorized_manifest = run("batch", break_numpy=False)
    assert vectorized_manifest.engine_fallback is None

    def digest(result):
        return pickle.dumps(
            (result.stats, result.completions, list(result.trace.records()))
        )

    assert digest(broken) == digest(reference) == digest(vectorized)
    assert (
        broken_manifest.content_json()
        == reference_manifest.content_json()
        == vectorized_manifest.content_json()
    )
    monkeypatch.setattr(batch_module, "_NUMPY_STATE", None)
    assert batch_capability() is None  # numpy restored, probe re-runs


# -- mid-run DES rejoin out of the kernel ------------------------------------


class _ProcessRegisteringMonitor(InvariantMonitor):
    """Monitor that spawns a foreign DES process mid-run.

    Monitors are supported inside the batch kernel, so this forces the
    kernel itself (not a structural fallback) onto the write-back +
    rejoin path partway through a run.
    """

    name = "process_registrar"

    def __init__(self, env, ticks, trigger_after=40):
        super().__init__()
        self._env = env
        self._ticks = ticks
        self._remaining = trigger_after

    def on_slot(
        self, now, duration, state, wire, frame, corrupted, jammed,
        stations, down,
    ):
        if self._remaining > 0:
            self._remaining -= 1
            if self._remaining == 0:
                self._env.process(self._ticker())

    def _ticker(self):
        for _ in range(5):
            yield self._env.timeout(10_000)
            self._ticks.append(self._env.now)


def _run_with_monitor_process(engine):
    channel = _build_channel(trace=True)
    env = channel.env
    ticks: list[float] = []
    channel.monitors = MonitorSuite(
        [_ProcessRegisteringMonitor(env, ticks)]
    )
    note = channel.run(_HORIZON, engine=engine)
    if engine == "batch":
        assert note == batch_capability()  # eligible: the kernel itself ran
    assert env.now == _HORIZON
    return ticks, _digest(channel)


def test_kernel_rejoins_des_mid_run():
    """A foreign process registered by a monitor mid-run makes the kernel
    write its state back and rejoin the DES — interleaved identically."""
    runs = {
        engine: _run_with_monitor_process(engine)
        for engine in ("des", "fastloop", "batch")
    }
    ticks = {engine: run[0] for engine, run in runs.items()}
    assert len(ticks["batch"]) == 5  # the ticker really ran to completion
    assert ticks["des"] == ticks["fastloop"] == ticks["batch"]
    digests = {run[1] for run in runs.values()}
    assert len(digests) == 1


# -- the idle leap -----------------------------------------------------------


def _run_untraced(engine, config=None, jam=None, load=True, problem=None):
    """Trace/monitors/telemetry all off — the leap-eligible regime."""
    channel = _build_channel(
        trace=False, config=config, load=load, problem=problem
    )
    if jam is not None:
        channel.jam_from, channel.jam_until = jam
    channel.run(_HORIZON, engine=engine)
    assert channel.env.now == _HORIZON
    return _digest(channel)


@pytest.mark.parametrize(
    "case",
    [
        {},  # bursty workload: long idle stretches between windows
        {"load": False},  # fully idle run: one leap to the horizon
        {"jam": (80_000, 120_000)},  # leap must stop at the jam window
        {"exit_on_idle": True},  # FREE-mode idle instead of fresh-TTs
    ],
    ids=["bursty", "all-idle", "jam-window", "exit-to-free"],
)
def test_idle_leap_is_byte_identical(case):
    problem = _problem()
    config = (
        _config(problem, exit_to_free_on_idle=True)
        if case.get("exit_on_idle")
        else None
    )
    runs = {
        _run_untraced(
            engine,
            config=config,
            jam=case.get("jam"),
            load=case.get("load", True),
            problem=problem,
        )
        for engine in ("des", "fastloop", "batch")
    }
    assert len(runs) == 1


def test_idle_leap_actually_engages(monkeypatch):
    """The leap-identity tests are only meaningful if leaps happen: count
    them on the bursty workload and require multi-slot advances."""
    leaps = []
    original = BatchKernel._try_leap

    def spy(self, now, horizon):
        n = original(self, now, horizon)
        if n:
            leaps.append(n)
        return n

    monkeypatch.setattr(BatchKernel, "_try_leap", spy)
    _run_untraced("batch")
    assert leaps and max(leaps) > 1


def test_leap_disabled_under_trace_and_monitors():
    """Tracing (or monitors) force per-slot execution: no leap, and the
    traced run still matches the DES slot for slot (covered by the
    differential suite; here we just pin the gate)."""
    channel = _build_channel(trace=True)
    kernel = BatchKernel(channel)
    assert not kernel._leap_ok
    untraced = _build_channel(trace=False)
    assert BatchKernel(untraced)._leap_ok
