"""Tests for the dual-bus redundancy layer."""

from __future__ import annotations

import pytest

from repro.model.workloads import uniform_problem
from repro.net.dualbus import (
    BusFailoverController,
    DualBusSimulation,
    suggested_jam_threshold,
)
from repro.net.phy import ideal_medium
from repro.protocols.base import ChannelState
from repro.protocols.ddcr import DDCRConfig, DDCRProtocol


def _problem():
    return uniform_problem(
        z=4, length=1_000, deadline=600_000, a=1, w=300_000
    )


def _config(problem) -> DDCRConfig:
    return DDCRConfig(
        time_f=16,
        time_m=2,
        class_width=65_536,
        static_q=problem.static_q,
        static_m=problem.static_m,
        theta_factor=1.0,
    )


def _simulate(fail_at=None, jam_threshold=None, horizon=4_000_000):
    problem = _problem()
    config = _config(problem)
    threshold = (
        jam_threshold
        if jam_threshold is not None
        else suggested_jam_threshold(config)
    )
    simulation = DualBusSimulation(
        problem,
        ideal_medium(slot_time=64),
        protocol_factory=lambda src: DDCRProtocol(config),
        jam_threshold=threshold,
        fail_bus_at=fail_at,
        check_consistency=True,
    )
    return simulation.run(horizon)


class TestController:
    def test_failover_after_threshold(self):
        controller = BusFailoverController(jam_threshold=3)
        for _ in range(2):
            controller.note(0, ChannelState.COLLISION)
        assert controller.active_bus == 0
        controller.note(0, ChannelState.COLLISION)
        assert controller.active_bus == 1
        assert controller.failovers == 1

    def test_counter_resets_on_good_slot(self):
        controller = BusFailoverController(jam_threshold=3)
        controller.note(0, ChannelState.COLLISION)
        controller.note(0, ChannelState.COLLISION)
        controller.note(0, ChannelState.SILENCE)
        controller.note(0, ChannelState.COLLISION)
        controller.note(0, ChannelState.COLLISION)
        assert controller.active_bus == 0

    def test_standby_slots_ignored(self):
        controller = BusFailoverController(jam_threshold=2)
        for _ in range(10):
            controller.note(1, ChannelState.COLLISION)
        assert controller.active_bus == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            BusFailoverController(jam_threshold=1)


class TestSuggestedThreshold:
    def test_exceeds_tree_depths(self):
        config = _config(_problem())
        threshold = suggested_jam_threshold(config)
        # log2(16) + log2(4) + 1 + margin 8 = 4 + 2 + 1 + 8.
        assert threshold == 15


class TestDualBusRuns:
    def test_healthy_never_fails_over(self):
        result = _simulate()
        assert result.failovers == 0
        assert result.bus_stats[1].successes == 0  # standby stayed silent
        delivered = sum(1 for r in result.completions if not r.dropped)
        assert delivered == 4 * 14  # one per 300k window per station

    def test_failure_triggers_single_failover(self):
        result = _simulate(fail_at=1_500_000)
        assert result.failovers == 1
        assert result.bus_stats[0].jammed_slots > 0
        assert result.bus_stats[1].successes > 0

    def test_no_message_lost_across_failover(self):
        healthy = _simulate()
        failed = _simulate(fail_at=1_500_000)
        assert len(failed.completions) == len(healthy.completions)
        assert all(r.on_time for r in failed.completions)
        assert failed.backlog() == []

    def test_unreachable_threshold_means_no_failover(self):
        result = _simulate(fail_at=1_500_000, jam_threshold=10**9)
        assert result.failovers == 0
        # Messages arriving after the failure are stranded.
        assert len(result.backlog()) > 0

    def test_completions_unique_across_busses(self):
        result = _simulate(fail_at=1_500_000)
        seqs = [r.message.seq for r in result.completions]
        assert len(seqs) == len(set(seqs))
