"""The ScopedValue substrate and its three ambient-value wrappers."""

from __future__ import annotations

import pytest

from repro.context import ScopedValue
from repro.faults.context import current_fault_plan, use_fault_plan
from repro.faults.models import preset_plan
from repro.net.engine import default_engine, use_engine
from repro.obs.context import current_telemetry, use_telemetry
from repro.obs.instruments import NULL_TELEMETRY, Telemetry


class TestScopedValue:
    def test_default_is_lazy(self):
        calls = []
        scope = ScopedValue("lazy", default=lambda: calls.append(1) or 7)
        assert calls == []
        assert scope.current() == 7
        assert scope.current() == 7
        assert calls == [1]  # factory ran exactly once

    def test_using_nests_and_restores(self):
        scope = ScopedValue("nest", default=lambda: "base")
        with scope.using("outer") as outer:
            assert outer == "outer"
            with scope.using("inner"):
                assert scope.current() == "inner"
                assert scope.depth == 2
            assert scope.current() == "outer"
        assert scope.current() == "base"
        assert scope.depth == 0

    def test_unwinding_is_exception_safe(self):
        scope = ScopedValue("unwind", default=lambda: "base")
        with pytest.raises(RuntimeError):
            with scope.using("scoped"):
                raise RuntimeError("boom")
        assert scope.current() == "base"

    def test_set_default_outside_scopes_persists(self):
        scope = ScopedValue("default", default=lambda: "a")
        assert scope.set_default("b") == "a"
        assert scope.current() == "b"

    def test_set_default_inside_scope_dies_with_it(self):
        scope = ScopedValue("scoped-default", default=lambda: "a")
        with scope.using("b"):
            assert scope.set_default("c") == "b"
            assert scope.current() == "c"
        assert scope.current() == "a"

    def test_coerce_applies_to_every_entry(self):
        scope = ScopedValue(
            "coerced", default=lambda: "x", coerce=str.upper
        )
        assert scope.current() == "X"
        with scope.using("inner"):
            assert scope.current() == "INNER"
        scope.set_default("deflt")
        assert scope.current() == "DEFLT"

    def test_none_is_noop_yields_current(self):
        scope = ScopedValue(
            "noop", default=lambda: "base", none_is_noop=True
        )
        with scope.using(None) as value:
            assert value == "base"
            assert scope.depth == 0

    def test_none_scopes_normally_without_the_knob(self):
        scope = ScopedValue("shadow", default=lambda: "base")
        with scope.using("outer"):
            with scope.using(None):
                assert scope.current() is None
            assert scope.current() == "outer"


class TestWrappers:
    def test_engine_none_means_inherit(self):
        with use_engine("des"):
            with use_engine(None):
                assert default_engine() == "des"
            with use_engine("fastloop"):
                assert default_engine() == "fastloop"
            assert default_engine() == "des"

    def test_engine_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown engine"):
            with use_engine("warp-drive"):
                pass  # pragma: no cover

    def test_fault_plan_none_shadows_outer_plan(self):
        plan = preset_plan("crash")
        with use_fault_plan(plan):
            assert current_fault_plan() is plan
            with use_fault_plan(None):
                assert current_fault_plan() is None
            assert current_fault_plan() is plan
        assert current_fault_plan() is None

    def test_telemetry_none_scopes_the_null_registry(self):
        registry = Telemetry()
        assert current_telemetry() is NULL_TELEMETRY
        with use_telemetry(registry):
            assert current_telemetry() is registry
            with use_telemetry(None):
                assert current_telemetry() is NULL_TELEMETRY
            assert current_telemetry() is registry
        assert current_telemetry() is NULL_TELEMETRY
