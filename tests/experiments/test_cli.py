"""CLI integrity: every registry id round-trips through the CLI.

Running every experiment for real takes minutes, so the suite-wide
round-trips resolve through a pre-warmed result cache (the CLI's own
storage format, written with stub results keyed by the exact specs the
CLI builds); a couple of fast experiments additionally run for real with
the cache disabled.
"""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS
from repro.runtime import ResultCache, RunSpec


def stub_result(experiment_id: str, ok: bool = True) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"stub for {experiment_id}",
        headers=["col"],
        rows=[[1]],
        checks={"stub": ok},
    )


@pytest.fixture
def warm_cache(tmp_path):
    """A cache directory holding a passing stub for every experiment."""
    cache = ResultCache(tmp_path / "cache")
    for experiment_id in EXPERIMENTS:
        cache.put(RunSpec.make(experiment_id), stub_result(experiment_id))
    return cache


class TestListing:
    def test_no_ids_lists_all_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in out

    def test_unknown_id_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["NOPE"])
        assert excinfo.value.code == 2

    def test_bad_jobs_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["FIG1", "--jobs", "0"])


class TestRoundTrips:
    def test_every_id_round_trips_through_cli(self, warm_cache, capsys):
        for experiment_id in EXPERIMENTS:
            assert (
                main([experiment_id, "--cache-dir", str(warm_cache.directory)])
                == 0
            ), experiment_id
            out = capsys.readouterr().out
            assert f"== {experiment_id}:" in out

    def test_all_runs_whole_suite_in_order(self, warm_cache, capsys):
        assert main(["--all", "--cache-dir", str(warm_cache.directory)]) == 0
        out = capsys.readouterr().out
        positions = [out.index(f"== {i}:") for i in EXPERIMENTS]
        assert positions == sorted(positions)

    def test_real_run_without_cache(self, capsys):
        assert main(["FIG2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "== FIG2:" in out
        assert "[PASS]" in out


class TestExitCodes:
    def test_failed_checks_exit_one(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        cache.put(RunSpec.make("FIG1"), stub_result("FIG1", ok=False))
        assert main(["FIG1", "--cache-dir", str(tmp_path)]) == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_one_failure_among_many_still_exits_one(self, warm_cache, capsys):
        warm_cache.put(RunSpec.make("PROTO"), stub_result("PROTO", ok=False))
        assert main(["--all", "--cache-dir", str(warm_cache.directory)]) == 1
        capsys.readouterr()


class TestCsv:
    def test_csv_writes_one_file_per_id(self, warm_cache, tmp_path, capsys):
        out_dir = tmp_path / "csv"
        assert (
            main(
                [
                    "--all",
                    "--cache-dir",
                    str(warm_cache.directory),
                    "--csv",
                    str(out_dir),
                ]
            )
            == 0
        )
        capsys.readouterr()
        written = {path.name for path in out_dir.glob("*.csv")}
        assert written == {
            f"{experiment_id.lower()}.csv" for experiment_id in EXPERIMENTS
        }

    def test_csv_content_matches_result(self, warm_cache, tmp_path, capsys):
        out_dir = tmp_path / "csv"
        assert (
            main(
                [
                    "FIG1",
                    "--cache-dir",
                    str(warm_cache.directory),
                    "--csv",
                    str(out_dir),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (out_dir / "fig1.csv").read_text() == "col\n1\n"


class TestObservabilityFlags:
    def test_telemetry_writes_manifests(self, warm_cache, tmp_path, capsys):
        from repro.obs.manifest import read_manifests

        out_path = tmp_path / "runs.jsonl"
        assert (
            main(
                [
                    "FIG1",
                    "--cache-dir", str(warm_cache.directory),
                    "--telemetry", str(out_path),
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert f"wrote 1 telemetry manifest(s) to {out_path}" in err
        (doc,) = read_manifests(out_path)
        assert doc.run_id == "FIG1"
        assert doc.source == "cache"  # warm cache: only the lookup ran

    def test_real_run_manifest_carries_spans(self, tmp_path, capsys):
        from repro.obs.manifest import read_manifests

        out_path = tmp_path / "runs.jsonl"
        assert (
            main(["FIG2", "--no-cache", "--telemetry", str(out_path)]) == 0
        )
        capsys.readouterr()
        (doc,) = read_manifests(out_path)
        assert doc.source == "serial"
        (run_span,) = doc.spans
        assert run_span["name"] == "run"

    def test_profile_prints_pstats_to_stderr(self, warm_cache, capsys):
        assert (
            main(
                ["FIG1", "--cache-dir", str(warm_cache.directory), "--profile"]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "profile [FIG1]:" in err
        assert "cumulative" in err

    def test_profile_forces_serial(self, warm_cache, capsys):
        assert (
            main(
                [
                    "FIG1", "FIG2",
                    "--cache-dir", str(warm_cache.directory),
                    "--profile",
                    "--jobs", "4",
                ]
            )
            == 0
        )
        assert "ignoring --jobs" in capsys.readouterr().err

    def test_cache_stats_line_always_printed(self, warm_cache, capsys):
        assert main(["FIG1", "--cache-dir", str(warm_cache.directory)]) == 0
        err = capsys.readouterr().err
        assert "cache: 1 hits / 0 misses / 0 writes" in err

    def test_no_cache_suppresses_stats_line(self, capsys):
        assert main(["FIG2", "--no-cache"]) == 0
        assert "cache:" not in capsys.readouterr().err


class TestCacheFlags:
    def test_force_recomputes_despite_warm_cache(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        # a *failing* stub: --force must ignore it and recompute for real
        cache.put(RunSpec.make("FIG2"), stub_result("FIG2", ok=False))
        assert main(["FIG2", "--cache-dir", str(tmp_path), "--force"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out

    def test_warm_cache_reports_cached_source(self, warm_cache, capsys):
        main(["FIG1", "--cache-dir", str(warm_cache.directory)])
        err = capsys.readouterr().err
        assert "[cache]" in err
        assert "1 run(s), 0 executed, 1 from cache" in err
