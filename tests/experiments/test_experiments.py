"""Tests for the experiment harness: every artefact's checks must pass.

The analytic experiments run at full fidelity (they are fast); the
simulation experiments run on reduced grids so this file stays unit-test
speed — the full versions run in the benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablation_theta,
    closed_form_check,
    fig1,
    fig2,
    multitree,
    recursions,
    sim_vs_bound,
    tightness,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, run_experiment


class TestAnalyticExperiments:
    def test_fig1_full(self):
        result = fig1.run()
        assert result.all_checks_pass, result.failed_checks()
        assert len(result.rows) == 65  # k in [0, 64]

    def test_fig1_other_shape(self):
        result = fig1.run(m=2, t=16)
        assert result.all_checks_pass, result.failed_checks()

    def test_fig2_full(self):
        result = fig2.run()
        assert result.all_checks_pass, result.failed_checks()

    def test_recursions_reduced_grid(self):
        result = recursions.run(shapes=((2, 16), (3, 27), (4, 64)))
        assert result.all_checks_pass, result.failed_checks()

    def test_closed_form_reduced_grid(self):
        result = closed_form_check.run(
            shapes=((2, 32), (4, 64)), brute_shapes=((2, 8),)
        )
        assert result.all_checks_pass, result.failed_checks()

    def test_tightness_reduced_grid(self):
        result = tightness.run(shapes=((2, 64), (4, 64), (9, 81)))
        assert result.all_checks_pass, result.failed_checks()

    def test_multitree_reduced_grid(self):
        result = multitree.run(
            cases=((2, 16, 2, 8), (4, 64, 2, 16), (4, 64, 2, 4))
        )
        assert result.all_checks_pass, result.failed_checks()


class TestSimulationExperiments:
    def test_sim_vs_bound_reduced(self):
        result = sim_vs_bound.run(
            static_cases=((2, 8, 2), (4, 8, 2)),
            time_cases=((2, 16, 2),),
            random_trials=1,
        )
        assert result.all_checks_pass, result.failed_checks()

    def test_ablation_theta_reduced(self):
        result = ablation_theta.run(thetas=(0.0, 1.0), horizon=24_000_000)
        assert result.all_checks_pass, result.failed_checks()

    def test_serve_check_trace_mode(self):
        from repro.experiments import serve_check

        result = serve_check.run(events=24, stations=6, horizon=1_000_000)
        assert result.all_checks_pass, result.failed_checks()
        assert result.checks["decisions-deterministic"]

    def test_serve_check_admitted_set_mode(self):
        from repro.experiments import serve_check

        # One feasible two-source set, passed as the service would.
        classes = (
            (0, 1, "a", 8_000, 12_000_000, 1, 4_000_000),
            (1, 2, "b", 4_000, 8_000_000, 1, 4_000_000),
        )
        result = serve_check.run(classes=classes, horizon=1_000_000)
        assert result.all_checks_pass, result.failed_checks()
        assert len(result.rows) == 2


class TestRegistry:
    def test_all_ids_registered(self):
        expected = {
            "FIG1",
            "FIG2",
            "EQ2-8",
            "EQ9-10-15",
            "EQ11-14",
            "EQ16-19",
            "FC",
            "SIM-XI",
            "SIM-FC",
            "PROTO",
            "ABL-M",
            "ABL-THETA",
            "ABL-BURST",
            "ABL-PCP",
            "EXT-XOR",
            "EXT-DUAL",
            "EXT-HOST",
            "EXT-NOISE",
            "EXT-UTIL",
            "FABRIC",
            "SERVE-CHECK",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("NOPE")

    def test_run_experiment_dispatch(self):
        result = run_experiment("FIG2")
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "FIG2"


class TestExperimentResult:
    def test_render_contains_checks_and_rows(self):
        result = ExperimentResult(
            experiment_id="X",
            title="t",
            headers=["a"],
            rows=[[1]],
            checks={"ok": True, "bad": False},
            notes=["hello"],
        )
        text = result.render()
        assert "[PASS] ok" in text
        assert "[FAIL] bad" in text
        assert "note: hello" in text
        assert not result.all_checks_pass
        assert result.failed_checks() == ["bad"]

    def test_csv(self):
        result = ExperimentResult(
            experiment_id="X", title="t", headers=["a", "b"], rows=[[1, 2]]
        )
        assert result.csv() == "a,b\n1,2"
