"""Unit tests for the flight recorder (bounded causal trace ring)."""

from __future__ import annotations

import json

import pytest

from repro.obs.context import current_tracer, use_tracer
from repro.obs.tracer import (
    DEFAULT_CAPACITY,
    NULL_TRACER,
    FlightRecorder,
    TraceEvent,
    load_trace,
)


class TestEmit:
    def test_ids_are_monotone_from_zero(self):
        rec = FlightRecorder()
        assert [rec.emit("a"), rec.emit("b"), rec.emit("c")] == [0, 1, 2]
        assert rec.emitted == 3

    def test_top_level_events_have_no_parent(self):
        rec = FlightRecorder()
        rec.emit("a")
        assert rec.events()[0].parent is None

    def test_payload_is_kept(self):
        rec = FlightRecorder()
        rec.emit("a", x=1, name="c0")
        event = rec.events()[0]
        assert event.kind == "a"
        assert event.data == {"x": 1, "name": "c0"}

    def test_kind_is_positional_only(self):
        # Payloads may themselves carry a "kind" key (request kinds do).
        rec = FlightRecorder()
        rec.emit("serve/request", kind="join")
        assert rec.events()[0].data == {"kind": "join"}

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)
        assert FlightRecorder().capacity == DEFAULT_CAPACITY


class TestSpans:
    def test_span_parents_children(self):
        rec = FlightRecorder()
        with rec.span("root") as root_id:
            child = rec.emit("child")
        after = rec.emit("after")
        events = {event.id: event for event in rec.events()}
        assert events[child].parent == root_id
        assert events[after].parent is None

    def test_nested_spans_chain(self):
        rec = FlightRecorder()
        with rec.span("a") as a:
            with rec.span("b") as b:
                leaf = rec.emit("leaf")
        chain = rec.chain(leaf)
        assert [event.id for event in chain] == [a, b, leaf]

    def test_span_pops_on_exception(self):
        rec = FlightRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("root"):
                raise RuntimeError("boom")
        assert rec.events()[-1].parent is None or rec.emit("x") >= 0
        # After the failed span, new events are top-level again.
        top = rec.emit("top")
        assert rec.events()[-1].id == top
        assert rec.events()[-1].parent is None


class TestRing:
    def test_eviction_keeps_last_n(self):
        rec = FlightRecorder(capacity=3)
        for index in range(10):
            rec.emit("e", i=index)
        assert len(rec) == 3
        assert [event.id for event in rec.events()] == [7, 8, 9]
        assert rec.emitted == 10

    def test_chain_stops_at_evicted_ancestor(self):
        rec = FlightRecorder(capacity=2)
        with rec.span("root"):
            for index in range(5):
                leaf = rec.emit("leaf", i=index)
        # The root fell off the ring; the chain is just the leaf.
        assert [event.id for event in rec.chain(leaf)] == [leaf]

    def test_last_window(self):
        rec = FlightRecorder()
        for index in range(5):
            rec.emit("e", i=index)
        assert [event.id for event in rec.last(2)] == [3, 4]
        assert [event.id for event in rec.last(99)] == [0, 1, 2, 3, 4]
        assert rec.last(0) == []


class TestDeterminism:
    def test_no_wall_clock_fields(self):
        rec = FlightRecorder()
        with rec.span("root", seq=0):
            rec.emit("child", x=1)
        for doc in rec.snapshot():
            assert set(doc) <= {"id", "parent", "kind", "data"}

    def test_two_recordings_dump_identically(self, tmp_path):
        def record(rec):
            with rec.span("serve/request", seq=0, kind="join"):
                rec.emit("engine/add_class", name="c0")
            rec.emit("serve/decision", seq=0, verdict="admit")

        paths = []
        for run in ("a", "b"):
            rec = FlightRecorder()
            record(rec)
            path = tmp_path / f"{run}.jsonl"
            rec.dump_jsonl(path)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestDump:
    def test_dump_and_load_round_trip(self, tmp_path):
        rec = FlightRecorder()
        with rec.span("root", seq=1):
            rec.emit("child")
        path = tmp_path / "deep" / "trace.jsonl"
        assert rec.dump_jsonl(path) == 2
        events = load_trace(path)
        assert [event.kind for event in events] == ["root", "child"]
        assert events[1].parent == events[0].id
        assert events[0].data == {"seq": 1}

    def test_dump_is_valid_jsonl(self, tmp_path):
        rec = FlightRecorder()
        rec.emit("a", x=1)
        rec.emit("b")
        path = tmp_path / "trace.jsonl"
        rec.dump_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_dump_last_window(self, tmp_path):
        rec = FlightRecorder()
        for index in range(5):
            rec.emit("e", i=index)
        path = tmp_path / "trace.jsonl"
        assert rec.dump_jsonl(path, last=2) == 2
        assert [event.id for event in load_trace(path)] == [3, 4]

    def test_load_rejects_corrupt_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"id":0,"kind":"a"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_trace(path)


class TestEventSerialization:
    def test_to_dict_drops_absent_fields(self):
        assert TraceEvent(3, None, "k", {}).to_dict() == {
            "id": 3, "kind": "k",
        }
        assert TraceEvent(3, 1, "k", {"x": 2}).to_dict() == {
            "id": 3, "kind": "k", "parent": 1, "data": {"x": 2},
        }

    def test_from_dict_round_trip(self):
        event = TraceEvent(3, 1, "k", {"x": 2})
        again = TraceEvent.from_dict(json.loads(event.to_json()))
        assert (again.id, again.parent, again.kind, again.data) == (
            3, 1, "k", {"x": 2},
        )


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.emit("x", a=1) == -1
        with NULL_TRACER.span("y") as span_id:
            assert span_id == -1
        assert len(NULL_TRACER) == 0

    def test_ambient_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_scopes(self):
        rec = FlightRecorder()
        with use_tracer(rec):
            assert current_tracer() is rec
        assert current_tracer() is NULL_TRACER
