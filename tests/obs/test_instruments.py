"""Unit tests for the telemetry instruments and the registry."""

from __future__ import annotations

import pytest

from repro.obs.instruments import (
    LATENCY_EDGES,
    NULL_TELEMETRY,
    SEARCH_DEPTH_EDGES,
    Counter,
    Gauge,
    Histogram,
    Telemetry,
)


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        assert counter.snapshot() == 6

    def test_gauge_last_value_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.snapshot() == 1.5


class TestHistogram:
    def test_bucket_edges_route_values(self):
        hist = Histogram("h", edges=(10, 20, 30))
        for value in (5, 10, 11, 25, 31, 1000):
            hist.record(value)
        # bisect_left on inclusive upper bounds: 10 lands in the first
        # bucket, 11 in the second, everything above 30 in overflow.
        assert hist.counts == [2, 1, 1, 2]
        assert hist.count == 6
        assert hist.total == 5 + 10 + 11 + 25 + 31 + 1000
        assert hist.min == 5
        assert hist.max == 1000

    def test_edges_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", edges=(1, 1, 2))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", edges=())

    def test_quantile_reports_upper_edge(self):
        hist = Histogram("h", edges=(10, 20, 30))
        for value in (1, 2, 3, 15):
            hist.record(value)
        # Conservative: the interior estimate is an upper bound on the
        # true value; the extremes are tracked exactly.
        assert hist.quantile(0.0) == 1
        assert hist.quantile(0.5) == 10
        assert hist.quantile(1.0) == 15

    def test_quantile_extremes_are_exact(self):
        # q=0/q=1 bypass the bucket estimate entirely: even when every
        # sample shares one bucket, min/max come back exact.
        hist = Histogram("h", edges=(100,))
        for value in (7, 42, 99):
            hist.record(value)
        assert hist.quantile(0.0) == 7
        assert hist.quantile(1.0) == 99

    def test_quantile_single_bucket(self):
        hist = Histogram("h", edges=(10,))
        hist.record(4)
        assert hist.quantile(0.5) == 10  # upper-edge estimate
        assert hist.quantile(0.0) == 4
        assert hist.quantile(1.0) == 4

    def test_quantile_overflow_reports_observed_max(self):
        hist = Histogram("h", edges=(10,))
        hist.record(500)
        assert hist.quantile(0.99) == 500

    def test_quantile_empty_returns_none_for_any_q(self):
        hist = Histogram("h", edges=(10,))
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) is None
        assert hist.mean is None

    def test_quantile_out_of_range_raises(self):
        hist = Histogram("h", edges=(10,))
        hist.record(1)
        for q in (-0.01, 1.5, float("nan")):
            with pytest.raises(ValueError, match="quantile"):
                hist.quantile(q)

    def test_default_edge_tables(self):
        assert LATENCY_EDGES[0] == 64
        assert LATENCY_EDGES[-1] == 1 << 25
        assert all(
            b > a for a, b in zip(SEARCH_DEPTH_EDGES, SEARCH_DEPTH_EDGES[1:])
        )

    def test_snapshot_round_trip(self):
        hist = Histogram("h", edges=(10, 20))
        hist.record(7)
        snap = hist.snapshot()
        assert snap == {
            "edges": [10, 20],
            "counts": [1, 0, 0],
            "count": 1,
            "total": 7,
            "min": 7,
            "max": 7,
        }


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        telemetry = Telemetry()
        assert telemetry.counter("a") is telemetry.counter("a")
        assert telemetry.histogram("h") is telemetry.histogram("h")

    def test_kind_mismatch_raises(self):
        telemetry = Telemetry()
        telemetry.counter("x")
        with pytest.raises(TypeError, match="already registered as counter"):
            telemetry.gauge("x")

    def test_instruments_iterate_in_name_order(self):
        telemetry = Telemetry()
        telemetry.counter("b")
        telemetry.gauge("a")
        assert [i.name for i in telemetry.instruments()] == ["a", "b"]

    def test_histogram_edges_apply_on_first_creation_only(self):
        telemetry = Telemetry()
        first = telemetry.histogram("h", edges=(1, 2))
        again = telemetry.histogram("h", edges=(5, 6))
        assert again is first
        assert first.edges == (1, 2)


class TestSpans:
    def test_nesting_builds_a_call_tree(self):
        telemetry = Telemetry()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("inner"):
                pass
        (snap,) = telemetry.span_snapshots()
        assert snap["name"] == "outer"
        assert snap["calls"] == 1
        assert snap["seconds"] >= 0.0
        (child,) = snap["children"]
        assert child["name"] == "inner"
        assert child["calls"] == 2

    def test_same_name_at_different_depths_is_distinct(self):
        telemetry = Telemetry()
        with telemetry.span("a"):
            with telemetry.span("a"):
                pass
        (snap,) = telemetry.span_snapshots()
        assert snap["calls"] == 1
        assert snap["children"][0]["calls"] == 1

    def test_span_survives_exceptions(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with telemetry.span("boom"):
                raise RuntimeError("x")
        (snap,) = telemetry.span_snapshots()
        assert snap["calls"] == 1
        # the stack unwound: a new span is a sibling, not a child
        with telemetry.span("after"):
            pass
        assert len(telemetry.span_snapshots()) == 2

    def test_timings_false_drops_seconds(self):
        telemetry = Telemetry()
        with telemetry.span("s"):
            pass
        (snap,) = telemetry.span_snapshots(timings=False)
        assert "seconds" not in snap


class TestNullTelemetry:
    def test_disabled_flag(self):
        assert NULL_TELEMETRY.enabled is False
        assert Telemetry().enabled is True

    def test_instruments_are_inert_singletons(self):
        counter = NULL_TELEMETRY.counter("anything")
        assert counter is NULL_TELEMETRY.counter("other")
        counter.inc(100)
        assert counter.value == 0
        gauge = NULL_TELEMETRY.gauge("g")
        gauge.set(5)
        assert gauge.value == 0
        hist = NULL_TELEMETRY.histogram("h")
        hist.record(1)
        assert hist.count == 0

    def test_span_records_nothing(self):
        with NULL_TELEMETRY.span("s"):
            pass
        assert NULL_TELEMETRY.span_snapshots() == []
        assert list(NULL_TELEMETRY.instruments()) == []
