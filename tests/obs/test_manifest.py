"""RunTelemetry manifests: snapshot, serialisation, JSONL round-trips,
and the ambient registry context."""

from __future__ import annotations

import json

import pytest

from repro.faults.models import FaultPlan, StationCrash
from repro.obs.context import current_telemetry, use_telemetry
from repro.obs.instruments import NULL_TELEMETRY, Telemetry
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunTelemetry,
    fault_plan_hash,
    git_rev,
    read_manifests,
    write_manifests,
)


def _populated_registry() -> Telemetry:
    telemetry = Telemetry()
    telemetry.counter("slots/success").inc(3)
    telemetry.gauge("failovers").set(1)
    telemetry.histogram("latency/a", edges=(10, 20)).record(15)
    with telemetry.span("run"):
        with telemetry.span("spec/execute"):
            pass
    return telemetry


class TestFromRegistry:
    def test_snapshot_collects_every_instrument_kind(self):
        doc = RunTelemetry.from_registry(
            _populated_registry(), run_id="X", engine="des", seed=7
        )
        assert doc.counters == {"slots/success": 3}
        assert doc.gauges == {"failovers": 1}
        assert doc.histograms["latency/a"]["count"] == 1
        assert doc.spans[0]["name"] == "run"
        assert doc.spans[0]["children"][0]["name"] == "spec/execute"
        assert doc.engine == "des"
        assert doc.seed == 7
        assert doc.git_rev == git_rev()

    def test_fault_plan_hash_is_stable_across_forms(self):
        plan = FaultPlan((StationCrash(0, at=10),))
        assert fault_plan_hash(plan) == fault_plan_hash(plan.dumps())
        assert fault_plan_hash(None) is None
        assert len(fault_plan_hash(plan)) == 16

    def test_from_registry_hashes_the_plan(self):
        plan = FaultPlan((StationCrash(0, at=10),))
        doc = RunTelemetry.from_registry(
            Telemetry(), run_id="X", faults=plan
        )
        assert doc.fault_plan == fault_plan_hash(plan)


class TestSerialisation:
    def test_dict_round_trip(self):
        doc = RunTelemetry.from_registry(
            _populated_registry(), run_id="X", engine="fastloop", seed=1
        )
        reread = RunTelemetry.from_dict(doc.to_dict())
        assert reread == doc

    def test_to_dict_carries_schema(self):
        assert RunTelemetry(run_id="X").to_dict()["schema"] == MANIFEST_SCHEMA

    def test_from_dict_ignores_unknown_keys(self):
        doc = RunTelemetry.from_dict(
            {"run_id": "X", "schema": MANIFEST_SCHEMA, "future_field": 1}
        )
        assert doc.run_id == "X"

    def test_to_json_is_one_line(self):
        line = RunTelemetry(run_id="X").to_json()
        assert "\n" not in line
        assert json.loads(line)["run_id"] == "X"

    def test_content_projection_excludes_execution_details(self):
        doc = RunTelemetry.from_registry(
            _populated_registry(),
            run_id="X",
            engine="des",
            seed=3,
            source="pool",
            wall_seconds=1.5,
        )
        content = doc.content_dict()
        assert "engine" not in content
        assert "source" not in content
        assert "wall_seconds" not in content
        assert content["seed"] == 3
        # span structure survives, wall-clock durations do not
        assert content["spans"][0]["name"] == "run"
        assert "seconds" not in content["spans"][0]
        assert "seconds" not in content["spans"][0]["children"][0]


class TestJsonl:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        docs = [
            RunTelemetry.from_registry(_populated_registry(), run_id="A"),
            RunTelemetry(run_id="B", engine="des"),
        ]
        assert write_manifests(path, docs) == 2
        reread = read_manifests(path)
        assert reread == docs

    def test_append_mode(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        write_manifests(path, [RunTelemetry(run_id="A")])
        write_manifests(path, [RunTelemetry(run_id="B")], append=True)
        assert [d.run_id for d in read_manifests(path)] == ["A", "B"]

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text(RunTelemetry(run_id="A").to_json() + "\n\n\n")
        assert len(read_manifests(path)) == 1

    def test_corrupt_line_reports_location(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"run_id": "A"}\nnot json\n')
        with pytest.raises(ValueError, match=r":2: not valid JSON"):
            read_manifests(path)


class TestContext:
    def test_default_is_null(self):
        assert current_telemetry() is NULL_TELEMETRY

    def test_use_scopes_a_registry(self):
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            assert current_telemetry() is telemetry
            with use_telemetry(None):  # None shadows with the null registry
                assert current_telemetry() is NULL_TELEMETRY
            assert current_telemetry() is telemetry
        assert current_telemetry() is NULL_TELEMETRY

    def test_scope_unwinds_on_exception(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with use_telemetry(telemetry):
                raise RuntimeError("x")
        assert current_telemetry() is NULL_TELEMETRY
