"""Unit tests for streaming metric export (Prometheus + delta stream)."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    StreamExporter,
    iter_jsonl_tail,
    parse_prometheus,
    prometheus_name,
    render_prometheus,
    write_atomic,
)
from repro.obs.instruments import Telemetry


def _registry() -> Telemetry:
    telemetry = Telemetry()
    telemetry.counter("serve/requests").inc(3)
    telemetry.gauge("cache/entries").set(7.5)
    hist = telemetry.histogram("serve/decision_latency_us", (10, 100))
    for value in (5, 50, 500):
        hist.record(value)
    return telemetry


class TestPrometheusNames:
    def test_sanitises_and_prefixes(self):
        assert prometheus_name("serve/requests") == "repro_serve_requests"
        assert prometheus_name("a-b.c") == "repro_a_b_c"

    def test_digit_leading_gets_underscore(self):
        assert prometheus_name("9lives", prefix="") == "_9lives"


class TestRenderParse:
    def test_counter_gauge_histogram_render(self):
        text = render_prometheus(_registry())
        assert "# TYPE repro_serve_requests counter" in text
        assert "repro_serve_requests 3" in text
        assert "repro_cache_entries 7.5" in text
        # Cumulative buckets with a closing +Inf.
        assert 'repro_serve_decision_latency_us_bucket{le="10"} 1' in text
        assert 'repro_serve_decision_latency_us_bucket{le="100"} 2' in text
        assert 'repro_serve_decision_latency_us_bucket{le="+Inf"} 3' in text
        assert "repro_serve_decision_latency_us_sum 555" in text
        assert "repro_serve_decision_latency_us_count 3" in text

    def test_parse_round_trip(self):
        metrics = parse_prometheus(render_prometheus(_registry()))
        assert metrics["repro_serve_requests"] == {
            "type": "counter", "value": 3.0,
        }
        hist = metrics["repro_serve_decision_latency_us"]
        assert hist["type"] == "histogram"
        assert ("10", 1.0) in hist["buckets"]
        assert hist["count"] == 3.0
        assert hist["sum"] == 555.0

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(Telemetry()) == ""
        assert parse_prometheus("") == {}


class TestWriteAtomic:
    def test_replaces_content(self, tmp_path):
        path = tmp_path / "sub" / "m.prom"
        write_atomic(path, "one\n")
        write_atomic(path, "two\n")
        assert path.read_text() == "two\n"
        # No temp droppings left behind.
        assert [p.name for p in path.parent.iterdir()] == ["m.prom"]


class TestIterJsonlTail:
    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(iter_jsonl_tail(tmp_path / "absent.jsonl")) == []

    def test_reads_clean_stream(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"tick":1}\n{"tick":2}\n')
        assert [doc["tick"] for doc in iter_jsonl_tail(path)] == [1, 2]

    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"tick":1}\n{"tick":2,"coun')
        assert [doc["tick"] for doc in iter_jsonl_tail(path)] == [1]

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"tick":1}\ngarbage\n{"tick":3}\n')
        with pytest.raises(ValueError, match="corrupt"):
            list(iter_jsonl_tail(path))


class TestStreamExporter:
    def test_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            StreamExporter(
                Telemetry(), tmp_path / "m.prom", tmp_path / "m.jsonl",
                every=0,
            )

    def test_tick_cadence(self, tmp_path):
        exporter = StreamExporter(
            _registry(), tmp_path / "m.prom", tmp_path / "m.jsonl", every=3,
        )
        assert [exporter.tick() for _ in range(7)] == [
            False, False, True, False, False, True, False,
        ]
        assert exporter.exports == 2

    def test_delta_records_only_changes(self, tmp_path):
        telemetry = Telemetry()
        counter = telemetry.counter("serve/requests")
        exporter = StreamExporter(
            telemetry, tmp_path / "m.prom", tmp_path / "m.jsonl",
        )
        counter.inc(2)
        exporter.tick()
        exporter.tick()  # idle tick: nothing changed
        counter.inc()
        exporter.tick()
        records = list(iter_jsonl_tail(tmp_path / "m.jsonl"))
        assert records[0]["counters"] == {"serve/requests": [2, 2]}
        assert "counters" not in records[1]
        assert records[2]["counters"] == {"serve/requests": [1, 3]}

    def test_histogram_delta_summary(self, tmp_path):
        telemetry = Telemetry()
        hist = telemetry.histogram("lat", (10, 100))
        exporter = StreamExporter(
            telemetry, tmp_path / "m.prom", tmp_path / "m.jsonl",
        )
        for value in (5, 50):
            hist.record(value)
        exporter.tick()
        (record,) = iter_jsonl_tail(tmp_path / "m.jsonl")
        summary = record["histograms"]["lat"]
        assert summary["count"] == 2
        assert summary["delta"] == 2
        assert summary["p50"] == 10
        assert "p99" in summary

    def test_records_carry_tick_never_timestamps(self, tmp_path):
        exporter = StreamExporter(
            _registry(), tmp_path / "m.prom", tmp_path / "m.jsonl",
        )
        exporter.tick()
        (record,) = iter_jsonl_tail(tmp_path / "m.jsonl")
        assert record["tick"] == 1
        assert set(record) <= {"tick", "counters", "gauges", "histograms"}

    def test_prom_file_rewritten_each_export(self, tmp_path):
        telemetry = Telemetry()
        counter = telemetry.counter("c")
        exporter = StreamExporter(
            telemetry, tmp_path / "m.prom", tmp_path / "m.jsonl",
        )
        counter.inc()
        exporter.tick()
        first = (tmp_path / "m.prom").read_text()
        counter.inc()
        exporter.tick()
        second = (tmp_path / "m.prom").read_text()
        assert "repro_c 1" in first
        assert "repro_c 2" in second

    def test_stream_is_deterministic_json(self, tmp_path):
        exporter = StreamExporter(
            _registry(), tmp_path / "m.prom", tmp_path / "m.jsonl",
        )
        exporter.tick()
        line = (tmp_path / "m.jsonl").read_text().splitlines()[0]
        doc = json.loads(line)
        assert line == json.dumps(
            doc, sort_keys=True, separators=(",", ":")
        )
