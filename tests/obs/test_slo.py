"""Unit tests for declarative SLOs and multi-window burn-rate alerts."""

from __future__ import annotations

import json

import pytest

from repro.obs.instruments import Telemetry
from repro.obs.slo import (
    Breach,
    Objective,
    SloEngine,
    _histogram_bad,
    default_serve_objectives,
    load_objectives,
)


def _latency_objective(**overrides) -> Objective:
    base = dict(
        name="lat",
        kind="latency",
        instrument="lat_us",
        threshold=10.0,
        q=0.9,
        short_window=2,
        long_window=4,
    )
    base.update(overrides)
    return Objective(**base)


def _ratio_objective(**overrides) -> Objective:
    base = dict(
        name="inc",
        kind="ratio",
        instrument="bad",
        total="all",
        threshold=0.1,
        short_window=2,
        long_window=4,
    )
    base.update(overrides)
    return Objective(**base)


class TestObjectiveValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            _latency_objective(kind="availability")

    def test_latency_q_must_be_open_interval(self):
        for q in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError, match="q must be"):
                _latency_objective(q=q)

    def test_ratio_needs_total(self):
        with pytest.raises(ValueError, match="total"):
            _ratio_objective(total=None)

    def test_ratio_threshold_range(self):
        for threshold in (-0.1, 1.0, 1.5):
            with pytest.raises(ValueError, match="ratio threshold"):
                _ratio_objective(threshold=threshold)
        # Zero budget is legal: any badness breaches immediately.
        assert _ratio_objective(threshold=0.0).budget == 0.0

    def test_window_ordering(self):
        with pytest.raises(ValueError, match="short_window"):
            _latency_objective(short_window=4, long_window=4)
        with pytest.raises(ValueError, match="short_window"):
            _latency_objective(short_window=0, long_window=4)

    def test_burn_threshold_positive(self):
        with pytest.raises(ValueError, match="burn_threshold"):
            _latency_objective(burn_threshold=0.0)

    def test_budget_property(self):
        assert _latency_objective(q=0.99).budget == pytest.approx(0.01)
        assert _ratio_objective(threshold=0.25).budget == 0.25


class TestObjectiveSerialization:
    def test_round_trip(self):
        objective = _ratio_objective()
        again = Objective.from_dict(objective.to_dict())
        assert again == objective

    def test_latency_to_dict_drops_none_total(self):
        assert "total" not in _latency_objective().to_dict()

    def test_unknown_fields_rejected(self):
        doc = _latency_objective().to_dict()
        doc["severity"] = "page"
        with pytest.raises(ValueError, match="severity"):
            Objective.from_dict(doc)


class TestBreach:
    def test_describe_is_readable(self):
        breach = Breach(
            objective="lat", tick=7, burn_short=3.5, burn_long=2.25,
            burn_threshold=1.0,
        )
        text = breach.describe()
        assert "SLO lat" in text
        assert "short=3.50" in text
        assert "long=2.25" in text
        assert "tick 7" in text


class TestHistogramBad:
    def test_counts_samples_above_threshold(self):
        telemetry = Telemetry()
        hist = telemetry.histogram("h", edges=(10, 20, 30))
        for value in (5, 10, 15, 25, 100):
            hist.record(value)
        assert _histogram_bad(hist, 10.0) == 3
        assert _histogram_bad(hist, 30.0) == 1
        # The overflow bucket has no upper edge, so its samples count
        # bad at any threshold — conservative in the alerting direction.
        assert _histogram_bad(hist, 1000.0) == 1

    def test_off_edge_threshold_is_conservative(self):
        telemetry = Telemetry()
        hist = telemetry.histogram("h", edges=(10, 20))
        hist.record(11)  # lands in the (10, 20] bucket
        # Threshold 15 cannot split the bucket: the whole bucket counts bad.
        assert _histogram_bad(hist, 15.0) == 1


class TestSloEngine:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SloEngine([_latency_objective(), _latency_objective()])

    def test_no_breach_before_long_window_fills(self):
        telemetry = Telemetry()
        bad = telemetry.counter("bad")
        total = telemetry.counter("all")
        engine = SloEngine([_ratio_objective()])
        # Every request bad — but the window must fill first.
        for _ in range(4):  # long_window=4 needs 5 snapshots
            bad.inc()
            total.inc()
            assert engine.tick(telemetry) == []
        bad.inc()
        total.inc()
        (breach,) = engine.tick(telemetry)
        assert breach.objective == "inc"
        assert breach.tick == 5

    def test_breach_latches_once_per_excursion(self):
        telemetry = Telemetry()
        bad = telemetry.counter("bad")
        total = telemetry.counter("all")
        engine = SloEngine([_ratio_objective()])
        breaches = []
        for _ in range(10):
            bad.inc()
            total.inc()
            breaches.extend(engine.tick(telemetry))
        assert len(breaches) == 1
        assert engine.breached == ("inc",)

    def test_latch_clears_on_recovery_then_rebreaches(self):
        telemetry = Telemetry()
        bad = telemetry.counter("bad")
        total = telemetry.counter("all")
        engine = SloEngine([_ratio_objective()])

        def drive(ticks, badness):
            fired = []
            for _ in range(ticks):
                if badness:
                    bad.inc()
                total.inc()
                fired.extend(engine.tick(telemetry))
            return fired

        assert len(drive(6, badness=True)) == 1
        # Recover long enough for both windows to drop under threshold.
        assert drive(8, badness=False) == []
        assert engine.breached == ()
        # A fresh excursion fires a fresh breach.
        assert len(drive(6, badness=True)) == 1

    def test_short_window_spike_alone_does_not_fire(self):
        # The multi-window AND: a spike that only trips the short window
        # must stay quiet until the long window burns too.
        telemetry = Telemetry()
        bad = telemetry.counter("bad")
        total = telemetry.counter("all")
        engine = SloEngine([_ratio_objective(threshold=0.4, long_window=8)])
        for _ in range(9):  # fill the long window with clean traffic
            total.inc()
            engine.tick(telemetry)
        bad.inc()
        total.inc()
        # short burn = (1/2)/0.4 = 1.25 > 1; long burn = (1/8)/0.4 < 1.
        assert engine.tick(telemetry) == []
        assert engine.breached == ()

    def test_latency_objective_counts_histogram_badness(self):
        telemetry = Telemetry()
        hist = telemetry.histogram("lat_us", edges=(10, 100))
        engine = SloEngine([_latency_objective(q=0.9, threshold=10.0)])
        breaches = []
        for _ in range(6):
            hist.record(50)  # every sample over the 10us bound
            breaches.extend(engine.tick(telemetry))
        assert len(breaches) == 1
        # Budget 0.1, bad fraction 1.0 -> burn 10x on both windows.
        assert breaches[0].burn_short == pytest.approx(10.0)
        assert breaches[0].burn_long == pytest.approx(10.0)

    def test_zero_budget_breaches_on_any_badness(self):
        telemetry = Telemetry()
        bad = telemetry.counter("bad")
        total = telemetry.counter("all")
        engine = SloEngine([_ratio_objective(threshold=0.0)])
        for _ in range(5):
            total.inc()
            assert engine.tick(telemetry) == []
        bad.inc()
        total.inc()
        (breach,) = engine.tick(telemetry)
        assert breach.burn_short == float("inf")

    def test_idle_ticks_burn_nothing(self):
        telemetry = Telemetry()
        telemetry.counter("bad")
        telemetry.counter("all")
        engine = SloEngine([_ratio_objective()])
        for _ in range(10):
            assert engine.tick(telemetry) == []


class TestDefaults:
    def test_default_serve_objectives_shape(self):
        objectives = default_serve_objectives()
        assert [objective.name for objective in objectives] == [
            "decision-latency-p99", "incident-rate",
        ]
        latency, incidents = objectives
        assert latency.kind == "latency"
        assert latency.instrument == "serve/decision_latency_us"
        assert incidents.kind == "ratio"
        assert incidents.total == "serve/requests"
        # All defaults must construct a valid engine.
        SloEngine(objectives)


class TestLoadObjectives:
    def test_loads_json_list(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text(json.dumps([
            _latency_objective().to_dict(),
            _ratio_objective().to_dict(),
        ]))
        objectives = load_objectives(path)
        assert [objective.name for objective in objectives] == ["lat", "inc"]

    def test_rejects_non_list(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text('{"name": "lat"}')
        with pytest.raises(ValueError, match="JSON list"):
            load_objectives(path)
