"""Tests for Problem P2 (Eq. 16-19)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.multi_tree import (
    even_split_identity_gap,
    multi_tree_bound,
    multi_tree_bound_even_split,
    multi_tree_bound_extended,
    multi_tree_exact_optimum,
)
from repro.core.search_cost import exact_cost_table


class TestExactOptimum:
    def test_single_tree_reduces_to_xi(self, small_shape):
        m, t = small_shape
        table = exact_cost_table(m, t)
        for u in range(2, t + 1):
            assert multi_tree_exact_optimum(u, 1, t, m).value == table[u]

    def test_witness_is_consistent(self):
        optimum = multi_tree_exact_optimum(12, 3, 16, 2)
        table = exact_cost_table(2, 16)
        assert sum(optimum.composition) == 12
        assert len(optimum.composition) == 3
        assert all(2 <= k <= 16 for k in optimum.composition)
        assert sum(table[k] for k in optimum.composition) == optimum.value

    def test_brute_force_cross_check(self):
        # Compare the DP against explicit enumeration for small cases.
        import itertools

        m, t, v, u = 2, 8, 3, 12
        table = exact_cost_table(m, t)
        best = max(
            sum(table[k] for k in parts)
            for parts in itertools.product(range(2, t + 1), repeat=v)
            if sum(parts) == u
        )
        assert multi_tree_exact_optimum(u, v, t, m).value == best

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            multi_tree_exact_optimum(3, 2, 16, 2)  # u < 2v
        with pytest.raises(ValueError):
            multi_tree_exact_optimum(33, 2, 16, 2)  # u > t*v
        with pytest.raises(ValueError):
            multi_tree_exact_optimum(4, 0, 16, 2)


class TestAnalyticBound:
    def test_dominates_exact_optimum(self):
        for m, t in [(2, 16), (3, 27), (4, 64)]:
            for v in (1, 2, 3):
                for u in range(2 * v, min(t * v, 40) + 1, 3):
                    bound = multi_tree_bound(float(u), v, t, m)
                    exact = multi_tree_exact_optimum(u, v, t, m).value
                    assert bound >= exact - 1e-9, (m, t, v, u)

    def test_eq18_identity(self):
        for m, t in [(2, 16), (4, 64)]:
            for v in (1, 2, 4):
                for u in range(2 * v, 2 * t * v // m + 1, 5):
                    assert even_split_identity_gap(float(u), v, t, m) < 1e-9

    def test_exact_at_touch_points(self):
        # u/v = 2 m^i: every tree even-split at a touch point.
        m, t, v = 4, 64, 2
        for per_tree in (2, 8, 32):
            u = per_tree * v
            bound = multi_tree_bound(float(u), v, t, m)
            exact = multi_tree_exact_optimum(u, v, t, m).value
            assert bound == pytest.approx(exact)

    def test_single_tree_reduces_to_xi_tilde(self):
        from repro.core.asymptotic import xi_tilde

        assert multi_tree_bound(8.0, 1, 64, 4) == pytest.approx(
            xi_tilde(8, 64, 4)
        )

    @given(
        st.sampled_from([(2, 16), (4, 64)]),
        st.integers(1, 4),
        st.data(),
    )
    def test_even_split_forms_agree(self, shape, v, data):
        m, t = shape
        u = data.draw(st.integers(2 * v, 2 * t * v // m))
        lhs = multi_tree_bound_even_split(float(u), v, t, m)
        rhs = multi_tree_bound(float(u), v, t, m)
        assert lhs == pytest.approx(rhs)


class TestExtendedBound:
    def test_light_load_below_two_per_tree(self):
        # u/v < 2: falls back to xi_tilde(2) per tree.
        value = multi_tree_bound_extended(2.0, 4, 64, 4)
        from repro.core.asymptotic import xi_tilde

        assert value == pytest.approx(4 * xi_tilde(2, 64, 4))

    def test_heavy_load_beyond_knee(self):
        # u/v > 2t/m: linear regime per tree, still >= exact optimum.
        m, t, v = 4, 16, 2
        u = 30  # 15 per tree > 2t/m = 8
        bound = multi_tree_bound_extended(float(u), v, t, m)
        exact = multi_tree_exact_optimum(u, v, t, m).value
        assert bound >= exact - 1e-9

    def test_saturated_equals_v_times_xi_full(self):
        m, t, v = 2, 16, 3
        bound = multi_tree_bound_extended(float(t * v), v, t, m)
        table = exact_cost_table(m, t)
        assert bound == pytest.approx(v * table[t])

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_tree_bound_extended(-1.0, 2, 16, 2)
        with pytest.raises(ValueError):
            multi_tree_bound_extended(33.0, 2, 16, 2)
