"""The bisect-based ``simulate_search`` against the original scan semantics.

``simulate_search`` replaced its O(k) per-node membership scans with
interval counts over sorted leaf arrays.  ``_simulate_search_reference``
below preserves the original scan-based implementation verbatim; every
test compares full :class:`SearchOutcome` objects (cost, slot sequence,
transmission order), exhaustively on small trees.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.search_cost import SearchOutcome, simulate_search
from repro.core.trees import BalancedTree, LeafInterval


def _simulate_search_reference(active, t, m, heavy=(), skip_empty=False):
    """The pre-bisect implementation: per-node membership scans."""
    tree = BalancedTree.of(m=m, leaves=t)
    active_set = frozenset(active)
    heavy_set = frozenset(heavy)
    for leaf in active_set | heavy_set:
        if not 0 <= leaf < t:
            raise ValueError(f"leaf {leaf} out of range [0, {t})")
    if active_set & heavy_set:
        raise ValueError("a leaf cannot be both singly and multiply occupied")
    slots: list[str] = []
    order: list[int] = []
    cost = 0
    stack: list[LeafInterval] = [tree.root]
    while stack:
        node = stack.pop()
        singles = sum(1 for leaf in active_set if leaf in node)
        heavies = sum(1 for leaf in heavy_set if leaf in node)
        effective = singles + 2 * heavies
        if effective == 0:
            slots.append("silence")
            cost += 1
        elif effective == 1:
            slots.append("success")
            (leaf,) = (leaf for leaf in active_set if leaf in node)
            order.append(leaf)
        elif node.is_leaf():
            slots.append("handoff")
            order.append(node.lo)
        else:
            slots.append("collision")
            cost += 1
            children = node.children(m)
            if skip_empty:
                children = tuple(
                    child
                    for child in children
                    if any(leaf in child for leaf in active_set)
                    or any(leaf in child for leaf in heavy_set)
                )
            stack.extend(reversed(children))
    return SearchOutcome(
        cost=cost, slots=tuple(slots), transmission_order=tuple(order)
    )


@pytest.mark.parametrize("m,t", [(2, 8), (3, 9), (4, 16), (2, 16)])
@pytest.mark.parametrize("skip_empty", [False, True])
def test_exhaustive_active_only(m, t, skip_empty):
    """Every active-leaf subset of small trees, both bus semantics."""
    for k in range(t + 1):
        for placement in itertools.combinations(range(t), k):
            assert simulate_search(
                placement, t, m, skip_empty=skip_empty
            ) == _simulate_search_reference(
                placement, t, m, skip_empty=skip_empty
            )


@pytest.mark.parametrize("m,t", [(2, 8), (3, 9)])
@pytest.mark.parametrize("skip_empty", [False, True])
def test_exhaustive_with_heavy_leaves(m, t, skip_empty):
    """Every disjoint (active, heavy) pair with small cardinalities."""
    leaves = range(t)
    for k_active in range(3):
        for k_heavy in range(3):
            for active in itertools.combinations(leaves, k_active):
                remaining = [leaf for leaf in leaves if leaf not in active]
                for heavy in itertools.combinations(remaining, k_heavy):
                    assert simulate_search(
                        active, t, m, heavy=heavy, skip_empty=skip_empty
                    ) == _simulate_search_reference(
                        active, t, m, heavy=heavy, skip_empty=skip_empty
                    )


def test_randomized_large_trees():
    """Random mixed placements on trees too large for exhaustion."""
    rng = random.Random(20260806)
    for _ in range(200):
        m = rng.choice([2, 3, 4])
        height = rng.randint(1, 4 if m == 4 else 5)
        t = m**height
        population = list(range(t))
        rng.shuffle(population)
        k_active = rng.randint(0, min(t, 12))
        k_heavy = rng.randint(0, min(t - k_active, 4))
        active = population[:k_active]
        heavy = population[k_active : k_active + k_heavy]
        skip_empty = rng.random() < 0.5
        assert simulate_search(
            active, t, m, heavy=heavy, skip_empty=skip_empty
        ) == _simulate_search_reference(
            active, t, m, heavy=heavy, skip_empty=skip_empty
        )


def test_input_validation_unchanged():
    with pytest.raises(ValueError, match="out of range"):
        simulate_search([8], 8, 2)
    with pytest.raises(ValueError, match="both singly and multiply"):
        simulate_search([1], 8, 2, heavy=[1])
