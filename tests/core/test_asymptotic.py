"""Tests for the asymptotic bound xi_tilde and tightness (Eq. 11-14)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.asymptotic import (
    UNIVERSAL_TIGHTNESS_M,
    measure_gap,
    tightness_constant,
    touch_points,
    universal_tightness_constant,
    xi_tilde,
    xi_tilde_extended,
)
from repro.core.search_cost import exact_cost_table


class TestXiTilde:
    def test_upper_bound_on_valid_interval(self, small_shape):
        m, t = small_shape
        table = exact_cost_table(m, t)
        knee = 2 * t // m
        for k in range(2, knee + 1):
            assert xi_tilde(k, t, m) >= table[k] - 1e-9

    def test_exact_at_touch_points(self, small_shape):
        m, t = small_shape
        table = exact_cost_table(m, t)
        for k in touch_points(t, m):
            if k <= 2 * t // m:
                assert abs(xi_tilde(k, t, m) - table[k]) < 1e-9, (m, t, k)

    def test_eq5_consistency_at_k2(self, small_shape):
        # xi_tilde(2) reduces algebraically to Eq. 5.
        m, t = small_shape
        n = round(math.log(t, m))
        assert abs(xi_tilde(2, t, m) - (m * n - 1)) < 1e-9

    def test_eq6_consistency_at_knee(self):
        m, t = 4, 64
        expected = (t - 1) / (m - 1) + (t - 2 * t / m)
        assert abs(xi_tilde(2 * t // m, t, m) - expected) < 1e-9

    def test_concavity_in_k(self, small_shape):
        m, t = small_shape
        if 2 * t // m < 4:
            pytest.skip("interval too small for a second difference")
        ks = [2 + i * (2 * t / m - 2) / 20 for i in range(21)]
        values = [xi_tilde(k, t, m) for k in ks]
        for a, b, c in zip(values, values[1:], values[2:]):
            assert b >= (a + c) / 2 - 1e-9

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            xi_tilde(1.5, 64, 4)
        with pytest.raises(ValueError):
            xi_tilde(65, 64, 4)


class TestXiTildeExtended:
    def test_covers_whole_range(self, small_shape):
        m, t = small_shape
        table = exact_cost_table(m, t)
        for k in range(t + 1):
            assert xi_tilde_extended(float(k), t, m) >= table[k] - 1e-9

    def test_continuous_at_knee(self, small_shape):
        m, t = small_shape
        knee = 2 * t / m
        if knee < 2 or knee >= t:
            pytest.skip("no linear regime beyond the knee for this shape")
        below = xi_tilde_extended(knee - 1e-9, t, m)
        above = xi_tilde_extended(knee + 1e-9, t, m)
        assert abs(below - above) < 1e-5

    def test_matches_linear_regime_at_integers(self):
        m, t = 4, 64
        table = exact_cost_table(m, t)
        for k in range(2 * t // m, t + 1):
            assert abs(xi_tilde_extended(float(k), t, m) - table[k]) < 1e-9

    def test_clamps_below_two(self):
        assert xi_tilde_extended(0.5, 64, 4) == xi_tilde(2, 64, 4)

    @given(st.floats(0, 64))
    def test_nonnegative(self, k):
        assert xi_tilde_extended(k, 64, 4) >= 0


class TestTightness:
    def test_eq13_even_gap_bound(self):
        for m, t in [(2, 64), (2, 256), (3, 81), (4, 64), (4, 256)]:
            report = measure_gap(m, t)
            assert report.even_max_gap <= report.bound_eq13 + 1e-9

    def test_eq12_argmax_in_last_period(self):
        for m, t in [(2, 64), (2, 256), (3, 81), (4, 256)]:
            assert measure_gap(m, t).argmax_in_last_period()

    def test_eq14_universal_constant(self):
        constant = universal_tightness_constant()
        assert constant <= 0.0954
        assert constant > 0.095  # the paper quotes 9.54%
        assert constant == pytest.approx(
            tightness_constant(UNIVERSAL_TIGHTNESS_M)
        )

    def test_m9_maximises_eq13(self):
        best = tightness_constant(UNIVERSAL_TIGHTNESS_M)
        for m in range(2, 100):
            assert tightness_constant(m) <= best + 1e-12

    def test_gap_report_fields(self):
        report = measure_gap(4, 64)
        assert report.m == 4 and report.t == 64
        assert 0 <= report.even_relative_gap <= 0.0954
        assert report.max_gap >= report.even_max_gap

    def test_measure_gap_validation(self):
        with pytest.raises(ValueError):
            measure_gap(4, 1)  # single-leaf tree: interval [2, 2t/m] empty
        # t = m gives knee = 2, a valid single-point interval.
        assert measure_gap(4, 4).even_argmax_k == 2

    def test_tightness_constant_validation(self):
        with pytest.raises(ValueError):
            tightness_constant(1)


class TestTouchPoints:
    def test_form(self):
        assert touch_points(64, 4) == [2, 8, 32]
        assert touch_points(16, 2) == [2, 4, 8, 16]

    def test_all_within_range(self, small_shape):
        m, t = small_shape
        for k in touch_points(t, m):
            assert 2 <= k <= t
