"""Tests for the closed forms (Eq. 9, Eq. 10, Eq. 15)."""

from __future__ import annotations

import pytest

from repro.core.closed_form import (
    xi_closed_form,
    xi_even_closed_form,
    xi_linear_regime,
)
from repro.core.search_cost import exact_cost_table


class TestEq10:
    def test_matches_dp_on_grid(self, large_shape):
        m, t = large_shape
        dp = exact_cost_table(m, t)
        for k in range(t + 1):
            assert xi_closed_form(k, t, m) == dp[k], (m, t, k)

    def test_base_values(self):
        assert xi_closed_form(0, 64, 4) == 1
        assert xi_closed_form(1, 64, 4) == 0

    def test_fig1_values(self):
        # Anchor a few values of the paper's Fig. 1 curve (m=4, t=64).
        assert xi_closed_form(2, 64, 4) == 11
        assert xi_closed_form(64, 64, 4) == 21

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            xi_closed_form(65, 64, 4)
        with pytest.raises(Exception):
            xi_closed_form(2, 48, 4)  # not a power of m


class TestEq9:
    def test_matches_dp_even_restriction(self, large_shape):
        m, t = large_shape
        dp = exact_cost_table(m, t)
        for p in range(t // 2 + 1):
            assert xi_even_closed_form(p, t, m) == dp[2 * p], (m, t, p)

    def test_p_zero(self):
        assert xi_even_closed_form(0, 64, 4) == 1

    def test_p_out_of_range(self):
        with pytest.raises(ValueError):
            xi_even_closed_form(33, 64, 4)


class TestEq15:
    def test_exact_on_saturated_interval(self, large_shape):
        m, t = large_shape
        dp = exact_cost_table(m, t)
        for k in range(2 * t // m, t + 1):
            assert xi_linear_regime(k, t, m) == dp[k]

    def test_closed_expression(self):
        # (m t - 1)/(m - 1) - k
        assert xi_linear_regime(64, 64, 4) == (4 * 64 - 1) // 3 - 64

    def test_rejects_outside_regime(self):
        with pytest.raises(ValueError):
            xi_linear_regime(2, 64, 4)  # 2 < 2t/m = 32

    def test_unit_slope(self, small_shape):
        m, t = small_shape
        lo = 2 * t // m
        values = [xi_linear_regime(k, t, m) for k in range(lo, t + 1)]
        assert all(a - b == 1 for a, b in zip(values, values[1:]))
