"""Tests for branching-degree selection (Fig. 2 generalisation)."""

from __future__ import annotations

import pytest

from repro.core.optimal_branching import (
    admissible_degrees,
    compare_degrees,
    dominates,
    optimal_degree,
)
from repro.core.search_cost import exact_cost_table


class TestAdmissibleDegrees:
    def test_64(self):
        assert admissible_degrees(64) == [2, 4, 8, 64]

    def test_with_candidates(self):
        assert admissible_degrees(64, [2, 3, 4]) == [2, 4]

    def test_prime_leaf_count(self):
        assert admissible_degrees(7) == [7]

    def test_validation(self):
        with pytest.raises(ValueError):
            admissible_degrees(1)


class TestDominates:
    def test_fig2_claim(self):
        assert dominates(4, 2, 64)

    def test_not_symmetric(self):
        assert not dominates(2, 4, 64)

    def test_degree_dominates_itself(self):
        assert dominates(4, 4, 64)

    def test_flat_tree_does_not_dominate(self):
        # m = 64 is terrible at small k (xi(2) = 63 vs 11).
        assert not dominates(64, 4, 64)


class TestCompareDegrees:
    def test_sorted_by_weighted_cost(self):
        results = compare_degrees(64)
        costs = [r.weighted_cost for r in results]
        assert costs == sorted(costs)

    def test_profile_consistency(self):
        results = compare_degrees(64, degrees=[2, 4])
        for result in results:
            table = exact_cost_table(result.m, 64)
            assert result.costs == table.costs
            assert result.peak_cost == max(table[k] for k in range(2, 65))
            assert result.cost_at(2) == table[2]

    def test_weights_length_validated(self):
        with pytest.raises(ValueError):
            compare_degrees(64, weights=[1.0] * 10)

    def test_no_admissible_degree(self):
        with pytest.raises(ValueError):
            compare_degrees(64, degrees=[3, 5])


class TestOptimalDegree:
    def test_small_k_regime_prefers_quaternary(self):
        small_k = [1.0 if k <= 4 else 0.0 for k in range(65)]
        assert optimal_degree(64, degrees=[2, 4, 8], weights=small_k) == 4

    def test_uniform_regime_prefers_flatter_trees(self):
        # Integrated over all k, larger m wins at t = 64 (fewer levels).
        assert optimal_degree(64) in (8, 64)

    def test_respects_candidate_restriction(self):
        assert optimal_degree(64, degrees=[2]) == 2
