"""Tests for the feasibility conditions (section 4.3)."""

from __future__ import annotations

import math

import pytest

from repro.core.feasibility import (
    TreeParameters,
    check_feasibility,
    interference_bound,
    latency_bound,
    max_feasible_scale,
    queue_rank_bound,
    static_tree_count,
)
from repro.model.message import DensityBound, MessageClass
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec
from repro.model.workloads import uniform_problem
from repro.net.phy import GIGABIT_ETHERNET, ideal_medium

_MS = 1_000_000


def _single_class_problem(z=4, length=8_000, deadline=10 * _MS, a=1, w=4 * _MS):
    return uniform_problem(z=z, length=length, deadline=deadline, a=a, w=w)


def _trees(problem) -> TreeParameters:
    return TreeParameters(
        time_f=64,
        time_m=4,
        static_q=problem.static_q,
        static_m=problem.static_m,
    )


class TestQueueRank:
    def test_single_class_hand_computed(self):
        # r(M) = ceil(d/w) * a - 1 for a source with one class.
        cls = MessageClass(
            name="x", length=1000, deadline=10 * _MS,
            bound=DensityBound(a=2, w=4 * _MS),
        )
        source = SourceSpec(
            source_id=0, message_classes=(cls,), static_indices=(0,)
        )
        assert queue_rank_bound(cls, source) == math.ceil(10 / 4) * 2 - 1

    def test_multi_class_sums(self):
        a = MessageClass(
            name="a", length=1000, deadline=8 * _MS,
            bound=DensityBound(a=1, w=2 * _MS),
        )
        b = MessageClass(
            name="b", length=1000, deadline=4 * _MS,
            bound=DensityBound(a=1, w=3 * _MS),
        )
        source = SourceSpec(
            source_id=0, message_classes=(a, b), static_indices=(0,)
        )
        # For target a: ceil(8/2)*1 + ceil(8/3)*1 - 1 = 4 + 3 - 1.
        assert queue_rank_bound(a, source) == 6


class TestInterference:
    def test_hand_computed_uniform(self):
        problem = _single_class_problem(z=4, deadline=10 * _MS, a=1, w=4 * _MS)
        target = problem.sources[0].message_classes[0]
        medium = GIGABIT_ETHERNET
        l_prime = medium.encapsulate(target.length)
        expected = 4 * math.ceil((10 * _MS + 10 * _MS - l_prime) / (4 * _MS))
        assert interference_bound(target, problem, medium) == expected

    def test_short_deadlines_do_not_go_negative(self):
        problem = _single_class_problem(deadline=2 * _MS)
        target = problem.sources[0].message_classes[0]
        assert interference_bound(target, problem, GIGABIT_ETHERNET) >= 0


class TestStaticTreeCount:
    def test_formula(self):
        assert static_tree_count(0, 1) == 1
        assert static_tree_count(3, 1) == 4
        assert static_tree_count(3, 2) == 2
        assert static_tree_count(4, 2) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            static_tree_count(-1, 1)
        with pytest.raises(ValueError):
            static_tree_count(0, 0)


class TestLatencyBound:
    def test_components_positive(self):
        problem = _single_class_problem()
        source = problem.sources[0]
        target = source.message_classes[0]
        fc = latency_bound(
            target, source, problem, GIGABIT_ETHERNET, _trees(problem)
        )
        assert fc.rank >= 0
        assert fc.interference >= 1
        assert fc.static_trees >= 1
        assert fc.transmission_bits > 0
        assert fc.search_slots_static > 0
        assert fc.search_slots_time > 0
        assert fc.bound > 0

    def test_bound_grows_with_density(self):
        trees = _trees(_single_class_problem())
        bounds = []
        for scale in (1.0, 2.0, 4.0):
            problem = uniform_problem(
                z=4, length=8_000, deadline=10 * _MS, a=1, w=4 * _MS,
                scale=scale,
            )
            source = problem.sources[0]
            fc = latency_bound(
                source.message_classes[0], source, problem,
                GIGABIT_ETHERNET, trees,
            )
            bounds.append(fc.bound)
        assert bounds[0] < bounds[1] < bounds[2]

    def test_bound_grows_with_z(self):
        trees = None
        bounds = []
        for z in (2, 4, 8):
            problem = uniform_problem(
                z=z, length=8_000, deadline=10 * _MS, a=1, w=4 * _MS
            )
            trees = _trees(problem)
            source = problem.sources[0]
            fc = latency_bound(
                source.message_classes[0], source, problem,
                GIGABIT_ETHERNET, trees,
            )
            bounds.append(fc.bound)
        assert bounds[0] < bounds[1] < bounds[2]

    def test_slack_sign_matches_feasibility(self):
        problem = _single_class_problem()
        report = check_feasibility(problem, GIGABIT_ETHERNET, _trees(problem))
        for fc in report.classes:
            assert fc.feasible == (fc.slack >= 0)


class TestCheckFeasibility:
    def test_light_uniform_is_feasible(self):
        problem = _single_class_problem()
        report = check_feasibility(problem, GIGABIT_ETHERNET, _trees(problem))
        assert report.feasible
        assert len(report.classes) == 4

    def test_overload_is_infeasible(self):
        problem = uniform_problem(
            z=8, length=64_000, deadline=1 * _MS, a=8, w=1 * _MS
        )
        report = check_feasibility(problem, GIGABIT_ETHERNET, _trees(problem))
        assert not report.feasible

    def test_worst_is_minimum_slack(self):
        problem = _single_class_problem()
        report = check_feasibility(problem, GIGABIT_ETHERNET, _trees(problem))
        assert report.worst.slack == min(c.slack for c in report.classes)

    def test_by_class_lookup(self):
        problem = _single_class_problem()
        report = check_feasibility(problem, GIGABIT_ETHERNET, _trees(problem))
        assert report.by_class("uniform-0").class_name == "uniform-0"
        with pytest.raises(KeyError):
            report.by_class("nope")

    def test_slower_medium_tighter_in_seconds(self):
        # Same instance on classic 10 Mb/s Ethernet: the bound, converted
        # to SI seconds, must be far larger than on Gigabit Ethernet.
        # (Bit-time values are not comparable across media directly.)
        from repro.net.phy import CLASSIC_ETHERNET

        problem = _single_class_problem()
        trees = _trees(problem)
        giga = check_feasibility(problem, GIGABIT_ETHERNET, trees)
        classic = check_feasibility(problem, CLASSIC_ETHERNET, trees)
        giga_seconds = giga.worst.bound * GIGABIT_ETHERNET.throughput.bit_time_seconds
        classic_seconds = (
            classic.worst.bound * CLASSIC_ETHERNET.throughput.bit_time_seconds
        )
        assert classic_seconds > giga_seconds

    def test_larger_slot_time_increases_bound(self):
        problem = _single_class_problem()
        trees = _trees(problem)
        small_slot = check_feasibility(problem, ideal_medium(slot_time=64), trees)
        big_slot = check_feasibility(
            problem, ideal_medium(slot_time=4096), trees
        )
        assert big_slot.worst.bound > small_slot.worst.bound


class TestMaxFeasibleScale:
    def test_monotone_region_found(self):
        def factory(scale: float):
            return uniform_problem(
                z=4, length=8_000, deadline=10 * _MS, a=1, w=4 * _MS,
                scale=scale,
            )

        trees = _trees(factory(1.0))
        best = max_feasible_scale(factory, GIGABIT_ETHERNET, trees, hi=256.0)
        assert best > 1.0
        assert check_feasibility(factory(best), GIGABIT_ETHERNET, trees).feasible
        assert not check_feasibility(
            factory(best * 1.05), GIGABIT_ETHERNET, trees
        ).feasible

    def test_all_feasible_returns_hi(self):
        def factory(scale: float):
            return uniform_problem(
                z=2, length=1_000, deadline=50 * _MS, a=1, w=50 * _MS,
                scale=scale,
            )

        trees = _trees(factory(1.0))
        assert (
            max_feasible_scale(factory, GIGABIT_ETHERNET, trees, hi=2.0) == 2.0
        )

    def test_nothing_feasible_returns_zero(self):
        def factory(scale: float):
            return uniform_problem(
                z=8, length=500_000, deadline=1 * _MS, a=4, w=1 * _MS,
                scale=scale,
            )

        trees = _trees(factory(1.0))
        assert (
            max_feasible_scale(factory, GIGABIT_ETHERNET, trees, lo=1.0)
            == 0.0
        )


class TestTreeParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            TreeParameters(time_f=48, time_m=4, static_q=16, static_m=2)
        with pytest.raises(ValueError):
            TreeParameters(time_f=64, time_m=4, static_q=48, static_m=4)
