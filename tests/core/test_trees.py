"""Tests for balanced m-ary tree geometry."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.trees import (
    BalancedTree,
    LeafInterval,
    TreeShapeError,
    ceil_log,
    floor_log,
    geometric_sum,
    integer_log,
    is_power_of,
)


class TestIsPowerOf:
    def test_exact_powers(self):
        assert is_power_of(1, 2)
        assert is_power_of(64, 2)
        assert is_power_of(64, 4)
        assert is_power_of(64, 8)
        assert is_power_of(64, 64)
        assert is_power_of(243, 3)

    def test_non_powers(self):
        assert not is_power_of(48, 4)
        assert not is_power_of(63, 2)
        assert not is_power_of(0, 2)
        assert not is_power_of(-8, 2)

    def test_base_below_two_rejected(self):
        with pytest.raises(ValueError):
            is_power_of(8, 1)

    @given(st.integers(2, 7), st.integers(0, 10))
    def test_powers_always_recognised(self, base, exponent):
        assert is_power_of(base**exponent, base)


class TestIntegerLogs:
    def test_integer_log_roundtrip(self):
        assert integer_log(64, 4) == 3
        assert integer_log(1, 5) == 0

    def test_integer_log_rejects_non_power(self):
        with pytest.raises(TreeShapeError):
            integer_log(48, 4)

    def test_floor_log_no_float_artifacts(self):
        # math.log(243, 3) = 4.9999... — integer arithmetic must not care.
        assert floor_log(243, 3) == 5
        assert floor_log(242, 3) == 4
        assert floor_log(1, 2) == 0

    def test_ceil_log(self):
        assert ceil_log(1, 2) == 0
        assert ceil_log(2, 2) == 1
        assert ceil_log(3, 2) == 2
        assert ceil_log(243, 3) == 5
        assert ceil_log(244, 3) == 6

    @given(st.integers(2, 6), st.integers(1, 100_000))
    def test_floor_ceil_sandwich(self, base, value):
        lo = floor_log(value, base)
        hi = ceil_log(value, base)
        assert base**lo <= value <= base**hi
        assert hi - lo in (0, 1)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            floor_log(0, 2)
        with pytest.raises(ValueError):
            ceil_log(5, 1)


class TestGeometricSum:
    def test_known_values(self):
        assert geometric_sum(2, 3) == 7
        assert geometric_sum(4, 3) == 21
        assert geometric_sum(3, 0) == 0

    @given(st.integers(2, 6), st.integers(0, 12))
    def test_matches_direct_sum(self, base, exponent):
        assert geometric_sum(base, exponent) == sum(
            base**i for i in range(exponent)
        )

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            geometric_sum(2, -1)


class TestLeafInterval:
    def test_width_and_contains(self):
        node = LeafInterval(4, 8)
        assert node.width == 4
        assert 4 in node and 7 in node
        assert 8 not in node and 3 not in node

    def test_invalid_intervals(self):
        with pytest.raises(ValueError):
            LeafInterval(4, 4)
        with pytest.raises(ValueError):
            LeafInterval(-1, 3)

    def test_children_split(self):
        node = LeafInterval(0, 8)
        kids = node.children(2)
        assert kids == (LeafInterval(0, 4), LeafInterval(4, 8))

    def test_children_of_leaf_rejected(self):
        with pytest.raises(TreeShapeError):
            LeafInterval(3, 4).children(2)

    def test_children_indivisible_rejected(self):
        with pytest.raises(TreeShapeError):
            LeafInterval(0, 8).children(3)

    def test_overlaps(self):
        assert LeafInterval(0, 4).overlaps(LeafInterval(3, 5))
        assert not LeafInterval(0, 4).overlaps(LeafInterval(4, 8))


class TestBalancedTree:
    def test_of_constructor(self):
        tree = BalancedTree.of(m=4, leaves=64)
        assert tree.height == 3
        assert tree.leaves == 64
        assert tree.root == LeafInterval(0, 64)

    def test_node_count(self):
        assert BalancedTree.of(m=2, leaves=8).node_count == 15
        assert BalancedTree.of(m=4, leaves=64).node_count == 85

    def test_invalid_shapes(self):
        with pytest.raises(TreeShapeError):
            BalancedTree.of(m=4, leaves=48)
        with pytest.raises(TreeShapeError):
            BalancedTree(m=1, height=3)

    def test_depth_of(self):
        tree = BalancedTree.of(m=2, leaves=8)
        assert tree.depth_of(tree.root) == 0
        assert tree.depth_of(LeafInterval(4, 8)) == 1
        assert tree.depth_of(LeafInterval(5, 6)) == 3

    def test_depth_rejects_misaligned(self):
        tree = BalancedTree.of(m=2, leaves=8)
        with pytest.raises(TreeShapeError):
            tree.depth_of(LeafInterval(1, 3))

    def test_dfs_preorder_visits_every_node_once(self, small_shape):
        m, t = small_shape
        tree = BalancedTree.of(m=m, leaves=t)
        nodes = list(tree.dfs_preorder())
        assert len(nodes) == tree.node_count
        assert len(set((n.lo, n.hi) for n in nodes)) == len(nodes)
        assert nodes[0] == tree.root

    def test_dfs_preorder_left_to_right_leaves(self):
        tree = BalancedTree.of(m=2, leaves=8)
        leaves = [n.lo for n in tree.dfs_preorder() if n.is_leaf()]
        assert leaves == sorted(leaves)

    def test_leaf_interval(self):
        tree = BalancedTree.of(m=4, leaves=16)
        assert tree.leaf_interval(5) == LeafInterval(5, 6)
        with pytest.raises(ValueError):
            tree.leaf_interval(16)
