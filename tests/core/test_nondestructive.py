"""Tests for the non-destructive (XOR bus) search analysis."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.search_cost import (
    exact_cost_table,
    nondestructive_cost_table,
    simulate_search,
    worst_case_placement,
    xi_exact,
    xi_nondestructive,
)
from repro.core.trees import integer_log


class TestAnalysis:
    def test_dominated_by_destructive(self, small_shape):
        m, t = small_shape
        destructive = exact_cost_table(m, t)
        nondestructive = nondestructive_cost_table(m, t)
        for k in range(t + 1):
            assert nondestructive[k] <= destructive[k]

    def test_equal_at_full_occupancy(self, small_shape):
        # No empty subtree exists to skip when every leaf is active.
        m, t = small_shape
        assert xi_nondestructive(t, t, m) == xi_exact(t, t, m)

    def test_deep_pair_value(self, small_shape):
        # xi_nd(2) = log_m(t): the deepest common ancestor chain.
        m, t = small_shape
        if t >= m:
            assert xi_nondestructive(2, t, m) == integer_log(t, m)

    def test_matches_bruteforce_small(self):
        for m, t in [(2, 8), (3, 9), (4, 16)]:
            table = nondestructive_cost_table(m, t)
            for k in range(1, min(t, 5) + 1):
                best = max(
                    simulate_search(p, t, m, skip_empty=True).cost
                    for p in itertools.combinations(range(t), k)
                )
                assert best == table[k], (m, t, k)

    def test_base_values(self):
        table = nondestructive_cost_table(4, 64)
        assert table[0] == 0  # pruned subtrees cost nothing
        assert table[1] == 0

    def test_domain(self):
        with pytest.raises(ValueError):
            xi_nondestructive(65, 64, 4)


class TestWorstPlacement:
    @pytest.mark.parametrize("m,t", [(2, 16), (4, 16), (2, 32)])
    def test_attains_nd_bound(self, m, t):
        for k in range(2, min(t, 8) + 1):
            placement = worst_case_placement(k, t, m, skip_empty=True)
            observed = simulate_search(placement, t, m, skip_empty=True).cost
            assert observed == xi_nondestructive(k, t, m)

    @given(st.data())
    def test_random_placements_within_bound(self, data):
        m, t = data.draw(st.sampled_from([(2, 16), (4, 64)]))
        k = data.draw(st.integers(1, 8))
        placement = data.draw(
            st.lists(
                st.integers(0, t - 1), min_size=k, max_size=k, unique=True
            )
        )
        observed = simulate_search(placement, t, m, skip_empty=True).cost
        assert observed <= xi_nondestructive(len(placement), t, m)


class TestSkipEmptySemantics:
    def test_no_silence_slots_below_collisions(self):
        outcome = simulate_search([0, 15], 16, 2, skip_empty=True)
        assert outcome.empties == 0
        assert outcome.cost == outcome.collisions

    def test_empty_tree_still_probed_once(self):
        outcome = simulate_search([], 16, 2, skip_empty=True)
        assert outcome.slots == ("silence",)
        assert outcome.cost == 1

    def test_transmission_order_preserved(self):
        active = [3, 7, 12]
        destructive = simulate_search(active, 16, 2)
        nondestructive = simulate_search(active, 16, 2, skip_empty=True)
        assert (
            destructive.transmission_order
            == nondestructive.transmission_order
        )
