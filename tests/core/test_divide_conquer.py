"""Tests for the divide-and-conquer recursion and special values (Eq. 2-8)."""

from __future__ import annotations

import pytest

from repro.core.divide_conquer import (
    divide_conquer_table,
    xi_divide_conquer,
    xi_even_increment,
    xi_full,
    xi_knee,
    xi_two,
)
from repro.core.search_cost import exact_cost_table
from repro.core.trees import integer_log


class TestRecursionEquivalence:
    def test_matches_dp_everywhere(self, large_shape):
        m, t = large_shape
        dp = exact_cost_table(m, t)
        dc = divide_conquer_table(m, t)
        assert list(dc) == list(dp.costs)

    def test_base_case_single_level(self):
        # Eq. 4: t = m.
        for m in (2, 3, 4, 5, 8):
            dc = divide_conquer_table(m, m)
            assert dc[0] == 1
            for p in range(1, m // 2 + 1):
                assert dc[2 * p] == 1 + m - 2 * p
            for p in range((m + 1) // 2):
                assert dc[2 * p + 1] == dc[2 * p] - 1

    def test_trivial_tree(self):
        assert divide_conquer_table(2, 1) == (1, 0)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            xi_divide_conquer(17, 16, 2)


class TestOddEvenStructure:
    def test_eq3_odd_is_even_minus_one(self, small_shape):
        m, t = small_shape
        dc = divide_conquer_table(m, t)
        for p in range((t + 1) // 2):
            assert dc[2 * p + 1] == dc[2 * p] - 1


class TestSpecialValues:
    def test_eq5(self, small_shape):
        m, t = small_shape
        n = integer_log(t, m)
        assert xi_two(t, m) == m * n - 1
        assert xi_two(t, m) == exact_cost_table(m, t)[2]

    def test_eq6(self, small_shape):
        m, t = small_shape
        assert xi_knee(t, m) == exact_cost_table(m, t)[2 * t // m]

    def test_eq7(self, small_shape):
        m, t = small_shape
        assert xi_full(t, m) == exact_cost_table(m, t)[t]
        assert xi_full(t, m) == (t - 1) // (m - 1)

    def test_eq8_derivative(self):
        for m, t in [(2, 16), (2, 64), (3, 27), (4, 64)]:
            dp = exact_cost_table(m, t)
            for p in range(1, t // 2):
                assert (
                    dp[2 * p + 2] - dp[2 * p] == xi_even_increment(p, t, m)
                ), (m, t, p)

    def test_eq8_sign_change_locates_peak(self):
        # The increment is positive while climbing, negative past the knee.
        m, t = 4, 64
        increments = [xi_even_increment(p, t, m) for p in range(1, t // 2)]
        sign_flips = sum(
            1
            for a, b in zip(increments, increments[1:])
            if (a >= 0) != (b >= 0)
        )
        assert sign_flips == 1

    def test_eq8_domain_validation(self):
        with pytest.raises(ValueError):
            xi_even_increment(1, 4, 4)  # n = 1 excluded by Eq. 8
        with pytest.raises(ValueError):
            xi_even_increment(0, 64, 4)

    def test_xi_two_requires_multi_level(self):
        with pytest.raises(Exception):
            xi_two(1, 2)
