"""Vectorized feasibility: exact parity with the scalar oracle + grid API."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import feas_grid
from repro.core.feas_grid import (
    BatchEvaluator,
    _PythonFeasOps,
    check_feasibility_batch,
    default_backend,
    feasibility_grid,
    numpy_unavailable_reason,
)
from repro.core.feasibility import TreeParameters, check_feasibility
from repro.model.message import DensityBound, MessageClass
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec, allocate_static_indices
from repro.model.workloads import (
    trading_floor_problem,
    uniform_problem,
    videoconference_problem,
)
from repro.net.phy import CLASSIC_ETHERNET, GIGABIT_ETHERNET

_MS = 1_000_000


def _next_power(base: int, minimum: int) -> int:
    q = 1
    while q < minimum:
        q *= base
    return q


def _trees(problem, time_f=64, time_m=4) -> TreeParameters:
    return TreeParameters(
        time_f=time_f,
        time_m=time_m,
        static_q=problem.static_q,
        static_m=problem.static_m,
    )


@st.composite
def hrtdm_problems(draw) -> HRTDMProblem:
    """Randomized multi-class instances (the scalar path accepts them all)."""
    z = draw(st.integers(1, 5))
    nu = draw(st.integers(1, 3))
    static_m = draw(st.sampled_from([2, 3]))
    per_source = []
    for i in range(z):
        classes = []
        for c in range(draw(st.integers(1, 3))):
            classes.append(
                MessageClass(
                    name=f"s{i}c{c}",
                    length=draw(st.integers(100, 20_000)),
                    deadline=draw(st.integers(1, 40)) * _MS,
                    bound=DensityBound(
                        a=draw(st.integers(1, 4)),
                        w=draw(st.integers(50_000, 30 * _MS)),
                    ),
                )
            )
        per_source.append(classes)
    q = _next_power(static_m, max(z * nu, static_m))
    allocations = allocate_static_indices([nu] * z, q)
    sources = tuple(
        SourceSpec(
            source_id=i,
            message_classes=tuple(classes),
            static_indices=allocations[i],
        )
        for i, classes in enumerate(per_source)
    )
    return HRTDMProblem(sources=sources, static_q=q, static_m=static_m)


def _backends():
    backends = [("python", _PythonFeasOps())]
    if numpy_unavailable_reason() is None:
        backends.append(("numpy", feas_grid._NumpyFeasOps()))
    return backends


@pytest.fixture(params=_backends(), ids=lambda b: b[0])
def backend(request):
    return request.param[1]


class TestScalarParity:
    @given(hrtdm_problems())
    def test_batch_equals_scalar_on_random_instances(self, problem):
        trees = _trees(problem)
        expected = check_feasibility(problem, GIGABIT_ETHERNET, trees)
        for _, ops in _backends():
            (got,) = check_feasibility_batch(
                [problem], GIGABIT_ETHERNET, trees, backend=ops
            )
            assert got == expected

    @given(hrtdm_problems())
    def test_backends_agree_exactly(self, problem):
        trees = _trees(problem)
        reports = [
            check_feasibility_batch(
                [problem], GIGABIT_ETHERNET, trees, backend=ops
            )[0]
            for _, ops in _backends()
        ]
        assert all(report == reports[0] for report in reports)

    def test_uniform_family_across_scales(self, backend):
        for scale in (0.25, 0.5, 1.0, 2.0, 8.0, 32.0):
            problem = uniform_problem(z=8, scale=scale)
            trees = _trees(problem)
            (got,) = check_feasibility_batch(
                [problem], GIGABIT_ETHERNET, trees, backend=backend
            )
            assert got == check_feasibility(problem, GIGABIT_ETHERNET, trees)

    @pytest.mark.parametrize(
        "factory", [videoconference_problem, trading_floor_problem]
    )
    def test_heterogeneous_workloads(self, backend, factory):
        problem = factory()
        trees = _trees(problem)
        (got,) = check_feasibility_batch(
            [problem], GIGABIT_ETHERNET, trees, backend=backend
        )
        assert got == check_feasibility(problem, GIGABIT_ETHERNET, trees)

    def test_classic_ethernet_medium(self, backend):
        problem = uniform_problem(z=4, deadline=40 * _MS, w=20 * _MS)
        trees = _trees(problem)
        (got,) = check_feasibility_batch(
            [problem], CLASSIC_ETHERNET, trees, backend=backend
        )
        assert got == check_feasibility(problem, CLASSIC_ETHERNET, trees)

    def test_report_fields_are_python_ints(self, backend):
        problem = uniform_problem(z=4)
        trees = _trees(problem)
        evaluator = BatchEvaluator(GIGABIT_ETHERNET, trees, backend=backend)
        for row in evaluator(problem).classes:
            assert type(row.rank) is int
            assert type(row.interference) is int
            assert type(row.transmission_bits) is int
            assert type(row.static_trees) is int

    def test_shared_evaluator_is_stateless_across_instances(self, backend):
        # Memo state (encapsulation, S1) must not bleed between instances.
        problems = [uniform_problem(z=z, scale=s)
                    for z in (2, 4, 8) for s in (0.5, 4.0)]
        trees = _trees(problems[0])
        fresh = [
            check_feasibility_batch(
                [p], GIGABIT_ETHERNET, _trees(p), backend=backend
            )[0]
            for p in problems
        ]
        del trees
        evaluator = BatchEvaluator(
            GIGABIT_ETHERNET, _trees(problems[0]), backend=backend
        )
        shared = [evaluator(p) for p in problems if p.static_q ==
                  problems[0].static_q]
        fresh_same_q = [r for p, r in zip(problems, fresh)
                        if p.static_q == problems[0].static_q]
        assert shared == fresh_same_q


class TestPurePythonFallback:
    def test_forced_numpy_failure_selects_python_backend(self, monkeypatch):
        monkeypatch.setattr(
            feas_grid, "_NUMPY_STATE", (None, "numpy unavailable (forced)")
        )
        assert numpy_unavailable_reason() == "numpy unavailable (forced)"
        assert isinstance(default_backend(), _PythonFeasOps)

    def test_forced_fallback_matches_scalar(self, monkeypatch):
        problem = videoconference_problem(participants=4)
        trees = _trees(problem)
        expected = check_feasibility(problem, GIGABIT_ETHERNET, trees)
        monkeypatch.setattr(
            feas_grid, "_NUMPY_STATE", (None, "numpy unavailable (forced)")
        )
        (got,) = check_feasibility_batch([problem], GIGABIT_ETHERNET, trees)
        assert got == expected

    def test_numpy_available_reports_no_reason(self):
        if feas_grid._load_numpy()[0] is None:
            pytest.skip("numpy genuinely unavailable")
        assert numpy_unavailable_reason() is None
        assert default_backend().name == "numpy"


class TestGridApi:
    def _grid(self, **kwargs):
        problem = uniform_problem()
        trees = _trees(problem)
        axes = kwargs.pop(
            "axes", {"deadline": (2 * _MS, 8 * _MS), "scale": (0.5, 1.0, 2.0)}
        )
        return feasibility_grid(
            lambda deadline, scale: uniform_problem(
                z=8, deadline=deadline, scale=scale
            ),
            axes,
            GIGABIT_ETHERNET,
            trees,
            **kwargs,
        )

    def test_point_order_last_axis_fastest(self):
        grid = self._grid()
        assert grid.size == 6
        assert grid.axis_names == ("deadline", "scale")
        assert grid.points[:3] == (
            (2 * _MS, 0.5), (2 * _MS, 1.0), (2 * _MS, 2.0)
        )
        assert grid.points[3][0] == 8 * _MS

    def test_reports_match_scalar_at_every_point(self):
        grid = self._grid()
        problem = uniform_problem()
        trees = _trees(problem)
        for point, report in zip(grid.points, grid.reports):
            deadline, scale = point
            expected = check_feasibility(
                uniform_problem(z=8, deadline=deadline, scale=scale),
                GIGABIT_ETHERNET,
                trees,
            )
            assert report == expected

    def test_report_at_and_masks(self):
        grid = self._grid()
        report = grid.report_at(deadline=8 * _MS, scale=0.5)
        assert report is grid.reports[3]
        assert grid.feasible_mask() == tuple(
            r.feasible for r in grid.reports
        )
        dicts = grid.point_dicts()
        assert dicts[0] == {"deadline": 2 * _MS, "scale": 0.5}

    def test_report_at_rejects_wrong_axes(self):
        grid = self._grid()
        with pytest.raises(KeyError):
            grid.report_at(deadline=2 * _MS)  # missing axis
        with pytest.raises(KeyError):
            grid.report_at(deadline=2 * _MS, scale=0.5, z=8)  # extra axis
        with pytest.raises(KeyError):
            grid.report_at(deadline=3 * _MS, scale=0.5)  # off-grid point

    def test_rows_carry_verdict_and_binding_class(self):
        grid = self._grid()
        rows = grid.rows()
        assert len(rows) == grid.size
        for row, report in zip(rows, grid.reports):
            assert row[2] == ("yes" if report.feasible else "NO")
            assert row[3] == report.worst.class_name

    def test_empty_axes_rejected(self):
        problem = uniform_problem()
        trees = _trees(problem)
        with pytest.raises(ValueError):
            feasibility_grid(uniform_problem, {}, GIGABIT_ETHERNET, trees)
        with pytest.raises(ValueError):
            feasibility_grid(
                uniform_problem, {"scale": ()}, GIGABIT_ETHERNET, trees
            )

    def test_backend_recorded(self):
        grid = self._grid(backend=_PythonFeasOps())
        assert grid.backend == "python"
