"""Property-based tests on the xi function family (hypothesis).

These make the paper's implicit structural claims executable: growth in t,
the odd/even lattice, sub-additivity across sibling subtrees, agreement of
all four computation routes, and the placement/search Galois connection.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.asymptotic import xi_tilde_extended
from repro.core.closed_form import xi_closed_form
from repro.core.divide_conquer import xi_divide_conquer
from repro.core.search_cost import (
    exact_cost_table,
    simulate_search,
    worst_case_placement,
    xi_exact,
)

SHAPES = [(2, 8), (2, 16), (2, 32), (3, 9), (3, 27), (4, 16), (4, 64), (5, 25)]

shape_and_k = st.sampled_from(SHAPES).flatmap(
    lambda shape: st.tuples(
        st.just(shape[0]), st.just(shape[1]), st.integers(0, shape[1])
    )
)


@given(shape_and_k)
def test_all_routes_agree(mtk):
    m, t, k = mtk
    exact = xi_exact(k, t, m)
    assert xi_divide_conquer(k, t, m) == exact
    assert xi_closed_form(k, t, m) == exact


@given(shape_and_k)
def test_extended_tilde_dominates(mtk):
    m, t, k = mtk
    assert xi_tilde_extended(float(k), t, m) >= xi_exact(k, t, m) - 1e-9


@given(st.sampled_from(SHAPES), st.data())
def test_monotone_in_tree_size(shape, data):
    # Growing the tree (same m) cannot shrink the worst case: the smaller
    # tree embeds into the larger one as its leftmost subtree.
    m, t = shape
    k = data.draw(st.integers(2, t))
    assert xi_exact(k, t * m, m) >= xi_exact(k, t, m)


@given(st.sampled_from(SHAPES), st.data())
def test_odd_even_lattice(shape, data):
    # Eq. 3: xi(2p+1) = xi(2p) - 1, so consecutive values differ by +/-1
    # at odd steps and the whole curve is 1-Lipschitz downward at odd k.
    m, t = shape
    p = data.draw(st.integers(0, (t - 1) // 2))
    table = exact_cost_table(m, t)
    assert table[2 * p + 1] == table[2 * p] - 1


@given(st.sampled_from(SHAPES), st.data())
def test_split_subadditivity(shape, data):
    # Eq. 1 read as an inequality: any split of k across the m subtrees
    # costs at most xi(k, t) - 1 in the children.
    m, t = shape
    k = data.draw(st.integers(2, t))
    child_cap = t // m
    parts = []
    remaining = k
    for i in range(m):
        take = data.draw(
            st.integers(
                max(0, remaining - child_cap * (m - 1 - i)),
                min(child_cap, remaining),
            )
        )
        parts.append(take)
        remaining -= take
    if remaining != 0:
        return  # draw could not complete a valid split
    total = sum(xi_exact(p, child_cap, m) for p in parts)
    # Eq. 1 is a max over splits, so every concrete split is a lower bound.
    assert xi_exact(k, t, m) >= 1 + total


@given(st.sampled_from(SHAPES), st.data())
def test_worst_placement_galois(shape, data):
    # worst_case_placement is a argmax witness: simulating it reproduces
    # xi, and no random placement beats it.
    m, t = shape
    k = data.draw(st.integers(0, min(t, 8)))
    witness = worst_case_placement(k, t, m)
    best = xi_exact(k, t, m)
    assert simulate_search(witness, t, m).cost == best
    random_placement = data.draw(
        st.lists(st.integers(0, t - 1), min_size=k, max_size=k, unique=True)
    )
    assert simulate_search(random_placement, t, m).cost <= best


@given(st.sampled_from(SHAPES))
def test_total_slots_conservation(shape):
    # In any complete search, successes equal the number of active leaves
    # and every slot is silence, success, collision or handoff.
    m, t = shape
    active = list(range(0, t, 2))
    outcome = simulate_search(active, t, m)
    assert outcome.slots.count("success") == len(active)
    assert set(outcome.slots) <= {"silence", "success", "collision"}


@given(st.sampled_from(SHAPES), st.data())
def test_cost_bounded_by_node_count(shape, data):
    # No search can probe more than every node of the tree.
    m, t = shape
    k = data.draw(st.integers(0, t))
    node_count = (t * m - 1) // (m - 1)
    assert xi_exact(k, t, m) <= node_count
