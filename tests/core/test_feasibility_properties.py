"""Property-based tests on the feasibility conditions.

Monotonicity is what makes the FCs usable as a dimensioning tool (binary
search over load, admission control): denser arrivals, more sources,
longer messages, slower media can only increase B_DDCR; more static
indices (nu) can only decrease the static-tree count v(M).
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.feasibility import (
    TreeParameters,
    interference_bound,
    latency_bound,
    queue_rank_bound,
    static_tree_count,
)
from repro.model.workloads import uniform_problem
from repro.net.phy import GIGABIT_ETHERNET

_MS = 1_000_000


def _bound_for(z=4, length=8_000, deadline=10 * _MS, a=1, w=4 * _MS,
               scale=1.0, nu=1):
    problem = uniform_problem(
        z=z, length=length, deadline=deadline, a=a, w=w, scale=scale, nu=nu
    )
    trees = TreeParameters(
        time_f=64,
        time_m=4,
        static_q=problem.static_q,
        static_m=problem.static_m,
    )
    source = problem.sources[0]
    return latency_bound(
        source.message_classes[0], source, problem, GIGABIT_ETHERNET, trees
    )


@given(st.floats(0.25, 8.0), st.floats(1.05, 4.0))
def test_bound_monotone_in_density(scale, factor):
    lighter = _bound_for(scale=scale)
    heavier = _bound_for(scale=scale * factor)
    assert heavier.bound >= lighter.bound - 1e-9


@given(st.integers(2, 6), st.integers(1, 6))
def test_bound_monotone_in_sources(z, extra):
    small = _bound_for(z=z)
    large = _bound_for(z=z + extra)
    assert large.bound >= small.bound - 1e-9


@given(st.integers(1_000, 32_000), st.integers(1, 32_000))
def test_bound_monotone_in_length(length, extra):
    short = _bound_for(length=length)
    long = _bound_for(length=length + extra)
    assert long.bound >= short.bound - 1e-9


@given(st.integers(1, 4))
def test_more_indices_never_increase_static_trees(nu):
    fewer = _bound_for(a=4, nu=nu)
    more = _bound_for(a=4, nu=nu + 1)
    assert more.static_trees <= fewer.static_trees


@given(st.integers(0, 50), st.integers(1, 8))
def test_static_tree_count_monotone(rank, nu):
    assert static_tree_count(rank + 1, nu) >= static_tree_count(rank, nu)
    assert static_tree_count(rank, nu + 1) <= static_tree_count(rank, nu)


@given(st.floats(0.25, 4.0))
def test_interference_covers_rank(scale):
    # u(M) counts the whole network, r(M) only the local queue: for a
    # single-class-per-source instance u must dominate r.
    problem = uniform_problem(z=4, scale=scale)
    source = problem.sources[0]
    target = source.message_classes[0]
    u = interference_bound(target, problem, GIGABIT_ETHERNET)
    r = queue_rank_bound(target, source)
    assert u >= r


@given(st.integers(2, 40))
def test_bound_in_deadline_units_decreases_with_deadline(deadline_ms):
    # The absolute bound grows with the deadline (more interference fits)
    # but strictly slower, so slack improves: B(d)/d is non-increasing for
    # the uniform family.
    a = _bound_for(deadline=deadline_ms * _MS)
    b = _bound_for(deadline=2 * deadline_ms * _MS)
    assert b.bound / (2 * deadline_ms) <= a.bound / deadline_ms + 1e-9
