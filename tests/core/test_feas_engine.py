"""Incremental FeasibilityEngine: every delta path vs the scalar oracle."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.feas_engine import FeasibilityEngine
from repro.core.feasibility import (
    TreeParameters,
    check_feasibility,
    max_feasible_scale,
)
from repro.core.feas_grid import BatchEvaluator
from repro.model.message import DensityBound, MessageClass
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec
from repro.model.workloads import uniform_problem, videoconference_problem
from repro.net.phy import GIGABIT_ETHERNET

_MS = 1_000_000

_Q, _STATIC_M = 16, 2
_TREES = TreeParameters(time_f=64, time_m=4, static_q=_Q, static_m=_STATIC_M)


def _message_class(name, length=8_000, deadline=10 * _MS, a=1, w=4 * _MS):
    return MessageClass(
        name=name, length=length, deadline=deadline,
        bound=DensityBound(a=a, w=w),
    )


class _ReferenceModel:
    """Mirror of the engine's ordering contract, realized as HRTDMProblems.

    Sources keep first-seen order (an emptied source is dropped; re-adding
    its id appends it last), classes keep insertion order — exactly the
    engine's documented row order, so scalar reports on the materialized
    problem must equal the engine's incrementally-maintained ones.
    """

    def __init__(self):
        self.sources: dict[int, tuple[int, list[MessageClass]]] = {}

    def add(self, source_id, message_class, nu):
        if source_id not in self.sources:
            self.sources[source_id] = (nu, [])
        self.sources[source_id][1].append(message_class)

    def remove(self, source_id, name):
        nu, classes = self.sources[source_id]
        classes[:] = [c for c in classes if c.name != name]
        if not classes:
            del self.sources[source_id]

    def rescale(self, source_id, name, a=None, w=None):
        nu, classes = self.sources[source_id]
        for i, cls in enumerate(classes):
            if cls.name == name:
                bound = DensityBound(
                    a=cls.bound.a if a is None else a,
                    w=cls.bound.w if w is None else w,
                )
                classes[i] = MessageClass(
                    name=cls.name, length=cls.length,
                    deadline=cls.deadline, bound=bound,
                )

    def problem(self) -> HRTDMProblem:
        specs = []
        offset = 0
        for source_id, (nu, classes) in self.sources.items():
            specs.append(
                SourceSpec(
                    source_id=source_id,
                    message_classes=tuple(classes),
                    static_indices=tuple(range(offset, offset + nu)),
                )
            )
            offset += nu
        return HRTDMProblem(
            sources=tuple(specs), static_q=_Q, static_m=_STATIC_M
        )

    def expected_report(self):
        return check_feasibility(self.problem(), GIGABIT_ETHERNET, _TREES)


_CLASS_PARAMS = {
    "length": st.integers(100, 20_000),
    "deadline": st.integers(1, 40).map(lambda v: v * _MS),
    "a": st.integers(1, 4),
    "w": st.integers(50_000, 30 * _MS),
}


class TestMutationSequences:
    @given(st.data())
    def test_arbitrary_add_remove_rescale_matches_scalar(self, data):
        engine = FeasibilityEngine(GIGABIT_ETHERNET, _TREES)
        model = _ReferenceModel()
        names = iter(f"cls-{i}" for i in range(100))
        # Max 4 sources x nu <= 2 keeps total static leaves within _Q.
        for step in range(data.draw(st.integers(3, 10), label="steps")):
            existing = [
                (sid, cls.name)
                for sid, (_, classes) in model.sources.items()
                for cls in classes
            ]
            op = data.draw(
                st.sampled_from(
                    ["add", "remove", "rescale"] if existing else ["add"]
                ),
                label=f"op{step}",
            )
            if op == "add":
                source_id = data.draw(st.integers(0, 3), label="sid")
                params = {
                    key: data.draw(strat, label=key)
                    for key, strat in _CLASS_PARAMS.items()
                }
                cls = _message_class(next(names), **params)
                if source_id in model.sources:
                    engine.add_class(source_id, cls)
                    model.add(source_id, cls, None)
                else:
                    nu = data.draw(st.integers(1, 2), label="nu")
                    engine.add_class(source_id, cls, nu=nu)
                    model.add(source_id, cls, nu)
            elif op == "remove":
                source_id, name = data.draw(
                    st.sampled_from(existing), label="victim"
                )
                engine.remove_class(source_id, name)
                model.remove(source_id, name)
            else:
                source_id, name = data.draw(
                    st.sampled_from(existing), label="target"
                )
                a = data.draw(_CLASS_PARAMS["a"], label="new-a")
                w = data.draw(_CLASS_PARAMS["w"], label="new-w")
                engine.rescale_class(source_id, name, a=a, w=w)
                model.rescale(source_id, name, a=a, w=w)
            if model.sources:
                assert engine.report() == model.expected_report()
                assert engine.class_count == sum(
                    len(c) for _, c in model.sources.values()
                )

    def test_add_then_remove_restores_the_report(self):
        problem = uniform_problem(z=4)
        trees = TreeParameters(
            time_f=64, time_m=4,
            static_q=problem.static_q, static_m=problem.static_m,
        )
        engine = FeasibilityEngine.from_problem(
            problem, GIGABIT_ETHERNET, trees
        )
        before = engine.report()
        engine.add_class(99, _message_class("guest", a=3, w=1 * _MS), nu=1)
        assert engine.report() != before
        returned = engine.remove_class(99, "guest")
        assert engine.report() == before
        assert returned == _message_class("guest", a=3, w=1 * _MS)

    def test_emptied_source_readds_as_last(self):
        engine = FeasibilityEngine(GIGABIT_ETHERNET, _TREES)
        engine.add_class(0, _message_class("a"), nu=1)
        engine.add_class(1, _message_class("b"), nu=1)
        engine.remove_class(0, "a")
        engine.add_class(0, _message_class("a2"), nu=2)
        rows = engine.report().classes
        assert [(r.source_id, r.class_name) for r in rows] == [
            (1, "b"), (0, "a2")
        ]
        # The re-added source carries the new nu.
        assert rows[1].static_trees == 1 + rows[1].rank // 2


class TestRescaleDensity:
    @pytest.mark.parametrize("scale", [0.25, 0.5, 1.0, 2.0, 8.0, 37.5])
    def test_matches_the_workload_factory(self, scale):
        base = uniform_problem(z=8, scale=1.0)
        trees = TreeParameters(
            time_f=64, time_m=4,
            static_q=base.static_q, static_m=base.static_m,
        )
        engine = FeasibilityEngine.from_problem(base, GIGABIT_ETHERNET, trees)
        engine.rescale_density(scale)
        assert engine.scale == scale
        assert engine.report() == check_feasibility(
            uniform_problem(z=8, scale=scale), GIGABIT_ETHERNET, trees
        )

    def test_rescales_compose_from_the_base_windows(self):
        base = videoconference_problem(participants=4)
        trees = TreeParameters(
            time_f=64, time_m=4,
            static_q=base.static_q, static_m=base.static_m,
        )
        engine = FeasibilityEngine.from_problem(base, GIGABIT_ETHERNET, trees)
        engine.rescale_density(8.0)
        engine.rescale_density(0.5)  # from w0, not from the 8.0 windows
        assert engine.report() == check_feasibility(
            videoconference_problem(participants=4, scale=0.5),
            GIGABIT_ETHERNET,
            trees,
        )


class TestMaxFeasibleDensity:
    def _engine_and_factory(self, z=8, deadline=10 * _MS):
        def factory(scale):
            return uniform_problem(z=z, deadline=deadline, scale=scale)

        base = factory(1.0)
        trees = TreeParameters(
            time_f=64, time_m=4,
            static_q=base.static_q, static_m=base.static_m,
        )
        engine = FeasibilityEngine.from_problem(base, GIGABIT_ETHERNET, trees)
        return engine, factory, trees

    @pytest.mark.parametrize("hi", [1.0, 64.0])
    def test_equals_the_factory_bisection(self, hi):
        engine, factory, trees = self._engine_and_factory()
        expected = max_feasible_scale(
            factory, GIGABIT_ETHERNET, trees, lo=0.01, hi=hi
        )
        assert engine.max_feasible_density(lo=0.01, hi=hi) == expected
        # The engine is left at the returned operating point.
        assert engine.scale == max(expected, 0.01)

    def test_everywhere_feasible_returns_hi(self):
        engine, factory, trees = self._engine_and_factory(
            z=2, deadline=40 * _MS
        )
        assert check_feasibility(
            factory(1.0), GIGABIT_ETHERNET, trees
        ).feasible
        assert engine.max_feasible_density(hi=1.0) == 1.0
        assert engine.scale == 1.0

    def test_nowhere_feasible_returns_zero(self):
        # 64 sources' irreducible transmission (~531k bits) alone exceeds
        # this deadline, so no density scale can make the set feasible.
        engine, factory, trees = self._engine_and_factory(
            z=64, deadline=_MS // 2
        )
        assert not check_feasibility(
            factory(0.01), GIGABIT_ETHERNET, trees
        ).feasible
        assert engine.max_feasible_density(lo=0.01, hi=1.0) == 0.0
        assert engine.scale == 0.01

    def test_max_feasible_scale_short_circuits_on_feasible_hi(self):
        calls = []

        def factory(scale):
            calls.append(scale)
            return uniform_problem(z=2, deadline=40 * _MS, scale=scale)

        base = factory(1.0)
        calls.clear()
        trees = TreeParameters(
            time_f=64, time_m=4,
            static_q=base.static_q, static_m=base.static_m,
        )
        assert max_feasible_scale(
            factory, GIGABIT_ETHERNET, trees, hi=1.0
        ) == 1.0
        assert calls == [1.0]  # hi probed first; nothing else evaluated

    def test_max_feasible_scale_accepts_a_shared_evaluator(self):
        engine, factory, trees = self._engine_and_factory()
        evaluator = BatchEvaluator(GIGABIT_ETHERNET, trees)
        assert max_feasible_scale(
            factory, GIGABIT_ETHERNET, trees, evaluator=evaluator
        ) == max_feasible_scale(factory, GIGABIT_ETHERNET, trees)
        assert evaluator._s1  # the shared memo actually absorbed work


class TestSharedEvaluator:
    def test_engines_share_memos_through_one_evaluator(self):
        evaluator = BatchEvaluator(GIGABIT_ETHERNET, _TREES)
        first = FeasibilityEngine(GIGABIT_ETHERNET, _TREES, evaluator=evaluator)
        second = FeasibilityEngine(
            GIGABIT_ETHERNET, _TREES, evaluator=evaluator
        )
        first.add_class(0, _message_class("x"), nu=1)
        second.add_class(0, _message_class("x"), nu=1)
        assert first.report() == second.report()
        assert first.evaluator is second.evaluator


class TestErrors:
    def _engine(self):
        engine = FeasibilityEngine(GIGABIT_ETHERNET, _TREES)
        engine.add_class(0, _message_class("seed"), nu=1)
        return engine

    def test_new_source_requires_nu(self):
        engine = self._engine()
        with pytest.raises(ValueError, match="nu"):
            engine.add_class(7, _message_class("x"))

    def test_nu_mismatch_rejected(self):
        engine = self._engine()
        with pytest.raises(ValueError, match="nu=1"):
            engine.add_class(0, _message_class("x"), nu=2)

    def test_duplicate_class_name_rejected(self):
        engine = self._engine()
        with pytest.raises(ValueError, match="seed"):
            engine.add_class(0, _message_class("seed"))

    def test_unknown_source_and_class(self):
        engine = self._engine()
        with pytest.raises(KeyError):
            engine.remove_class(9, "seed")
        with pytest.raises(KeyError):
            engine.remove_class(0, "ghost")
        with pytest.raises(KeyError):
            engine.rescale_class(0, "ghost", a=2)

    def test_rescale_class_validates_bounds(self):
        engine = self._engine()
        with pytest.raises(ValueError):
            engine.rescale_class(0, "seed", a=0)
        with pytest.raises(ValueError):
            engine.rescale_class(0, "seed", w=0)

    def test_rescale_density_validates_scale(self):
        engine = self._engine()
        with pytest.raises(ValueError):
            engine.rescale_density(0.0)
        with pytest.raises(ValueError):
            engine.rescale_density(-1.0)
