"""Tests for the ground-truth search-cost analysis (Eq. 1)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.search_cost import (
    enumerate_worst_placements,
    exact_cost_table,
    heavy_search_bound,
    simulate_search,
    worst_case_placement,
    xi_bruteforce,
    xi_exact,
)


class TestExactTable:
    def test_base_values(self, small_shape):
        m, t = small_shape
        table = exact_cost_table(m, t)
        assert table[0] == 1, "probing an empty tree costs one slot"
        assert table[1] == 0, "a lone source transmits at the root probe"

    def test_eq5_eq7_endpoints(self, small_shape):
        m, t = small_shape
        table = exact_cost_table(m, t)
        n = 0
        power = 1
        while power < t:
            power *= m
            n += 1
        assert table[2] == m * n - 1
        assert table[t] == (t - 1) // (m - 1)

    def test_table_length_and_types(self):
        table = exact_cost_table(4, 64)
        assert len(table) == 65
        assert all(isinstance(c, int) for c in table.costs)

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            xi_exact(65, 64, 4)
        with pytest.raises(ValueError):
            xi_exact(-1, 64, 4)

    def test_as_series(self):
        series = exact_cost_table(2, 4).as_series()
        assert series[0] == (0, 1)
        assert series[1] == (1, 0)

    def test_matches_bruteforce(self):
        for m, t in [(2, 8), (2, 16), (3, 9), (4, 16)]:
            table = exact_cost_table(m, t)
            for k in range(t + 1):
                assert xi_bruteforce(k, t, m) == table[k], (m, t, k)

    def test_bruteforce_guard(self):
        with pytest.raises(ValueError):
            xi_bruteforce(2, 64, 2)


class TestSimulateSearch:
    def test_empty_tree_one_slot(self):
        outcome = simulate_search([], 8, 2)
        assert outcome.cost == 1
        assert outcome.slots == ("silence",)

    def test_single_source_transmits_at_root(self):
        outcome = simulate_search([5], 8, 2)
        assert outcome.cost == 0
        assert outcome.slots == ("success",)
        assert outcome.transmission_order == (5,)

    def test_two_adjacent_leaves_binary(self):
        # Root collision, [0,4) collision, [0,2) collision, two successes,
        # then silences for [2,4) and [4,8).
        outcome = simulate_search([0, 1], 8, 2)
        assert outcome.cost == 5
        assert outcome.slots == (
            "collision",
            "collision",
            "collision",
            "success",
            "success",
            "silence",
            "silence",
        )

    def test_transmission_order_is_leaf_order(self, small_shape):
        m, t = small_shape
        active = list(range(0, t, max(1, t // 4)))
        outcome = simulate_search(active, t, m)
        assert list(outcome.transmission_order) == sorted(active)

    def test_slot_accounting(self):
        outcome = simulate_search([0, 3], 4, 2)
        assert outcome.collisions + outcome.empties == outcome.cost
        assert outcome.total_slots == len(outcome.slots)

    def test_out_of_range_leaf_rejected(self):
        with pytest.raises(ValueError):
            simulate_search([8], 8, 2)

    @given(st.data())
    def test_never_exceeds_xi(self, data):
        m, t = data.draw(
            st.sampled_from([(2, 8), (2, 16), (3, 9), (4, 16), (4, 64)])
        )
        k = data.draw(st.integers(0, min(t, 10)))
        active = data.draw(
            st.lists(
                st.integers(0, t - 1), min_size=k, max_size=k, unique=True
            )
        )
        assert simulate_search(active, t, m).cost <= xi_exact(
            len(active), t, m
        )

    def test_every_active_leaf_transmits_exactly_once(self):
        active = [1, 4, 9, 15]
        outcome = simulate_search(active, 16, 2)
        assert sorted(outcome.transmission_order) == active


class TestHeavyLeaves:
    def test_heavy_leaf_handoff(self):
        outcome = simulate_search([], 4, 2, heavy=[0])
        # Root collision, [0,2) collision, handoff at leaf 0, silences.
        assert "handoff" in outcome.slots
        assert outcome.cost == 2 + 2  # 2 collisions + leaf-1 and [2,4) silences

    def test_heavy_and_single_disjoint(self):
        with pytest.raises(ValueError):
            simulate_search([3], 8, 2, heavy=[3])

    def test_heavy_alone_costs_m_times_depth(self):
        # One heavy leaf in a 64-leaf quaternary tree: 3 levels * 4 = 12.
        outcome = simulate_search([], 64, 4, heavy=[17])
        assert outcome.cost == 12

    def test_bound_holds_exhaustively_small(self):
        m, t = 2, 8
        for total in range(1, 5):
            for leaves in itertools.combinations(range(t), total):
                for b in range(total + 1):
                    for heavy in itertools.combinations(leaves, b):
                        active = [x for x in leaves if x not in heavy]
                        cost = simulate_search(active, t, m, heavy=heavy).cost
                        assert cost <= heavy_search_bound(
                            len(active), b, t, m
                        ), (active, heavy)

    def test_bound_validations(self):
        with pytest.raises(ValueError):
            heavy_search_bound(-1, 0, 8, 2)
        assert heavy_search_bound(0, 0, 8, 2) == 1


class TestWorstPlacement:
    def test_achieves_xi(self, small_shape):
        m, t = small_shape
        for k in range(0, min(t, 8) + 1):
            placement = worst_case_placement(k, t, m)
            assert len(placement) == k
            assert simulate_search(placement, t, m).cost == xi_exact(k, t, m)

    def test_achieves_xi_large(self):
        for k in (2, 7, 19, 32, 64):
            placement = worst_case_placement(k, 64, 4)
            assert simulate_search(placement, 64, 4).cost == xi_exact(
                k, 64, 4
            )

    def test_sorted_and_unique(self):
        placement = worst_case_placement(6, 64, 2)
        assert list(placement) == sorted(set(placement))

    def test_bad_k(self):
        with pytest.raises(ValueError):
            worst_case_placement(65, 64, 4)

    def test_enumerate_contains_reconstruction(self):
        k, t, m = 3, 8, 2
        all_worst = enumerate_worst_placements(k, t, m)
        assert worst_case_placement(k, t, m) in all_worst
        best = xi_exact(k, t, m)
        for placement in all_worst:
            assert simulate_search(placement, t, m).cost == best

    def test_enumerate_guard(self):
        with pytest.raises(ValueError):
            enumerate_worst_placements(2, 128, 2)
