"""Persistent xi-table store: roundtrips, corruption recovery, layering,
and multi-process contention over one shared shard tree."""

from __future__ import annotations

import multiprocessing
import os
import pickle

import pytest

from repro.core import divide_conquer, search_cost, xi_store
from repro.core.xi_store import XiTableStore, use_xi_store


@pytest.fixture()
def store(tmp_path) -> XiTableStore:
    return XiTableStore(tmp_path / "xi")


SAMPLE = tuple(range(2**4 + 1))  # shape (2, 4): t = 16, len = 17


class TestRoundtrip:
    def test_store_then_load(self, store):
        store.store("cost", 2, 4, 1, SAMPLE)
        assert store.load("cost", 2, 4, 1) == SAMPLE
        assert store.stats.hits == 1
        assert store.stats.writes == 1

    def test_missing_entry_is_a_miss(self, store):
        assert store.load("cost", 2, 4, 1) is None
        assert store.stats.misses == 1

    def test_kinds_and_parameters_do_not_collide(self, store):
        store.store("cost", 2, 4, 1, SAMPLE)
        assert store.load("dc", 2, 4, 1) is None
        assert store.load("cost", 2, 4, 2) is None
        assert store.load("cost", 4, 2, 1) is None

    def test_entries_are_sharded_by_digest(self, store):
        path = store.store("cost", 2, 4, 1, SAMPLE)
        assert path.parent.parent == store.directory
        assert path.parent.name == path.name[:2]

    def test_clear_removes_everything(self, store):
        store.store("cost", 2, 4, 1, SAMPLE)
        store.store("dc", 2, 4, 1, SAMPLE)
        assert store.clear() == 2
        assert store.load("cost", 2, 4, 1) is None


class TestCorruptionRecovery:
    def test_truncated_pickle_is_evicted(self, store):
        path = store.store("cost", 2, 4, 1, SAMPLE)
        path.write_bytes(path.read_bytes()[:10])
        assert store.load("cost", 2, 4, 1) is None
        assert store.stats.evictions == 1
        assert not path.exists()

    def test_garbage_bytes_are_evicted(self, store):
        path = store.store("cost", 2, 4, 1, SAMPLE)
        path.write_bytes(b"not a pickle at all")
        assert store.load("cost", 2, 4, 1) is None
        assert not path.exists()

    def test_wrong_payload_shape_is_evicted(self, store):
        path = store.store("cost", 2, 4, 1, SAMPLE)
        path.write_bytes(pickle.dumps(["not", "a", "dict"]))
        assert store.load("cost", 2, 4, 1) is None
        assert not path.exists()

    def test_wrong_table_length_is_evicted(self, store):
        path = store.store("cost", 2, 4, 1, SAMPLE)
        payload = pickle.loads(path.read_bytes())
        payload["costs"] = payload["costs"][:-1]
        path.write_bytes(pickle.dumps(payload))
        assert store.load("cost", 2, 4, 1) is None

    def test_non_integer_costs_are_evicted(self, store):
        path = store.store("cost", 2, 4, 1, SAMPLE)
        payload = pickle.loads(path.read_bytes())
        payload["costs"] = tuple(float(c) for c in payload["costs"])
        path.write_bytes(pickle.dumps(payload))
        assert store.load("cost", 2, 4, 1) is None

    def test_stale_code_salt_is_evicted(self, store):
        path = store.store("cost", 2, 4, 1, SAMPLE)
        payload = pickle.loads(path.read_bytes())
        kind, m, n, empty_cost, _salt = payload["key"]
        payload["key"] = (kind, m, n, empty_cost, "0" * 16)
        path.write_bytes(pickle.dumps(payload))
        assert store.load("cost", 2, 4, 1) is None
        assert not path.exists()

    def test_recovery_recomputes_and_rewrites(self, store):
        path = store.store("cost", 2, 4, 1, SAMPLE)
        path.write_bytes(b"junk")
        assert store.load("cost", 2, 4, 1) is None
        store.store("cost", 2, 4, 1, SAMPLE)
        assert store.load("cost", 2, 4, 1) == SAMPLE


class TestConcurrentWrites:
    def test_last_writer_wins_and_entry_stays_readable(self, store):
        store.store("cost", 2, 4, 1, SAMPLE)
        store.store("cost", 2, 4, 1, SAMPLE)
        assert store.load("cost", 2, 4, 1) == SAMPLE
        assert store.stats.writes == 2

    def test_stray_tmp_files_do_not_confuse_loads(self, store):
        path = store.store("cost", 2, 4, 1, SAMPLE)
        # A crashed writer's leftover: same directory, tmp suffix.
        (path.parent / f"{path.name}deadbeef.tmp").write_bytes(b"partial")
        assert store.load("cost", 2, 4, 1) == SAMPLE
        assert store.clear() == 1  # only the real .pkl entry is counted


class TestAmbientStore:
    def test_use_xi_store_scopes_a_directory(self, tmp_path):
        with use_xi_store(tmp_path / "scoped"):
            active = xi_store.active_store()
            assert isinstance(active, XiTableStore)
            xi_store.store("cost", 2, 4, 1, SAMPLE)
            assert xi_store.load("cost", 2, 4, 1) == SAMPLE

    def test_use_xi_store_none_disables_persistence(self):
        with use_xi_store(None):
            assert xi_store.active_store() is None
            xi_store.store("cost", 2, 4, 1, SAMPLE)  # must be a no-op
            assert xi_store.load("cost", 2, 4, 1) is None

    @pytest.mark.parametrize("value", ["", "0", "off", "none", " OFF "])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv(xi_store.ENV_VAR, value)
        assert xi_store._store_from_env() is None

    def test_env_selects_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv(xi_store.ENV_VAR, str(tmp_path / "from-env"))
        resolved = xi_store._store_from_env()
        assert isinstance(resolved, XiTableStore)
        assert resolved.directory == tmp_path / "from-env"

    def test_env_unset_uses_default_directory(self, monkeypatch):
        monkeypatch.delenv(xi_store.ENV_VAR, raising=False)
        resolved = xi_store._store_from_env()
        assert str(resolved.directory) == xi_store.DEFAULT_DIRECTORY

    def test_code_salt_is_stable_and_short(self):
        assert xi_store.core_code_salt() == xi_store.core_code_salt()
        assert len(xi_store.core_code_salt()) == 16

    def test_stats_summary_mentions_counts(self, store):
        store.store("cost", 2, 4, 1, SAMPLE)
        store.load("cost", 2, 4, 1)
        assert "1 hits" in store.stats.summary()
        assert "1 writes" in store.stats.summary()


class TestCacheTierLayering:
    """The DP/dc lru_caches sit above the store; big shapes persist."""

    def test_cost_table_persists_and_reloads(self, tmp_path):
        store = XiTableStore(tmp_path / "tier")
        with use_xi_store(store):
            search_cost._cost_tuple.cache_clear()
            expected = search_cost._cost_tuple(2, 8)  # 256 leaves: persisted
            assert store.stats.writes == 1
            # A "new process": in-memory cache gone, disk warm.
            search_cost._cost_tuple.cache_clear()
            assert search_cost._cost_tuple(2, 8) == expected
            assert store.stats.hits == 1
        search_cost._cost_tuple.cache_clear()

    def test_small_cost_tables_are_not_persisted(self, tmp_path):
        store = XiTableStore(tmp_path / "tier")
        with use_xi_store(store):
            search_cost._cost_tuple.cache_clear()
            search_cost._cost_tuple(2, 4)  # 16 leaves: below the threshold
            assert store.stats.writes == 0
            assert store.stats.misses == 0  # not even probed
        search_cost._cost_tuple.cache_clear()

    def test_dc_table_persists_and_reloads(self, tmp_path):
        store = XiTableStore(tmp_path / "tier")
        with use_xi_store(store):
            divide_conquer._dc_tuple.cache_clear()
            expected = divide_conquer._dc_tuple(2, 12)  # 4096 leaves
            writes = store.stats.writes
            assert writes >= 1
            divide_conquer._dc_tuple.cache_clear()
            assert divide_conquer._dc_tuple(2, 12) == expected
            assert store.stats.hits >= 1
        divide_conquer._dc_tuple.cache_clear()

    def test_corrupt_entry_recomputes_correct_table(self, tmp_path):
        store = XiTableStore(tmp_path / "tier")
        with use_xi_store(store):
            search_cost._cost_tuple.cache_clear()
            expected = search_cost._cost_tuple(2, 8)
            path = store.path_for("cost", 2, 8, 1)
            path.write_bytes(b"corrupted")
            search_cost._cost_tuple.cache_clear()
            assert search_cost._cost_tuple(2, 8) == expected
            assert store.stats.evictions == 1
        search_cost._cost_tuple.cache_clear()

    def test_lru_is_bounded(self):
        assert search_cost._cost_tuple.cache_info().maxsize is not None
        assert divide_conquer._dc_tuple.cache_info().maxsize is not None

    def test_disabled_store_still_computes(self):
        with use_xi_store(None):
            search_cost._cost_tuple.cache_clear()
            table = search_cost._cost_tuple(4, 5)
            assert table[2] == 19
        search_cost._cost_tuple.cache_clear()


def test_default_directory_is_under_repro_cache():
    assert xi_store.DEFAULT_DIRECTORY == os.path.join(".repro-cache", "xi")


# -- multi-process contention ------------------------------------------------
#
# Worker functions live at module level so they pickle across the
# process boundary.  The fork start method keeps the workers cheap and is
# always available on the platforms CI runs on (linux).

def _hammer_writer(directory: str, rounds: int, table: tuple) -> None:
    store = XiTableStore(directory)
    for _ in range(rounds):
        store.store("cost", 2, 8, 1, table)


def _hammer_reader(directory: str, rounds: int, expected: tuple,
                   queue) -> None:
    store = XiTableStore(directory)
    seen = corrupt = 0
    for _ in range(rounds):
        value = store.load("cost", 2, 8, 1)
        if value is not None:
            seen += 1
            if value != expected:
                corrupt += 1
    queue.put((seen, corrupt, store.stats.evictions))


def _compute_through_store(directory: str, queue) -> None:
    search_cost._cost_tuple.cache_clear()
    with use_xi_store(XiTableStore(directory)):
        table = search_cost._cost_tuple(2, 9)
    queue.put(table)


class TestMultiProcessContention:
    """Writers and readers race over one shard tree; the atomic
    mkstemp+rename write protocol must never let a reader observe a
    corrupt or partial table."""

    def test_concurrent_writers_and_readers_never_see_corruption(
        self, tmp_path
    ):
        directory = str(tmp_path / "shared-xi")
        with use_xi_store(None):
            search_cost._cost_tuple.cache_clear()
            table = search_cost._cost_tuple(2, 8)
        search_cost._cost_tuple.cache_clear()
        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        rounds = 200
        writers = [
            context.Process(
                target=_hammer_writer, args=(directory, rounds, table)
            )
            for _ in range(2)
        ]
        readers = [
            context.Process(
                target=_hammer_reader,
                args=(directory, rounds, table, queue),
            )
            for _ in range(2)
        ]
        for process in writers + readers:
            process.start()
        for process in writers + readers:
            process.join(timeout=60)
            assert process.exitcode == 0
        total_seen = 0
        for _ in readers:
            seen, corrupt, evictions = queue.get(timeout=10)
            total_seen += seen
            assert corrupt == 0, "a reader served a wrong table"
            assert evictions == 0, "a reader evicted a mid-write entry"
        # The writers started immediately, so readers overlapped live
        # writes; at least some loads must have hit.
        assert total_seen > 0
        # The surviving entry is intact.
        assert XiTableStore(directory).load("cost", 2, 8, 1) == table

    def test_two_processes_compute_the_same_table_through_one_store(
        self, tmp_path
    ):
        """Both processes race the (2, 9) DP through the same empty
        store: whoever wins the write, both must return the true table
        and the store must end with a loadable, correct entry."""
        directory = str(tmp_path / "shared-xi")
        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        processes = [
            context.Process(
                target=_compute_through_store, args=(directory, queue)
            )
            for _ in range(2)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0
        first = queue.get(timeout=10)
        second = queue.get(timeout=10)
        assert first == second
        assert XiTableStore(directory).load("cost", 2, 9, 1) == first
