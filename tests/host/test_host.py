"""Tests for the host-side task/scheduler/bounds substrate."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.host import (
    TaskSpec,
    analytic_bound,
    bounds_from_schedule,
    empirical_bound,
    simulate_host,
)
from repro.model.message import DensityBound, MessageClass


def _cls(name: str) -> MessageClass:
    return MessageClass(
        name=name,
        length=1_000,
        deadline=500_000,
        bound=DensityBound(a=1, w=100_000),
    )


def _task(name="t", period=100_000, offset=0, bcet=5_000, wcet=5_000,
          priority=0):
    return TaskSpec(
        name=name, period=period, offset=offset, bcet=bcet, wcet=wcet,
        priority=priority, message_class=_cls(name),
    )


class TestTaskSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            _task(period=0)
        with pytest.raises(ValueError):
            _task(bcet=0)
        with pytest.raises(ValueError):
            _task(bcet=10, wcet=5)
        with pytest.raises(ValueError):
            _task(wcet=200_000)
        with pytest.raises(ValueError):
            TaskSpec(
                name="t", period=10, offset=-1, bcet=1, wcet=1, priority=0,
                message_class=_cls("t"),
            )


class TestScheduler:
    def test_single_task_emits_periodically_when_constant(self):
        task = _task(bcet=5_000, wcet=5_000)
        schedule = simulate_host([task], horizon=1_000_000)
        trace = schedule.emission_trace("t")
        assert trace == [5_000 + 100_000 * i for i in range(10)]
        assert schedule.jitter("t") == 0

    def test_preemption_orders_by_priority(self):
        # High-priority task released mid low-priority job: the low job's
        # completion is pushed out by exactly the preemption.
        low = _task("low", period=1_000_000, offset=0, bcet=50_000,
                    wcet=50_000, priority=5)
        high = _task("high", period=1_000_000, offset=10_000, bcet=20_000,
                     wcet=20_000, priority=1)
        schedule = simulate_host([low, high], horizon=1_000_000)
        assert schedule.emission_trace("high") == [30_000]
        assert schedule.emission_trace("low") == [70_000]

    def test_contention_creates_jitter(self):
        # A variable high-priority task makes a constant low-priority
        # task's emissions jittery — section 2.2's argument.
        high = _task("high", period=50_000, offset=0, bcet=1_000,
                     wcet=20_000, priority=0)
        low = _task("low", period=100_000, offset=0, bcet=10_000,
                    wcet=10_000, priority=1)
        schedule = simulate_host([high, low], horizon=4_000_000, seed=11)
        assert schedule.jitter("low") > 0

    def test_deterministic_per_seed(self):
        tasks = [
            _task("a", period=70_000, bcet=1_000, wcet=30_000, priority=0),
            _task("b", period=110_000, bcet=5_000, wcet=40_000, priority=1),
        ]
        one = simulate_host(tasks, horizon=2_000_000, seed=9).emissions
        two = simulate_host(tasks, horizon=2_000_000, seed=9).emissions
        assert one == two

    def test_distinct_priorities_required(self):
        with pytest.raises(ValueError):
            simulate_host(
                [_task("a", priority=1), _task("b", priority=1)],
                horizon=100_000,
            )

    def test_every_released_job_emits_under_light_load(self):
        task = _task(period=100_000, bcet=1_000, wcet=2_000)
        schedule = simulate_host([task], horizon=1_000_000, seed=2)
        assert len(schedule.emission_trace("t")) == 10
        assert all(job.emitted for job in schedule.jobs)


class TestBounds:
    def test_empirical_bound_is_tight(self):
        trace = [0, 10, 20, 1_000, 2_000]
        bound = empirical_bound(trace, window=100)
        assert bound.a == 3
        assert bound.admits(trace)
        tighter = DensityBound(a=2, w=100)
        assert not tighter.admits(trace)

    def test_empirical_bound_empty_trace(self):
        assert empirical_bound([], window=100).a == 1

    def test_analytic_covers_empirical(self):
        high = _task("high", period=40_000, bcet=1_000, wcet=15_000,
                     priority=0)
        low = _task("low", period=90_000, bcet=8_000, wcet=12_000,
                    priority=1)
        schedule = simulate_host([high, low], horizon=4_000_000, seed=5)
        for name, (empirical, analytic) in bounds_from_schedule(
            schedule, [high, low], window=90_000
        ).items():
            trace = schedule.emission_trace(name)
            assert empirical.admits(trace), name
            assert analytic.admits(trace), name
            assert empirical.a <= analytic.a, name

    def test_analytic_bound_formula(self):
        task = _task(period=100, bcet=10, wcet=10)
        assert analytic_bound(task, jitter=0, window=100).a == 2
        assert analytic_bound(task, jitter=50, window=100).a == 2
        assert analytic_bound(task, jitter=150, window=100).a == 3

    def test_analytic_bound_validation(self):
        with pytest.raises(ValueError):
            analytic_bound(_task(), jitter=-1, window=100)

    @given(st.lists(st.integers(0, 100_000), min_size=1, max_size=50),
           st.integers(10, 10_000))
    def test_empirical_always_admits_its_trace(self, trace, window):
        assert empirical_bound(trace, window).admits(trace)
