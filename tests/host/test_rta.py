"""Tests for the fixed-priority response-time analysis."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.host.rta import analyze, certified_bound, response_time
from repro.host.scheduler import simulate_host
from repro.host.tasks import TaskSpec
from repro.model.message import DensityBound, MessageClass


def _cls(name: str) -> MessageClass:
    return MessageClass(
        name=name, length=1_000, deadline=10**6,
        bound=DensityBound(a=1, w=10**5),
    )


def _task(name, period, wcet, priority, bcet=None, offset=0):
    return TaskSpec(
        name=name, period=period, offset=offset,
        bcet=wcet if bcet is None else bcet, wcet=wcet,
        priority=priority, message_class=_cls(name),
    )


class TestResponseTime:
    def test_textbook_example(self):
        # Classic: C=(1, 2, 3), T=(4, 8, 16), priorities by rate.
        t1 = _task("t1", 40_000, 10_000, priority=0)
        t2 = _task("t2", 80_000, 20_000, priority=1)
        t3 = _task("t3", 160_000, 30_000, priority=2)
        taskset = [t1, t2, t3]
        assert response_time(t1, taskset) == 10_000
        assert response_time(t2, taskset) == 30_000
        # R3 = 30 + ceil(R/40)*10 + ceil(R/80)*20: 30 -> 60 -> 70 -> 70.
        assert response_time(t3, taskset) == 70_000

    def test_unschedulable_returns_none(self):
        t1 = _task("t1", 10_000, 6_000, priority=0)
        t2 = _task("t2", 10_000, 6_000, priority=1)
        assert response_time(t2, [t1, t2]) is None

    def test_unknown_task_rejected(self):
        t1 = _task("t1", 10_000, 1_000, priority=0)
        stranger = _task("t2", 10_000, 1_000, priority=1)
        with pytest.raises(ValueError):
            response_time(stranger, [t1])

    def test_highest_priority_is_its_own_wcet(self):
        t1 = _task("t1", 50_000, 7_000, priority=0)
        t2 = _task("t2", 90_000, 10_000, priority=1)
        assert response_time(t1, [t1, t2]) == 7_000


class TestAnalyze:
    def test_schedulable_set(self):
        taskset = [
            _task("a", 40_000, 10_000, priority=0),
            _task("b", 80_000, 20_000, priority=1),
        ]
        results = analyze(taskset)
        assert results.schedulable
        assert results.per_task["a"] == 10_000

    def test_jitter_bound(self):
        a = _task("a", 40_000, 10_000, priority=0, bcet=2_000)
        b = _task("b", 80_000, 20_000, priority=1, bcet=5_000)
        results = analyze([a, b])
        assert results.jitter_bound(a) == 10_000 - 2_000
        assert results.jitter_bound(b) == 30_000 - 5_000

    def test_jitter_of_unschedulable_rejected(self):
        a = _task("a", 10_000, 6_000, priority=0)
        b = _task("b", 10_000, 6_000, priority=1)
        results = analyze([a, b])
        with pytest.raises(ValueError):
            results.jitter_bound(b)

    def test_duplicate_priorities_rejected(self):
        with pytest.raises(ValueError):
            analyze(
                [_task("a", 10_000, 100, 0), _task("b", 10_000, 100, 0)]
            )


class TestAgainstSimulation:
    @given(st.data())
    def test_rta_dominates_simulated_response(self, data):
        # RTA is a sound upper bound: no simulated job may respond later.
        periods = data.draw(
            st.lists(
                st.sampled_from([40_000, 60_000, 100_000, 150_000]),
                min_size=2,
                max_size=4,
                unique=True,
            )
        )
        taskset = []
        for priority, period in enumerate(sorted(periods)):
            wcet = data.draw(st.integers(1_000, period // 4))
            bcet = data.draw(st.integers(500, wcet))
            offset = data.draw(st.integers(0, period // 2))
            taskset.append(
                _task(
                    f"t{priority}", period, wcet,
                    priority=priority, bcet=bcet, offset=offset,
                )
            )
        results = analyze(taskset)
        if not results.schedulable:
            return
        schedule = simulate_host(taskset, horizon=2_000_000, seed=17)
        for task in taskset:
            if schedule.emission_trace(task.name):
                assert (
                    schedule.worst_response(task.name)
                    <= results.per_task[task.name]
                ), task.name

    def test_certified_bound_admits_simulated_trace(self):
        a = _task("a", 40_000, 10_000, priority=0, bcet=1_000)
        b = _task("b", 90_000, 20_000, priority=1, bcet=4_000)
        taskset = [a, b]
        schedule = simulate_host(taskset, horizon=4_000_000, seed=23)
        for task in taskset:
            bound = certified_bound(task, taskset, window=90_000)
            assert bound.admits(schedule.emission_trace(task.name)), task.name
