"""RunSpec canonicalisation and content hashing."""

from __future__ import annotations

import pickle

import pytest

from repro.runtime.spec import RunSpec, code_version, freeze_params


class TestFreezeParams:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x"):
            assert freeze_params(value) == value

    def test_sequences_become_tuples(self):
        assert freeze_params([1, [2, 3]]) == (1, (2, 3))
        assert freeze_params(((1, 2), (3,))) == ((1, 2), (3,))

    def test_dicts_become_sorted_pairs(self):
        assert freeze_params({"b": 1, "a": 2}) == (("a", 2), ("b", 1))

    def test_sets_are_sorted(self):
        assert freeze_params({3, 1, 2}) == (1, 2, 3)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="unsupported spec parameter"):
            freeze_params(object())


class TestRunSpec:
    def test_make_sorts_params(self):
        spec = RunSpec.make("FIG1", t=16, m=2)
        assert spec.params == (("m", 2), ("t", 16))
        assert spec.kwargs() == {"m": 2, "t": 16}

    def test_hash_is_stable_and_param_order_free(self):
        a = RunSpec.make("FIG1", m=2, t=16)
        b = RunSpec.make("FIG1", t=16, m=2)
        assert a == b
        assert a.spec_hash() == b.spec_hash()

    def test_hash_changes_with_experiment_params_and_seed(self):
        base = RunSpec.make("SIM-XI", root_seed=1)
        assert base.spec_hash() != RunSpec.make("SIM-XI", root_seed=2).spec_hash()
        assert base.spec_hash() != RunSpec.make("PROTO", root_seed=1).spec_hash()
        assert (
            base.spec_hash()
            != RunSpec.make("SIM-XI", root_seed=1, random_trials=1).spec_hash()
        )

    def test_hash_changes_with_salt(self):
        a = RunSpec.make("FIG1", salt="v1")
        b = RunSpec.make("FIG1", salt="v2")
        assert a.spec_hash() != b.spec_hash()

    def test_default_salt_is_code_version(self):
        spec = RunSpec.make("FIG1")
        assert code_version() in spec.canonical_key()

    def test_spec_is_picklable_and_hashable(self):
        spec = RunSpec.make("FIG1", shapes=((2, 8), (3, 9)))
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, RunSpec.make("FIG1", shapes=((2, 8), (3, 9)))}) == 1

    def test_describe_mentions_id_params_seed(self):
        text = RunSpec.make("SIM-XI", root_seed=7, random_trials=1).describe()
        assert "SIM-XI" in text
        assert "random_trials=1" in text
        assert "seed=7" in text


class TestCodeVersion:
    def test_deterministic_within_process(self):
        assert code_version() == code_version()

    def test_short_hex(self):
        assert len(code_version()) == 16
        int(code_version(), 16)
