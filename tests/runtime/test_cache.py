"""Content-addressed result cache: hits, misses, corruption recovery."""

from __future__ import annotations

import pickle

from repro.experiments.base import ExperimentResult
from repro.runtime.cache import ResultCache
from repro.runtime.spec import RunSpec


def make_result(experiment_id: str = "X", ok: bool = True) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=experiment_id,
        title="stub",
        headers=["a", "b"],
        rows=[[1, 2], [3, 4]],
        checks={"shape": ok},
        notes=["stub result"],
    )


class TestCacheRoundTrip:
    def test_identical_spec_hits_with_byte_identical_result(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec.make("X", salt="s", m=2)
        stored = make_result()
        cache.put(spec, stored)
        loaded = ResultCache(tmp_path).get(RunSpec.make("X", salt="s", m=2))
        assert loaded == stored
        assert pickle.dumps(loaded) == pickle.dumps(stored)

    def test_miss_before_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(RunSpec.make("X", salt="s")) is None
        assert cache.stats.misses == 1

    def test_changed_seed_or_parameter_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(RunSpec.make("X", salt="s", root_seed=1, m=2), make_result())
        assert cache.get(RunSpec.make("X", salt="s", root_seed=2, m=2)) is None
        assert cache.get(RunSpec.make("X", salt="s", root_seed=1, m=3)) is None
        assert cache.get(RunSpec.make("X", salt="s2", root_seed=1, m=2)) is None
        assert (
            cache.get(RunSpec.make("X", salt="s", root_seed=1, m=2)) is not None
        )

    def test_entries_sharded_by_hash_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec.make("X", salt="s")
        path = cache.put(spec, make_result())
        assert path.parent.name == spec.spec_hash()[:2]
        assert path.name == f"{spec.spec_hash()}.pkl"


class TestCacheCorruption:
    def test_truncated_entry_is_a_miss_and_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec.make("X", salt="s")
        path = cache.put(spec, make_result())
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get(spec) is None
        assert not path.exists()
        assert cache.stats.evictions == 1

    def test_garbage_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec.make("X", salt="s")
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle at all")
        assert cache.get(spec) is None

    def test_wrong_payload_shape_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec.make("X", salt="s")
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps(["unexpected", "payload"]))
        assert cache.get(spec) is None

    def test_stale_key_is_a_miss(self, tmp_path):
        # Simulates a hash collision / format drift: stored key mismatch.
        cache = ResultCache(tmp_path)
        spec = RunSpec.make("X", salt="s")
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_bytes(
            pickle.dumps({"key": "something-else", "result": make_result()})
        )
        assert cache.get(spec) is None

    def test_recompute_overwrites_corrupted_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec.make("X", salt="s")
        path = cache.put(spec, make_result())
        path.write_bytes(b"garbage")
        assert cache.get(spec) is None
        cache.put(spec, make_result())
        assert cache.get(spec) == make_result()


class TestCacheMaintenance:
    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(RunSpec.make("X", salt="s"), make_result())
        cache.put(RunSpec.make("Y", salt="s"), make_result("Y"))
        assert cache.clear() == 2
        assert cache.get(RunSpec.make("X", salt="s")) is None

    def test_clear_on_missing_directory(self, tmp_path):
        assert ResultCache(tmp_path / "never-created").clear() == 0
