"""Executor semantics: ordering, caching, parallel/serial equivalence."""

from __future__ import annotations

import pickle

import pytest

from repro.runtime import ParallelExecutor, ResultCache, RunSpec

#: Small-parameter specs that run in well under a second each.
FAST_SPECS = [
    RunSpec.make("FIG1", m=2, t=8),
    RunSpec.make("FIG2", t=16),
    RunSpec.make("EQ2-8", shapes=((2, 8),)),
    RunSpec.make("EQ11-14", shapes=((2, 16),)),
]


class TestSerialExecution:
    def test_results_in_input_order(self):
        executor = ParallelExecutor(jobs=1)
        records = executor.run(FAST_SPECS)
        assert [r.spec.experiment_id for r in records] == [
            s.experiment_id for s in FAST_SPECS
        ]
        assert all(r.result.all_checks_pass for r in records)
        assert all(r.source == "serial" for r in records)
        assert executor.submissions == len(FAST_SPECS)

    def test_timing_recorded(self):
        records = ParallelExecutor(jobs=1).run([FAST_SPECS[0]])
        assert records[0].duration > 0.0
        assert not records[0].cached
        assert "FIG1" in records[0].describe()

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            ParallelExecutor(jobs=0)


class TestParallelExecution:
    def test_parallel_matches_serial_byte_for_byte(self):
        serial = ParallelExecutor(jobs=1).run(FAST_SPECS)
        parallel = ParallelExecutor(jobs=4).run(FAST_SPECS)
        assert [r.spec for r in parallel] == [r.spec for r in serial]
        for fast, slow in zip(parallel, serial):
            assert pickle.dumps(fast.result) == pickle.dumps(slow.result)

    def test_single_pending_spec_stays_serial(self):
        records = ParallelExecutor(jobs=4).run([FAST_SPECS[0]])
        assert records[0].source == "serial"


class TestCachedExecution:
    def test_warm_cache_needs_zero_submissions(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = ParallelExecutor(jobs=1, cache=cache)
        cold_records = cold.run(FAST_SPECS)
        assert cold.submissions == len(FAST_SPECS)

        warm = ParallelExecutor(jobs=2, cache=ResultCache(tmp_path))
        warm_records = warm.run(FAST_SPECS)
        assert warm.submissions == 0
        assert all(r.cached for r in warm_records)
        for cold_r, warm_r in zip(cold_records, warm_records):
            assert pickle.dumps(cold_r.result) == pickle.dumps(warm_r.result)

    def test_force_bypasses_cache_but_rewrites_it(self, tmp_path):
        cache = ResultCache(tmp_path)
        ParallelExecutor(jobs=1, cache=cache).run([FAST_SPECS[0]])
        forced = ParallelExecutor(jobs=1, cache=cache, force=True)
        records = forced.run([FAST_SPECS[0]])
        assert forced.submissions == 1
        assert not records[0].cached

    def test_changed_spec_misses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        ParallelExecutor(jobs=1, cache=cache).run([RunSpec.make("FIG2", t=16)])
        executor = ParallelExecutor(jobs=1, cache=cache)
        executor.run([RunSpec.make("FIG2", t=64)])
        assert executor.submissions == 1

    def test_corrupted_entry_recomputed_not_crashed(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = FAST_SPECS[0]
        ParallelExecutor(jobs=1, cache=cache).run([spec])
        cache.path_for(spec).write_bytes(b"corrupted beyond repair")
        executor = ParallelExecutor(jobs=1, cache=ResultCache(tmp_path))
        records = executor.run([spec])
        assert executor.submissions == 1
        assert records[0].result.all_checks_pass
        # and the recomputed result healed the cache
        healed = ParallelExecutor(jobs=1, cache=ResultCache(tmp_path))
        assert healed.run([spec])[0].cached

    def test_progress_callback_sees_every_record(self, tmp_path):
        seen: list[tuple[str, int, int]] = []
        executor = ParallelExecutor(
            jobs=1,
            cache=ResultCache(tmp_path),
            progress=lambda record, index, total: seen.append(
                (record.spec.experiment_id, index, total)
            ),
        )
        executor.run(FAST_SPECS[:2])
        assert sorted(seen) == [("FIG1", 0, 2), ("FIG2", 1, 2)]


class TestTelemetryCollection:
    def test_default_collects_nothing(self):
        records = ParallelExecutor(jobs=1).run([FAST_SPECS[0]])
        assert records[0].telemetry is None

    def test_executed_spec_carries_a_manifest(self):
        executor = ParallelExecutor(jobs=1, collect_telemetry=True)
        (record,) = executor.run([FAST_SPECS[0]])
        doc = record.telemetry
        assert doc is not None
        assert doc.run_id == "FIG1"
        assert doc.source == "serial"
        assert doc.wall_seconds > 0.0
        # the registry pipeline spans are present and nested under "run"
        (run_span,) = doc.spans
        assert run_span["name"] == "run"
        child_names = [c["name"] for c in run_span["children"]]
        assert child_names == ["spec/resolve", "spec/execute"]

    def test_cache_hit_carries_minimal_manifest(self, tmp_path):
        cache = ResultCache(tmp_path)
        ParallelExecutor(jobs=1, cache=cache).run([FAST_SPECS[0]])
        warm = ParallelExecutor(
            jobs=1, cache=ResultCache(tmp_path), collect_telemetry=True
        )
        (record,) = warm.run([FAST_SPECS[0]])
        doc = record.telemetry
        assert doc is not None
        assert doc.source == "cache"
        assert doc.counters == {}
        assert [s["name"] for s in doc.spans] == ["cache/lookup"]

    def test_pool_manifests_travel_back_by_pickle(self):
        executor = ParallelExecutor(jobs=2, collect_telemetry=True)
        records = executor.run(FAST_SPECS[:2])
        for record in records:
            assert record.telemetry is not None
            assert record.telemetry.run_id == record.spec.experiment_id
            assert record.telemetry.source in ("pool", "serial")

    def test_simulation_experiment_records_instruments(self):
        spec = RunSpec.make(
            "SIM-XI",
            root_seed=11,
            static_cases=((2, 8, 2),),
            time_cases=((2, 16, 2),),
            random_trials=1,
        )
        executor = ParallelExecutor(jobs=1, collect_telemetry=True)
        (record,) = executor.run([spec])
        doc = record.telemetry
        assert doc is not None
        assert doc.seed == 11
        assert doc.counters["slots/success"] > 0
        assert any(name.startswith("latency/") for name in doc.histograms)


class TestSpecResolution:
    def test_seed_injection_through_seed_param(self):
        from repro.experiments.registry import run_spec

        result = run_spec(
            RunSpec.make(
                "SIM-XI",
                root_seed=11,
                static_cases=((2, 8, 2),),
                time_cases=((2, 16, 2),),
                random_trials=1,
            )
        )
        assert result.all_checks_pass

    def test_seed_on_seedless_experiment_rejected(self):
        from repro.experiments.registry import run_spec

        with pytest.raises(ValueError, match="takes no seed"):
            run_spec(RunSpec.make("FIG1", root_seed=3))

    def test_unknown_experiment_rejected(self):
        from repro.experiments.registry import run_spec

        with pytest.raises(KeyError, match="unknown experiment"):
            run_spec(RunSpec.make("NOPE"))
