"""Engine choice is execution strategy, not result identity.

The engines are proven result-equivalent (tests/net/test_engine_differential),
so a RunSpec's ``engine`` must not enter its content hash: a result cached
under one engine satisfies the same spec under any other, and ``--engine``
can never silently invalidate a warm cache.
"""

from __future__ import annotations

import pickle

import pytest

from repro.runtime import ParallelExecutor, ResultCache, RunSpec


def test_engine_excluded_from_spec_identity():
    des = RunSpec.make("FIG2", t=16, engine="des")
    fast = RunSpec.make("FIG2", t=16, engine="fastloop")
    default = RunSpec.make("FIG2", t=16)
    assert des.canonical_key() == fast.canonical_key() == default.canonical_key()
    assert des.spec_hash() == fast.spec_hash() == default.spec_hash()
    assert des == fast == default
    assert des.engine == "des" and fast.engine == "fastloop"


def test_engine_validated_eagerly():
    with pytest.raises(ValueError, match="unknown engine"):
        RunSpec.make("FIG2", t=16, engine="warp")


def test_warm_cache_hits_regardless_of_engine(tmp_path):
    """Cold run on one engine; the other engine replays from cache."""
    cold = ParallelExecutor(jobs=1, cache=ResultCache(tmp_path))
    cold_records = cold.run([RunSpec.make("FIG2", t=16, engine="des")])
    assert cold.submissions == 1

    warm = ParallelExecutor(jobs=1, cache=ResultCache(tmp_path))
    warm_records = warm.run([RunSpec.make("FIG2", t=16, engine="fastloop")])
    assert warm.submissions == 0
    assert warm_records[0].cached
    assert pickle.dumps(warm_records[0].result) == pickle.dumps(
        cold_records[0].result
    )


def test_run_spec_results_identical_across_engines():
    """Executing the same spec under each engine yields equal results."""
    from repro.experiments.registry import run_spec

    des = run_spec(RunSpec.make("FIG2", t=16, engine="des"))
    fast = run_spec(RunSpec.make("FIG2", t=16, engine="fastloop"))
    assert pickle.dumps(des) == pickle.dumps(fast)
