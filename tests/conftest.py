"""Shared test configuration.

Registers a CI-friendly hypothesis profile (deterministic, bounded) and a
couple of grid fixtures used across the suite.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")

#: (m, t) shapes small enough for any exact computation in a test.
SMALL_SHAPES = [(2, 4), (2, 8), (2, 16), (3, 9), (3, 27), (4, 16), (4, 64), (5, 25)]

#: Larger shapes for closed-form-vs-DP grids.
LARGE_SHAPES = SMALL_SHAPES + [(2, 256), (3, 243), (4, 256), (6, 36), (8, 64)]


@pytest.fixture(params=SMALL_SHAPES, ids=lambda s: f"m{s[0]}t{s[1]}")
def small_shape(request) -> tuple[int, int]:
    return request.param


@pytest.fixture(params=LARGE_SHAPES, ids=lambda s: f"m{s[0]}t{s[1]}")
def large_shape(request) -> tuple[int, int]:
    return request.param
