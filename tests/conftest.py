"""Shared test configuration.

Registers a CI-friendly hypothesis profile (deterministic, bounded), a
couple of grid fixtures used across the suite, and routes the persistent
xi-table store into a per-session temporary directory so tests never read
or write the working tree's ``.repro-cache``.
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")

def pytest_collection_modifyitems(config, items):
    """Keep ``slow``-marked tests out of the tier-1 fast path.

    An explicit ``-m`` expression (e.g. ``pytest -m slow``) opts back in.
    """
    if config.getoption("-m"):
        return
    skip = pytest.mark.skip(reason="slow: run with `pytest -m slow`")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)


#: (m, t) shapes small enough for any exact computation in a test.
SMALL_SHAPES = [(2, 4), (2, 8), (2, 16), (3, 9), (3, 27), (4, 16), (4, 64), (5, 25)]

#: Larger shapes for closed-form-vs-DP grids.
LARGE_SHAPES = SMALL_SHAPES + [(2, 256), (3, 243), (4, 256), (6, 36), (8, 64)]


@pytest.fixture(params=SMALL_SHAPES, ids=lambda s: f"m{s[0]}t{s[1]}")
def small_shape(request) -> tuple[int, int]:
    return request.param


@pytest.fixture(params=LARGE_SHAPES, ids=lambda s: f"m{s[0]}t{s[1]}")
def large_shape(request) -> tuple[int, int]:
    return request.param


@pytest.fixture(scope="session", autouse=True)
def _isolated_xi_store():
    """Point the xi-table store at a session temp dir (env + default)."""
    from repro.core import xi_store

    with tempfile.TemporaryDirectory(prefix="repro-test-xi-") as tmp:
        previous_env = os.environ.get(xi_store.ENV_VAR)
        os.environ[xi_store.ENV_VAR] = tmp
        previous_store = xi_store.set_default_store(tmp)
        try:
            yield
        finally:
            xi_store.set_default_store(previous_store)
            if previous_env is None:
                os.environ.pop(xi_store.ENV_VAR, None)
            else:
                os.environ[xi_store.ENV_VAR] = previous_env
