"""Tests for the channel timeline renderer."""

from __future__ import annotations

from repro.analysis.report import render_timeline
from repro.model.workloads import uniform_problem
from repro.net.network import NetworkSimulation
from repro.net.phy import ideal_medium
from repro.protocols.ddcr import DDCRConfig, DDCRProtocol
from repro.sim.trace import TraceLog


class TestRenderTimeline:
    def test_synthetic_trace(self):
        trace = TraceLog()
        trace.emit(0, "slot", state="success", duration=64, source=0, msg="a")
        trace.emit(64, "slot", state="collision", duration=64, source=None, msg=None)
        trace.emit(128, "slot", state="silence", duration=64, source=None, msg=None)
        trace.emit(192, "slot", state="corrupted", duration=64, source=None, msg=None)
        trace.emit(256, "slot", state="success", duration=64, source=11, msg="b")
        text = render_timeline(trace)
        strip = text.splitlines()[1]
        assert strip == "0X.!b"  # station 11 -> 'b' in base-36

    def test_empty(self):
        assert render_timeline(TraceLog()) == "(empty timeline)"

    def test_start_offset(self):
        trace = TraceLog()
        trace.emit(0, "slot", state="silence", duration=64, source=None, msg=None)
        trace.emit(64, "slot", state="collision", duration=64, source=None, msg=None)
        text = render_timeline(trace, start=32)
        assert text.splitlines()[1] == "X"

    def test_wraps_at_width(self):
        trace = TraceLog()
        for i in range(10):
            trace.emit(i, "slot", state="silence", duration=1, source=None, msg=None)
        text = render_timeline(trace, width=4)
        lines = text.splitlines()[1:]
        assert lines == ["....", "....", ".."]

    def test_real_simulation_trace(self):
        problem = uniform_problem(
            z=2, length=1_000, deadline=400_000, a=1, w=200_000
        )
        config = DDCRConfig(
            time_f=16,
            time_m=2,
            class_width=32_768,
            static_q=problem.static_q,
            static_m=problem.static_m,
        )
        simulation = NetworkSimulation(
            problem,
            ideal_medium(slot_time=64),
            protocol_factory=lambda s: DDCRProtocol(config),
            trace=True,
        )
        result = simulation.run(400_000)
        text = render_timeline(result.trace)
        assert "X" in text  # the entry collision
        assert "0" in text and "1" in text  # both stations transmitted
