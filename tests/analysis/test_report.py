"""Tests for the text reporting helpers."""

from __future__ import annotations

from repro.analysis.report import ascii_plot, format_series, format_table, to_csv


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["k", "xi"], [[2, 11], [40, 5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].strip().startswith("k")
        assert "| 11" in lines[2]

    def test_title(self):
        table = format_table(["a"], [[1]], title="Title")
        assert table.startswith("Title\n")

    def test_floats_formatted(self):
        table = format_table(["x"], [[3.14159]])
        assert "3.142" in table


class TestCSV:
    def test_round_trip_shape(self):
        csv = to_csv(["a", "b"], [[1, 2], [3, 4]])
        lines = csv.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"
        assert len(lines) == 3


class TestSeries:
    def test_format_series(self):
        text = format_series("xi", [1, 2], [10, 20])
        assert text.startswith("xi:")
        assert "(1, 10)" in text


class TestAsciiPlot:
    def test_plots_all_series(self):
        plot = ascii_plot(
            {
                "a": ([0, 1, 2], [0, 1, 2]),
                "b": ([0, 1, 2], [2, 1, 0]),
            },
            width=20,
            height=5,
        )
        assert "a" in plot and "b" in plot
        assert "*" in plot and "o" in plot

    def test_empty(self):
        assert ascii_plot({}) == "(empty plot)"

    def test_constant_series(self):
        plot = ascii_plot({"flat": ([0, 1], [5, 5])}, width=10, height=3)
        assert "*" in plot
