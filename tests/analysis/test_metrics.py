"""Tests for run metrics and inversion counting."""

from __future__ import annotations

from repro.analysis.metrics import count_inversions, summarize
from repro.model.message import DensityBound, MessageClass, MessageInstance
from repro.net.channel import ChannelStats
from repro.net.network import RunResult
from repro.net.station import CompletionRecord, Station
from repro.protocols.csma_cd import CSMACDProtocol
from repro.sim.trace import TraceLog


def _cls(name="c", deadline=1000):
    return MessageClass(
        name=name, length=100, deadline=deadline,
        bound=DensityBound(a=1, w=1000),
    )


def _result(records_by_station, backlog_by_station=None, horizon=10_000):
    stations = []
    backlog_by_station = backlog_by_station or {}
    for sid, records in records_by_station.items():
        station = Station(sid, CSMACDProtocol())
        station.completions.extend(records)
        for message in backlog_by_station.get(sid, []):
            station.queue.push(message)
        stations.append(station)
    return RunResult(
        horizon=horizon,
        stations=stations,
        stats=ChannelStats(payload_bits=100),
        trace=TraceLog(enabled=False),
    )


def _record(cls, arrival, completion, started=None, dropped=False):
    message = MessageInstance.arrive(cls, arrival, 0)
    return CompletionRecord(
        message=message,
        completion=completion,
        started=completion - 10 if started is None else started,
        dropped=dropped,
    )


class TestSummarize:
    def test_on_time_and_late(self):
        cls = _cls(deadline=100)
        result = _result(
            {0: [_record(cls, 0, 50), _record(cls, 0, 150)]}
        )
        metrics = summarize(result)
        assert metrics.delivered == 2
        assert metrics.on_time == 1
        assert metrics.late == 1
        assert metrics.misses == 1
        assert not metrics.meets_hrtdm

    def test_drops_are_misses(self):
        cls = _cls()
        result = _result({0: [_record(cls, 0, 500, dropped=True)]})
        metrics = summarize(result)
        assert metrics.dropped == 1
        assert metrics.misses == 1

    def test_backlog_split_by_due_date(self):
        cls = _cls(deadline=100)
        past_due = MessageInstance.arrive(cls, 0, 0)      # DM = 100 < horizon
        not_due = MessageInstance.arrive(cls, 9_950, 0)   # DM > horizon
        result = _result({0: []}, {0: [past_due, not_due]})
        metrics = summarize(result)
        assert metrics.backlog_missed == 1
        assert metrics.backlog_pending == 1
        assert metrics.misses == 1

    def test_per_class_breakdown(self):
        a, b = _cls("a", deadline=100), _cls("b", deadline=100)
        result = _result(
            {0: [_record(a, 0, 50)], 1: [_record(b, 0, 150)]}
        )
        metrics = summarize(result)
        assert metrics.per_class["a"].on_time == 1
        assert metrics.per_class["b"].late == 1
        assert metrics.per_class["b"].miss_ratio == 1.0

    def test_latency_stats(self):
        cls = _cls(deadline=10_000)
        result = _result(
            {0: [_record(cls, 0, 100), _record(cls, 0, 300)]}
        )
        metrics = summarize(result)
        assert metrics.max_latency == 300
        assert metrics.per_class["c"].latency.mean == 200

    def test_empty_run(self):
        metrics = summarize(_result({0: []}))
        assert metrics.delivered == 0
        assert metrics.miss_ratio == 0.0
        assert metrics.meets_hrtdm


class TestInversions:
    def test_clean_edf_order_no_inversions(self):
        cls = _cls(deadline=100)
        result = _result(
            {
                0: [
                    _record(cls, 0, 50, started=40),
                    _record(cls, 30, 90, started=80),
                ]
            }
        )
        assert count_inversions(result) == 0

    def test_detects_overtake(self):
        urgent = _cls("urgent", deadline=50)
        lax = _cls("lax", deadline=10_000)
        # The lax message transmits first although the urgent one had
        # already arrived before the lax transmission started.
        records = {
            0: [_record(lax, 0, 120, started=100)],
            1: [_record(urgent, 10, 200, started=180)],
        }
        assert count_inversions(_result(records)) == 1

    def test_non_preemption_not_charged(self):
        urgent = _cls("urgent", deadline=50)
        lax = _cls("lax", deadline=10_000)
        # Urgent arrives while lax already holds the wire: unavoidable.
        records = {
            0: [_record(lax, 0, 120, started=100)],
            1: [_record(urgent, 110, 200, started=180)],
        }
        assert count_inversions(_result(records)) == 0

    def test_each_message_counted_once(self):
        urgent_a = _cls("ua", deadline=40)
        urgent_b = _cls("ub", deadline=50)
        lax = _cls("lax", deadline=10_000)
        records = {
            0: [_record(lax, 0, 120, started=100)],
            1: [
                _record(urgent_a, 0, 300, started=280),
                _record(urgent_b, 0, 400, started=380),
            ],
        }
        # The lax transmission overtook two urgent messages: one inversion.
        assert count_inversions(_result(records)) == 1
