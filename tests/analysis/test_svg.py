"""Tests for the SVG chart writer."""

from __future__ import annotations

import xml.dom.minidom

import pytest

from repro.analysis.svg import Series, line_chart
from repro.experiments import fig1, fig2


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series(name="x", xs=[1, 2], ys=[1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Series(name="x", xs=[], ys=[])


class TestLineChart:
    def _chart(self, **kwargs):
        return line_chart(
            [
                Series(name="a", xs=[0, 1, 2], ys=[0, 5, 3]),
                Series(name="b", xs=[0, 1, 2], ys=[1, 1, 4], staircase=True),
            ],
            title="T & T",
            x_label="x",
            y_label="y",
            **kwargs,
        )

    def test_valid_xml(self):
        doc = xml.dom.minidom.parseString(self._chart())
        assert doc.documentElement.tagName == "svg"

    def test_one_polyline_per_series(self):
        doc = xml.dom.minidom.parseString(self._chart())
        assert len(doc.getElementsByTagName("polyline")) == 2

    def test_title_escaped(self):
        assert "T &amp; T" in self._chart()

    def test_legend_names_present(self):
        chart = self._chart()
        assert ">a<" in chart and ">b<" in chart

    def test_staircase_doubles_points(self):
        doc = xml.dom.minidom.parseString(self._chart())
        lines = doc.getElementsByTagName("polyline")
        plain = lines[0].getAttribute("points").split()
        stepped = lines[1].getAttribute("points").split()
        assert len(stepped) == 2 * len(plain) - 1

    def test_empty_series_list_rejected(self):
        with pytest.raises(ValueError):
            line_chart([], title="t", x_label="x", y_label="y")


class TestFigureOutputs:
    def test_fig1_produces_svg(self):
        result = fig1.run()
        assert "fig1" in result.svg_figures
        xml.dom.minidom.parseString(result.svg_figures["fig1"])

    def test_fig2_produces_svg(self):
        result = fig2.run()
        assert "fig2" in result.svg_figures
        xml.dom.minidom.parseString(result.svg_figures["fig2"])
