"""Tests for adversarial scenarios and sim-vs-bound checking."""

from __future__ import annotations

import pytest

from repro.analysis.adversary import (
    build_static_collision_scenario,
    build_time_spread_scenario,
    expected_tts_cost,
)
from repro.analysis.bounds import check_latency_bounds, check_search_costs
from repro.core.search_cost import simulate_search, worst_case_placement, xi_exact
from repro.experiments.harness import build_simulation, ddcr_factory, default_ddcr_config
from repro.model.workloads import uniform_problem
from repro.net.phy import GIGABIT_ETHERNET

_MS = 1_000_000


class TestStaticScenario:
    @pytest.mark.parametrize("k,q,m", [(2, 8, 2), (4, 8, 2), (3, 16, 4)])
    def test_worst_placement_attains_xi(self, k, q, m):
        placement = worst_case_placement(k, q, m)
        scenario = build_static_collision_scenario(placement, q, m)
        result = scenario.run()
        record = result.stations[0].mac.sts_records[0]
        assert record.wasted_slots == xi_exact(k, q, m)
        assert record.successes == k

    def test_arbitrary_placement_matches_reference(self):
        placement = (1, 2, 7)
        scenario = build_static_collision_scenario(placement, 8, 2)
        result = scenario.run()
        record = result.stations[0].mac.sts_records[0]
        assert record.wasted_slots == simulate_search(placement, 8, 2).cost

    def test_all_messages_delivered_on_time(self):
        scenario = build_static_collision_scenario((0, 3, 5), 8, 2)
        result = scenario.run()
        for station in result.stations:
            assert len(station.completions) == 1
            assert station.completions[0].on_time

    def test_validation(self):
        with pytest.raises(ValueError):
            build_static_collision_scenario((1,), 8, 2)
        with pytest.raises(ValueError):
            build_static_collision_scenario((1, 1), 8, 2)


class TestTimeSpreadScenario:
    @pytest.mark.parametrize("k,f,m", [(2, 16, 2), (4, 64, 4)])
    def test_worst_classes_attain_xi(self, k, f, m):
        classes = worst_case_placement(k, f, m)
        scenario = build_time_spread_scenario(classes, time_f=f, time_m=m)
        result = scenario.run()
        records = [
            r for r in result.stations[0].mac.tts_records if r.successes
        ]
        assert records[0].wasted_slots == xi_exact(k, f, m)

    def test_expected_cost_helper_agrees(self):
        classes = (0, 5, 11)
        assert expected_tts_cost(classes, 16, 2) == simulate_search(
            classes, 16, 2
        ).cost

    def test_no_sts_for_distinct_classes(self):
        scenario = build_time_spread_scenario((1, 9), time_f=16, time_m=2)
        result = scenario.run()
        assert result.stations[0].mac.sts_records == []

    def test_validation(self):
        with pytest.raises(ValueError):
            build_time_spread_scenario((3,))
        with pytest.raises(ValueError):
            build_time_spread_scenario((3, 3))
        with pytest.raises(ValueError):
            build_time_spread_scenario((3, 99), time_f=16)


class TestBoundChecks:
    def _run(self):
        problem = uniform_problem(
            z=4, length=8_000, deadline=12 * _MS, a=1, w=4 * _MS
        )
        config = default_ddcr_config(problem, GIGABIT_ETHERNET)
        simulation = build_simulation(
            problem, GIGABIT_ETHERNET, ddcr_factory(config)
        )
        return problem, config, simulation.run(36 * _MS)

    def test_search_costs_within_xi(self):
        _, _, result = self._run()
        assert check_search_costs(result) == []

    def test_latency_within_b_ddcr(self):
        problem, config, result = self._run()
        report, checks = check_latency_bounds(
            result, problem, GIGABIT_ETHERNET, config.tree_parameters()
        )
        assert report.feasible
        assert checks, "expected at least one class to deliver"
        for check in checks:
            assert check.holds, check
            assert 0 < check.tightness <= 1

    def test_non_ddcr_stations_are_skipped(self):
        from repro.experiments.harness import csma_cd_factory

        problem = uniform_problem(z=2, deadline=12 * _MS)
        simulation = build_simulation(
            problem, GIGABIT_ETHERNET, csma_cd_factory()
        )
        result = simulation.run(5 * _MS)
        assert check_search_costs(result) == []
