"""Tests for the DES kernel: environment, events, processes."""

from __future__ import annotations

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0

    def test_custom_start(self):
        assert Environment(initial_time=100).now == 100

    def test_timeout_advances_clock(self):
        env = Environment()

        def proc(env):
            yield env.timeout(7)
            return env.now

        process = env.process(proc(env))
        env.run()
        assert process.value == 7

    def test_run_until_time(self):
        env = Environment()

        def ticker(env):
            while True:
                yield env.timeout(10)

        env.process(ticker(env))
        env.run(until=35)
        assert env.now == 35

    def test_run_until_past_rejected(self):
        env = Environment(initial_time=10)
        with pytest.raises(ValueError):
            env.run(until=5)

    def test_peek(self):
        env = Environment()
        env.timeout(4)
        assert env.peek() == 4

    def test_peek_empty(self):
        assert Environment().peek() == float("inf")

    def test_step_empty_rejected(self):
        with pytest.raises(SimulationError):
            Environment().step()


class TestEventOrdering:
    def test_fifo_at_same_time(self):
        env = Environment()
        order = []

        def proc(env, name):
            yield env.timeout(5)
            order.append(name)

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        assert order == ["a", "b"]

    def test_chronological(self):
        env = Environment()
        order = []

        def proc(env, name, delay):
            yield env.timeout(delay)
            order.append(name)

        env.process(proc(env, "late", 10))
        env.process(proc(env, "early", 1))
        env.run()
        assert order == ["early", "late"]


class TestEvents:
    def test_succeed_delivers_value(self):
        env = Environment()
        event = env.event()

        def waiter(env, event):
            value = yield event
            return value

        def firer(env, event):
            yield env.timeout(3)
            event.succeed("payload")

        process = env.process(waiter(env, event))
        env.process(firer(env, event))
        env.run()
        assert process.value == "payload"

    def test_fail_throws_into_waiter(self):
        env = Environment()
        event = env.event()

        def waiter(env, event):
            try:
                yield event
            except RuntimeError as error:
                return f"caught {error}"

        def firer(env, event):
            yield env.timeout(1)
            event.fail(RuntimeError("boom"))

        process = env.process(waiter(env, event))
        env.process(firer(env, event))
        env.run()
        assert process.value == "caught boom"

    def test_double_trigger_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_before_trigger_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_unhandled_failure_escalates(self):
        env = Environment()
        event = env.event()
        event.fail(ValueError("unhandled"))
        with pytest.raises(ValueError):
            env.run()

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)


class TestConditions:
    def test_all_of_waits_for_everything(self):
        env = Environment()

        def proc(env):
            a = env.timeout(2, value="a")
            b = env.timeout(5, value="b")
            results = yield env.all_of([a, b])
            return sorted(results.values())

        process = env.process(proc(env))
        env.run()
        assert process.value == ["a", "b"]
        assert env.now == 5

    def test_any_of_races(self):
        env = Environment()

        def proc(env):
            a = env.timeout(2, value="fast")
            b = env.timeout(50, value="slow")
            results = yield env.any_of([a, b])
            return list(results.values())

        process = env.process(proc(env))
        env.run(until=10)
        assert process.value == ["fast"]

    def test_empty_all_of_fires_immediately(self):
        env = Environment()

        def proc(env):
            yield env.all_of([])
            return env.now

        process = env.process(proc(env))
        env.run()
        assert process.value == 0

    def test_condition_failure_propagates(self):
        env = Environment()

        def failer(env):
            yield env.timeout(1)
            raise RuntimeError("inner")

        def waiter(env, target):
            try:
                yield env.all_of([target])
            except RuntimeError:
                return "propagated"

        target = env.process(failer(env))
        process = env.process(waiter(env, target))
        env.run()
        assert process.value == "propagated"

    def test_mixing_environments_rejected(self):
        env_a, env_b = Environment(), Environment()
        event = Event(env_b)
        with pytest.raises(SimulationError):
            AllOf(env_a, [event])
        with pytest.raises(SimulationError):
            AnyOf(env_a, [event])


class TestProcesses:
    def test_process_is_waitable(self):
        env = Environment()

        def child(env):
            yield env.timeout(4)
            return 42

        def parent(env):
            result = yield env.process(child(env))
            return result + 1

        process = env.process(parent(env))
        env.run()
        assert process.value == 43

    def test_interrupt_wakes_sleeper(self):
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100)
                return "overslept"
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, env.now)

        def interrupter(env, victim):
            yield env.timeout(3)
            victim.interrupt(cause="wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert victim.value == ("interrupted", "wake up", 3)

    def test_interrupt_finished_process_rejected(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_process_exception_propagates_to_run(self):
        env = Environment()

        def broken(env):
            yield env.timeout(1)
            raise KeyError("broken process")

        env.process(broken(env))
        with pytest.raises(KeyError):
            env.run()

    def test_waiting_on_failed_process_is_handled(self):
        env = Environment()

        def broken(env):
            yield env.timeout(1)
            raise KeyError("inner")

        def guardian(env, target):
            try:
                yield target
            except KeyError:
                return "shielded"

        target = env.process(broken(env))
        process = env.process(guardian(env, target))
        env.run()
        assert process.value == "shielded"

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yield_non_event_raises_in_process(self):
        env = Environment()

        def bad(env):
            yield "not an event"

        env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_run_until_process(self):
        env = Environment()

        def worker(env):
            yield env.timeout(9)
            return "done"

        process = env.process(worker(env))
        value = env.run(until=process)
        assert value == "done"
        assert env.now == 9

    def test_already_processed_target_resumes(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)
            return "q"

        quick_proc = env.process(quick(env))

        def late_waiter(env):
            yield env.timeout(5)
            value = yield quick_proc  # already finished
            return value

        waiter = env.process(late_waiter(env))
        env.run()
        assert waiter.value == "q"
        assert env.now == 5
