"""Tests for Resource and Store primitives."""

from __future__ import annotations

import pytest

from repro.sim import Environment, Resource, SimulationError, Store


class TestResource:
    def test_capacity_respected(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        log = []

        def worker(env, name):
            with resource.request() as request:
                yield request
                log.append((env.now, name, "in"))
                yield env.timeout(10)
            log.append((env.now, name, "out"))

        for name in "abc":
            env.process(worker(env, name))
        env.run()
        in_times = {name: t for t, name, what in log if what == "in"}
        assert in_times["a"] == 0 and in_times["b"] == 0
        assert in_times["c"] == 10

    def test_fifo_grant_order(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def worker(env, name):
            with resource.request() as request:
                yield request
                order.append(name)
                yield env.timeout(1)

        for name in "abcd":
            env.process(worker(env, name))
        env.run()
        assert order == list("abcd")

    def test_counts(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def worker(env):
            with resource.request() as request:
                yield request
                yield env.timeout(5)

        env.process(worker(env))
        env.process(worker(env))
        env.run(until=1)
        assert resource.count == 1
        assert resource.queue_length == 1

    def test_release_waiting_request_cancels(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        assert first.triggered and not second.triggered
        resource.release(second)  # cancel from the queue
        assert resource.queue_length == 0

    def test_release_unknown_rejected(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        request = resource.request()
        resource.release(request)
        with pytest.raises(SimulationError):
            resource.release(request)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def proc(env):
            store.put("x")
            item = yield store.get()
            return item

        process = env.process(proc(env))
        env.run()
        assert process.value == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return (env.now, item)

        def producer(env):
            yield env.timeout(6)
            store.put("late")

        consumer_proc = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert consumer_proc.value == (6, "late")

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)

        def proc(env):
            for item in (1, 2, 3):
                store.put(item)
            out = []
            for _ in range(3):
                out.append((yield store.get()))
            return out

        process = env.process(proc(env))
        env.run()
        assert process.value == [1, 2, 3]

    def test_bounded_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("a")
            log.append(("a", env.now))
            yield store.put("b")
            log.append(("b", env.now))

        def consumer(env):
            yield env.timeout(5)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert log == [("a", 0), ("b", 5)]

    def test_items_snapshot(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert store.items == (1, 2)
        assert len(store) == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Store(Environment(), capacity=0)
