"""Tests for RNG registry, trace log and statistics monitors."""

from __future__ import annotations

import math

import pytest

from repro.sim import (
    Histogram,
    RunningStats,
    SeedSequenceRegistry,
    TimeWeighted,
    TraceLog,
)


class TestSeedRegistry:
    def test_same_name_same_stream(self):
        registry = SeedSequenceRegistry(1)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_are_independent(self):
        registry = SeedSequenceRegistry(1)
        a = [registry.stream("a").random() for _ in range(5)]
        b = [registry.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_instances(self):
        a = SeedSequenceRegistry(7).stream("x").random()
        b = SeedSequenceRegistry(7).stream("x").random()
        assert a == b

    def test_different_seeds_differ(self):
        a = SeedSequenceRegistry(1).stream("x").random()
        b = SeedSequenceRegistry(2).stream("x").random()
        assert a != b

    def test_spawn_child_registry(self):
        parent = SeedSequenceRegistry(1)
        child = parent.spawn("sub")
        assert (
            child.stream("x").random() != parent.stream("x").random()
        )


class TestTraceLog:
    def test_emit_and_filter(self):
        trace = TraceLog()
        trace.emit(0, "slot", state="silence")
        trace.emit(5, "slot", state="success")
        trace.emit(7, "phase", mode="tts")
        assert len(trace) == 3
        assert trace.count("slot") == 2
        assert [r["state"] for r in trace.records("slot")] == [
            "silence",
            "success",
        ]

    def test_between(self):
        trace = TraceLog()
        for t in (0, 10, 20, 30):
            trace.emit(t, "tick")
        assert [r.time for r in trace.between(10, 30)] == [10, 20]

    def test_disabled_is_noop(self):
        trace = TraceLog(enabled=False)
        trace.emit(0, "slot")
        assert len(trace) == 0

    def test_subscriber_sees_live_records(self):
        trace = TraceLog()
        seen = []
        trace.subscribe(seen.append)
        trace.emit(1, "x")
        assert len(seen) == 1 and seen[0].kind == "x"

    def test_clear(self):
        trace = TraceLog()
        trace.emit(0, "x")
        trace.clear()
        assert len(trace) == 0

    def test_to_jsonl_round_trip(self, tmp_path):
        import json

        trace = TraceLog()
        trace.emit(0, "slot", state="silence")
        trace.emit(5, "slot", state="success", station=3)
        trace.emit(7, "phase", mode="tts")
        path = tmp_path / "trace.jsonl"
        assert trace.to_jsonl(path) == 3
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert lines[0] == {"time": 0, "kind": "slot", "state": "silence"}
        assert lines[1]["station"] == 3
        assert lines[2]["kind"] == "phase"

    def test_to_jsonl_kind_filter_and_fallback_encoding(self, tmp_path):
        import json

        class Opaque:
            def __str__(self):
                return "<opaque>"

        trace = TraceLog()
        trace.emit(0, "slot", payload=Opaque())
        trace.emit(1, "phase")
        path = tmp_path / "trace.jsonl"
        assert trace.to_jsonl(path, kind="slot") == 1
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["payload"] == "<opaque>"


class TestRunningStats:
    def test_basic_moments(self):
        stats = RunningStats()
        for value in (1, 2, 3, 4):
            stats.add(value)
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.variance == pytest.approx(5 / 3)
        assert stats.minimum == 1 and stats.maximum == 4

    def test_empty_is_nan(self):
        stats = RunningStats()
        assert math.isnan(stats.mean)
        assert math.isnan(stats.variance)

    def test_single_sample(self):
        stats = RunningStats()
        stats.add(7)
        assert stats.variance == 0.0
        assert stats.stdev == 0.0


class TestTimeWeighted:
    def test_average_of_step_signal(self):
        signal = TimeWeighted()
        signal.update(10, 1.0)  # 0 for [0,10), 1 for [10,30)
        assert signal.average(30) == pytest.approx(20 / 30)

    def test_time_cannot_go_backwards(self):
        signal = TimeWeighted()
        signal.update(5, 1.0)
        with pytest.raises(ValueError):
            signal.update(4, 2.0)

    def test_zero_span(self):
        signal = TimeWeighted(initial=3.0)
        assert signal.average(0) == 3.0


class TestHistogram:
    def test_binning_and_overflow(self):
        histogram = Histogram(bin_width=10, bins=3)
        for value in (0, 5, 15, 100):
            histogram.add(value)
        assert histogram.counts == [2, 1, 0]
        assert histogram.overflow == 1
        assert histogram.total == 4

    def test_quantile(self):
        histogram = Histogram(bin_width=1, bins=100)
        for value in range(100):
            histogram.add(value)
        assert histogram.quantile(0.5) == pytest.approx(50, abs=2)

    def test_quantile_empty(self):
        assert math.isnan(Histogram(bin_width=1, bins=2).quantile(0.5))

    def test_quantile_overflow_is_inf(self):
        histogram = Histogram(bin_width=1, bins=1)
        histogram.add(100)
        assert histogram.quantile(1.0) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(bin_width=0, bins=3)
        with pytest.raises(ValueError):
            Histogram(bin_width=1, bins=0)
        histogram = Histogram(bin_width=1, bins=1)
        with pytest.raises(ValueError):
            histogram.add(-1)
        with pytest.raises(ValueError):
            histogram.quantile(2.0)
