"""Trace generator: determinism, validation, shape of the event mix."""

from __future__ import annotations

import pytest

from repro.serve.model import REQUEST_KINDS
from repro.serve.traces import TEMPLATES, TraceConfig, generate_trace


class TestDeterminism:
    def test_same_config_same_trace(self):
        config = TraceConfig(events=200, stations=16, seed=42)
        first = generate_trace(config)
        second = generate_trace(config)
        assert [r.to_json() for r in first] == [r.to_json() for r in second]

    def test_different_seeds_differ(self):
        a = generate_trace(TraceConfig(events=100, seed=0))
        b = generate_trace(TraceConfig(events=100, seed=1))
        assert [r.to_json() for r in a] != [r.to_json() for r in b]


class TestShape:
    def test_seqs_are_contiguous(self):
        trace = generate_trace(TraceConfig(events=150, seed=3))
        assert [r.seq for r in trace] == list(range(150))

    def test_only_known_kinds(self):
        trace = generate_trace(TraceConfig(events=300, seed=5))
        assert {r.kind for r in trace} <= set(REQUEST_KINDS)

    def test_all_kinds_appear_on_long_traces(self):
        trace = generate_trace(TraceConfig(events=600, seed=1))
        assert {r.kind for r in trace} == set(REQUEST_KINDS)

    def test_join_names_are_globally_unique(self):
        trace = generate_trace(TraceConfig(events=500, seed=9))
        names = [r.name for r in trace if r.kind == "join"]
        assert len(names) == len(set(names))

    def test_joins_carry_full_class_shape(self):
        trace = generate_trace(TraceConfig(events=200, seed=2, nu=3))
        joins = [r for r in trace if r.kind == "join"]
        assert joins
        for request in joins:
            assert request.length >= 1 and request.deadline >= 1
            assert request.a >= 1 and request.w >= 1
            assert request.nu == 3

    def test_sources_stay_in_station_range(self):
        config = TraceConfig(events=300, stations=7, seed=4)
        for request in generate_trace(config):
            if request.source_id is not None:
                assert 0 <= request.source_id < 7

    @pytest.mark.parametrize("template", sorted(TEMPLATES))
    def test_templates_generate(self, template):
        trace = generate_trace(
            TraceConfig(events=50, seed=0, template=template)
        )
        keys = {r.name.split("-")[0] for r in trace if r.kind == "join"}
        assert keys <= {t.key for t in TEMPLATES[template]}


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"events": 0},
            {"stations": 0},
            {"template": "metropolis"},
            {"nu": 0},
            {"churn": 1.5},
            {"rescale_rate": -0.1},
            {"burst": 2.0},
        ],
    )
    def test_bad_config_raises(self, kwargs):
        with pytest.raises(ValueError):
            TraceConfig(**kwargs)
