"""Differential replay: cold run, log replay and mid-trace resume must
produce byte-identical decision logs — across both feasibility-grid
backends and with the persistent xi store disabled."""

from __future__ import annotations

import pytest

from repro.core.feas_grid import _PythonFeasOps
from repro.core.xi_store import use_xi_store
from repro.serve.service import (
    AdmissionService,
    ServeConfig,
    read_event_log,
    replay_event_log,
)
from repro.serve.traces import TraceConfig, generate_trace

_CONFIG = ServeConfig(static_q=64)
_TRACE = TraceConfig(events=120, stations=12, seed=21, template="city")

BACKENDS = {"default": None, "python": _PythonFeasOps()}


def _decision_lines(log_dir) -> list[str]:
    return (log_dir / "decisions.jsonl").read_text().splitlines()


def _cold_run(log_dir, backend=None) -> list[str]:
    with AdmissionService(
        _CONFIG, backend=backend, log_dir=log_dir
    ) as service:
        decisions = service.run_trace(generate_trace(_TRACE))
        assert not service.incidents
    return [decision.to_json() for decision in decisions]


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
def test_replay_is_byte_identical(tmp_path, backend_name):
    backend = BACKENDS[backend_name]
    log_dir = tmp_path / "log"
    cold = _cold_run(log_dir, backend=backend)
    assert _decision_lines(log_dir) == cold
    replayed = replay_event_log(log_dir, backend=backend)
    assert replayed.incidents == []  # every decision byte-compared inside


def test_backends_agree_on_the_decision_log(tmp_path):
    logs = {}
    for name, backend in BACKENDS.items():
        logs[name] = _cold_run(tmp_path / name, backend=backend)
    assert logs["default"] == logs["python"]


def test_replay_without_xi_store_is_byte_identical(tmp_path):
    """REPRO_XI_CACHE=off equivalent: the ambient store disabled.  The
    xi tables are recomputed instead of loaded, and the decision log must
    not move by a byte."""
    log_dir = tmp_path / "log"
    cold = _cold_run(log_dir)
    with use_xi_store(None):
        replayed = replay_event_log(log_dir)
    assert replayed.incidents == []
    assert _decision_lines(log_dir) == cold


def test_resume_mid_trace_continues_the_same_log(tmp_path):
    """Replay the first half with ``attach``, serve the second half live:
    the combined decision log must equal the cold run's byte for byte."""
    cold_dir = tmp_path / "cold"
    cold = _cold_run(cold_dir)
    trace = generate_trace(_TRACE)
    half = len(trace) // 2

    # First half served "yesterday"...
    partial_dir = tmp_path / "partial"
    with AdmissionService(_CONFIG, log_dir=partial_dir) as first:
        first.run_trace(trace[:half])

    # ...process restarts: replay the log, re-attach, serve the rest.
    resumed = replay_event_log(partial_dir, attach=True)
    assert resumed.incidents == []
    assert resumed._last_seq == trace[half - 1].seq
    with resumed:
        resumed.run_trace(trace[half:])
    assert _decision_lines(partial_dir) == cold


def test_resume_rejects_out_of_order_continuation(tmp_path):
    log_dir = tmp_path / "log"
    trace = generate_trace(_TRACE)
    with AdmissionService(_CONFIG, log_dir=log_dir) as service:
        service.run_trace(trace[:10])
    resumed = replay_event_log(log_dir, attach=True)
    with resumed:
        decision = resumed.handle(trace[3])  # stale seq
    assert decision.verdict == "error"


def test_read_event_log_round_trips(tmp_path):
    log_dir = tmp_path / "log"
    _cold_run(log_dir)
    config, events = read_event_log(log_dir)
    assert config == _CONFIG
    assert len(events) == _TRACE.events
    requests = [request for request, _ in events]
    assert [r.to_json() for r in requests] == [
        r.to_json() for r in generate_trace(_TRACE)
    ]
