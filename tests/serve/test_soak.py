"""Soak: a 50k-event city-scale trace with periodic engine-vs-oracle
digest checks and a decision-latency p99 assertion.

Excluded from the tier-1 fast path; run with::

    pytest -m slow tests/serve/test_soak.py
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.feasibility import check_feasibility
from repro.obs.instruments import Telemetry
from repro.serve.service import AdmissionService, ServeConfig
from repro.serve.traces import TraceConfig, generate_trace

_EVENTS = 50_000
_CHECK_EVERY = 5_000
#: Generous wall-clock ceiling: the bench sustains >1k decisions/s on a
#: 128-class set, so 50 ms p99 flags only pathological regressions
#: (the histogram's quantile() reports bucket upper edges, in us).
_P99_CEILING_US = 50_000


@pytest.mark.slow
def test_city_scale_soak():
    config = ServeConfig(static_q=512)
    telemetry = Telemetry()
    service = AdmissionService(config, telemetry=telemetry)
    trace = generate_trace(TraceConfig(
        events=_EVENTS, stations=400, seed=99, template="city", churn=0.5,
    ))
    medium = config.medium_profile()
    trees = config.trees()
    checks = 0
    for request in trace:
        service.handle(request)
        if (request.seq + 1) % _CHECK_EVERY:
            continue
        # Engine-vs-oracle digest on the live admitted set.
        checks += 1
        if service.class_count == 0:
            continue
        oracle = check_feasibility(service.engine.to_problem(), medium,
                                   trees)
        mine = service.engine.report()
        assert len(mine.classes) == len(oracle.classes)
        for row, expected in zip(mine.classes, oracle.classes):
            assert pickle.dumps(row) == pickle.dumps(expected), (
                f"engine diverged from oracle at seq {request.seq} "
                f"on {expected.class_name}"
            )
        assert mine.feasible  # the service never keeps an infeasible set
    assert checks == _EVENTS // _CHECK_EVERY

    histogram = telemetry.histogram("serve/decision_latency_us")
    assert histogram.count == _EVENTS
    p99 = histogram.quantile(0.99)
    assert p99 is not None and p99 <= _P99_CEILING_US, (
        f"decision latency p99 {p99} us exceeds {_P99_CEILING_US} us"
    )

    # The trace really exercised the service at city scale.
    requests = telemetry.counter("serve/requests").value
    admits = telemetry.counter("serve/admit").value
    assert requests == _EVENTS
    assert admits > 1_000
