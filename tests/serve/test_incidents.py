"""Incident journal durability: per-event flush, crash-tolerant reads,
and byte-identical incident streams across cold runs and resume."""

from __future__ import annotations

import json

from repro.obs.instruments import Telemetry
from repro.obs.slo import Objective, SloEngine
from repro.obs.tracer import FlightRecorder, load_trace
from repro.serve.model import Incident, Request
from repro.serve.service import (
    INCIDENTS_FILE,
    AdmissionService,
    ServeConfig,
    read_incidents,
    replay_event_log,
)

_MS = 1_000_000
_CONFIG = ServeConfig(static_q=64, check_every=0)


def _join(seq: int) -> Request:
    return Request(seq=seq, kind="join", source_id=seq, name=f"c{seq}",
                   nu=1, length=8_000, deadline=12 * _MS, a=1, w=4 * _MS)


def _forced_slos(short: int = 2, long: int = 4) -> SloEngine:
    """An objective no run can meet: latency threshold 0 makes every
    decision sample bad, so the breach tick depends only on the window
    lengths — deterministic regardless of actual wall-clock latency."""
    return SloEngine([
        Objective(name="forced", kind="latency",
                  instrument="serve/decision_latency_us", threshold=0.0,
                  q=0.99, short_window=short, long_window=long),
    ])


class TestJournalFlush:
    def test_incident_line_durable_before_handle_returns(self, tmp_path):
        """The journal must be readable mid-run, after every incident —
        the whole point of a black box is surviving the crash that comes
        next."""
        with AdmissionService(
            _CONFIG, telemetry=Telemetry(), slos=_forced_slos(),
            log_dir=tmp_path,
        ) as service:
            for seq in range(5):  # long_window=4 -> breach on tick 5
                service.handle(_join(seq))
                # Read the file *while the service is still open*.
                on_disk = read_incidents(tmp_path)
                if seq < 4:
                    assert on_disk == []
                else:
                    (incident,) = on_disk
                    assert incident.kind == "slo-breach"
                    assert incident.at_seq == 4
                    assert "SLO forced" in incident.detail
            assert len(service.incidents) == 1

    def test_untraced_incidents_carry_no_trace_field(self, tmp_path):
        with AdmissionService(
            _CONFIG, telemetry=Telemetry(), slos=_forced_slos(),
            log_dir=tmp_path,
        ) as service:
            for seq in range(5):
                service.handle(_join(seq))
        line = (tmp_path / INCIDENTS_FILE).read_text().splitlines()[0]
        assert "trace" not in json.loads(line)


class TestReadIncidents:
    def test_missing_file_means_no_incidents(self, tmp_path):
        assert read_incidents(tmp_path) == []

    def test_round_trips_clean_journal(self, tmp_path):
        incidents = [
            Incident(kind="oracle-divergence", at_seq=3, detail="d0"),
            Incident(kind="slo-breach", at_seq=7, detail="d1"),
        ]
        (tmp_path / INCIDENTS_FILE).write_text(
            "".join(incident.to_json() + "\n" for incident in incidents)
        )
        assert read_incidents(tmp_path) == incidents

    def test_tolerates_truncated_final_line(self, tmp_path):
        """A crash mid-append can only truncate the last line; the
        journal up to that point must still parse."""
        whole = Incident(kind="slo-breach", at_seq=1, detail="kept")
        half = Incident(kind="slo-breach", at_seq=2, detail="lost")
        (tmp_path / INCIDENTS_FILE).write_text(
            whole.to_json() + "\n" + half.to_json()[:-7]
        )
        assert read_incidents(tmp_path) == [whole]

    def test_interior_corruption_still_raises(self, tmp_path):
        whole = Incident(kind="slo-breach", at_seq=1, detail="kept")
        (tmp_path / INCIDENTS_FILE).write_text(
            "garbage\n" + whole.to_json() + "\n"
        )
        try:
            read_incidents(tmp_path)
        except ValueError as error:
            assert "corrupt" in str(error)
        else:  # pragma: no cover - the assertion we are testing
            raise AssertionError("interior corruption must not be skipped")


class TestColdVsResume:
    def test_incident_stream_byte_identical_after_crash_recovery(
        self, tmp_path
    ):
        """Serve half the trace, 'crash', replay-and-attach, serve the
        rest: incidents.jsonl must equal the cold run's byte for byte.
        The forced objective breaches (and latches) inside the first
        half, so the resumed run must neither lose nor duplicate it."""
        trace = [_join(seq) for seq in range(12)]
        half = len(trace) // 2

        cold_dir = tmp_path / "cold"
        with AdmissionService(
            _CONFIG, telemetry=Telemetry(), slos=_forced_slos(),
            log_dir=cold_dir,
        ) as cold:
            cold.run_trace(trace)
        assert [i.kind for i in cold.incidents] == ["slo-breach"]

        crash_dir = tmp_path / "crash"
        with AdmissionService(
            _CONFIG, telemetry=Telemetry(), slos=_forced_slos(),
            log_dir=crash_dir,
        ) as first:
            first.run_trace(trace[:half])

        # Process restarts: replay rebuilds engine + SLO latch state
        # (the replayed breach stays in memory — the journal already has
        # it), then the survivor serves the second half live.
        resumed = replay_event_log(
            crash_dir, attach=True, telemetry=Telemetry(),
            slos=_forced_slos(),
        )
        assert [i.kind for i in resumed.incidents] == ["slo-breach"]
        with resumed:
            resumed.run_trace(trace[half:])
        # Latch held across the resume: still exactly one breach.
        assert [i.kind for i in resumed.incidents] == ["slo-breach"]

        assert (
            (crash_dir / INCIDENTS_FILE).read_bytes()
            == (cold_dir / INCIDENTS_FILE).read_bytes()
        )


class TestBlackBox:
    def test_traced_incident_carries_black_box(self, tmp_path):
        recorder = FlightRecorder()
        with AdmissionService(
            _CONFIG, telemetry=Telemetry(), slos=_forced_slos(),
            tracer=recorder, log_dir=tmp_path,
        ) as service:
            for seq in range(5):
                service.handle(_join(seq))
        (incident,) = service.incidents
        assert incident.trace  # the last events rode along
        kinds = {event["kind"] for event in incident.trace}
        assert "serve/request" in kinds
        assert "serve/incident" in kinds  # the moment itself is marked
        # The journal line carries the same snapshot...
        (on_disk,) = read_incidents(tmp_path)
        assert on_disk.trace == incident.trace
        # ...and the full ring was dumped beside it.
        dumped = load_trace(tmp_path / "blackbox.jsonl")
        assert {event.kind for event in dumped} >= kinds
