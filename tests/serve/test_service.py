"""AdmissionService decision semantics: flows, rollbacks, incidents."""

from __future__ import annotations

import json

import pytest

from repro.obs.instruments import Telemetry
from repro.serve.model import Request
from repro.serve.service import MEDIA, AdmissionService, ServeConfig

_MS = 1_000_000


def join(seq, source_id=0, name=None, nu=1, length=8_000,
         deadline=12 * _MS, a=1, w=4 * _MS):
    return Request(seq=seq, kind="join", source_id=source_id,
                   name=name if name is not None else f"c{seq}",
                   nu=nu, length=length, deadline=deadline, a=a, w=w)


@pytest.fixture()
def service() -> AdmissionService:
    return AdmissionService(ServeConfig(static_q=16))


class TestJoin:
    def test_feasible_join_admits(self, service):
        decision = service.handle(join(0))
        assert decision.verdict == "admit"
        assert decision.class_count == 1
        assert decision.total_nu == 1
        assert decision.slack is not None and decision.slack > 0
        assert service.admitted == ((0, "c0"),)

    def test_infeasible_join_rejects_and_rolls_back(self, service):
        service.handle(join(0))
        before = service.engine.snapshot()
        # An absurdly dense class no instance can carry.
        decision = service.handle(
            join(1, source_id=1, deadline=100_000, a=50, w=1_000)
        )
        assert decision.verdict == "reject"
        assert "infeasible" in decision.reason
        assert service.engine.snapshot() == before

    def test_duplicate_name_is_an_error(self, service):
        service.handle(join(0, name="dup"))
        decision = service.handle(join(1, source_id=1, name="dup"))
        assert decision.verdict == "error"
        assert "dup" in decision.reason

    def test_missing_fields_are_an_error(self, service):
        decision = service.handle(Request(seq=0, kind="join", source_id=0))
        assert decision.verdict == "error"
        assert "name" in decision.reason

    def test_invalid_class_shape_is_an_error(self, service):
        decision = service.handle(join(0, length=0))
        assert decision.verdict == "error"

    def test_new_source_without_nu_is_an_error(self, service):
        request = Request(seq=0, kind="join", source_id=0, name="c",
                          length=8_000, deadline=12 * _MS, a=1, w=4 * _MS)
        assert service.handle(request).verdict == "error"

    def test_capacity_reject_when_leaves_exhausted(self):
        service = AdmissionService(ServeConfig(static_q=4))
        for seq in range(4):
            assert service.handle(
                join(seq, source_id=seq, deadline=64 * _MS, w=32 * _MS)
            ).verdict == "admit"
        decision = service.handle(
            join(4, source_id=4, deadline=64 * _MS, w=32 * _MS)
        )
        assert decision.verdict == "reject"
        assert "capacity" in decision.reason

    def test_second_class_on_existing_source_needs_no_nu(self, service):
        service.handle(join(0))
        request = Request(seq=1, kind="join", source_id=0, name="second",
                          length=4_000, deadline=12 * _MS, a=1, w=4 * _MS)
        assert service.handle(request).verdict == "admit"


class TestLeave:
    def test_leave_retires_the_class(self, service):
        service.handle(join(0))
        decision = service.handle(
            Request(seq=1, kind="leave", source_id=0, name="c0")
        )
        assert decision.verdict == "ok"
        assert decision.class_count == 0
        assert decision.slack is None
        assert service.admitted == ()

    def test_leave_frees_the_name_for_rejoin(self, service):
        service.handle(join(0, name="n"))
        service.handle(Request(seq=1, kind="leave", source_id=0, name="n"))
        assert service.handle(join(2, name="n")).verdict == "admit"

    def test_unknown_class_is_an_error(self, service):
        decision = service.handle(
            Request(seq=0, kind="leave", source_id=0, name="ghost")
        )
        assert decision.verdict == "error"


class TestRescale:
    def test_feasible_rescale_admits(self, service):
        service.handle(join(0))
        decision = service.handle(
            Request(seq=1, kind="rescale", source_id=0, name="c0",
                    w=8 * _MS)
        )
        assert decision.verdict == "admit"
        assert service.engine.class_state(0, "c0")[1] == 8 * _MS

    def test_infeasible_rescale_rolls_back_exactly(self, service):
        service.handle(join(0))
        service.handle(join(1, source_id=1))
        before = service.engine.snapshot()
        decision = service.handle(
            Request(seq=2, kind="rescale", source_id=0, name="c0",
                    a=200, w=1_000)
        )
        assert decision.verdict == "reject"
        assert service.engine.snapshot() == before

    def test_rollback_restores_w0_across_density_rescale(self, service):
        """The w0 base must survive a rejected rescale: a later global
        reconfigure would otherwise re-derive a different window."""
        service.handle(join(0))
        service.handle(Request(seq=1, kind="reconfigure", scale=2.0))
        before = service.engine.snapshot()
        service.handle(Request(seq=2, kind="rescale", source_id=0,
                               name="c0", a=200, w=1_000))
        assert service.engine.snapshot() == before

    def test_rescale_without_fields_is_an_error(self, service):
        service.handle(join(0))
        decision = service.handle(
            Request(seq=1, kind="rescale", source_id=0, name="c0")
        )
        assert decision.verdict == "error"


class TestReconfigure:
    def test_harmless_scale_evicts_nothing(self, service):
        service.handle(join(0))
        decision = service.handle(
            Request(seq=1, kind="reconfigure", scale=0.5)
        )
        assert decision.verdict == "ok"
        assert decision.evicted == ()
        assert decision.scale == 0.5

    def test_tightening_scale_evicts_lifo_until_feasible(self):
        service = AdmissionService(ServeConfig(static_q=16))
        for seq in range(6):
            assert service.handle(
                join(seq, source_id=seq, deadline=6 * _MS, w=2 * _MS)
            ).verdict == "admit"
        decision = service.handle(
            Request(seq=6, kind="reconfigure", scale=64.0)
        )
        assert decision.verdict == "ok"
        assert decision.evicted  # something had to go
        # Newest-first eviction order.
        evicted_names = [name for _, name in decision.evicted]
        assert evicted_names == sorted(
            evicted_names, key=lambda n: -int(n[1:])
        )
        assert service.engine.feasible

    def test_evicted_names_can_rejoin(self):
        service = AdmissionService(ServeConfig(static_q=16))
        for seq in range(6):
            service.handle(
                join(seq, source_id=seq, deadline=6 * _MS, w=2 * _MS)
            )
        decision = service.handle(
            Request(seq=6, kind="reconfigure", scale=64.0)
        )
        service.handle(Request(seq=7, kind="reconfigure", scale=1.0))
        source_id, name = decision.evicted[0]
        rejoin = join(8, source_id=source_id, name=name,
                      deadline=6 * _MS, w=2 * _MS)
        assert service.handle(rejoin).verdict == "admit"

    def test_bad_scale_is_an_error(self, service):
        decision = service.handle(
            Request(seq=0, kind="reconfigure", scale=0.0)
        )
        assert decision.verdict == "error"


class TestSequencing:
    def test_out_of_order_seq_is_an_error(self, service):
        service.handle(join(5))
        decision = service.handle(join(3, source_id=1))
        assert decision.verdict == "error"
        assert "out-of-order" in decision.reason

    def test_error_does_not_advance_seq(self, service):
        service.handle(join(5))
        service.handle(join(3, source_id=1))  # rejected, seq stays at 5
        assert service.handle(join(6, source_id=1)).verdict == "admit"


class TestCounterCheck:
    def test_clean_state_raises_no_incidents(self, service):
        service.handle(join(0))
        service.handle(join(1, source_id=1))
        assert service.counter_check() == []
        assert service.incidents == []

    def test_empty_set_is_trivially_clean(self, service):
        assert service.counter_check() == []

    def test_forced_divergence_is_reported(self, service):
        """Corrupt one engine column behind the service's back: the
        oracle check must notice and file an incident, not raise."""
        service.handle(join(0))
        service.handle(join(1, source_id=1))
        state = service.engine._sources[0].classes[0]
        state.u += 1_000_000
        service.engine._report = None  # drop the cached report
        incidents = service.counter_check()
        assert [i.kind for i in incidents] == ["oracle-divergence"]
        assert service.incidents == incidents

    def test_periodic_checks_run_every_n_requests(self):
        telemetry = Telemetry()
        service = AdmissionService(
            ServeConfig(static_q=16, check_every=2), telemetry=telemetry
        )
        for seq in range(6):
            service.handle(join(seq, source_id=seq))
        assert telemetry.counter("serve/checks").value == 3


class TestTelemetry:
    def test_counters_and_latency_histogram(self):
        telemetry = Telemetry()
        service = AdmissionService(
            ServeConfig(static_q=16), telemetry=telemetry
        )
        service.handle(join(0))
        service.handle(Request(seq=1, kind="leave", source_id=0, name="c0"))
        service.handle(Request(seq=2, kind="leave", source_id=0, name="c0"))
        assert telemetry.counter("serve/requests").value == 3
        assert telemetry.counter("serve/admit").value == 1
        assert telemetry.counter("serve/ok").value == 1
        assert telemetry.counter("serve/error").value == 1
        histogram = telemetry.histogram("serve/decision_latency_us")
        assert histogram.count == 3
        assert histogram.max is not None and histogram.max > 0


class TestEventLog:
    def test_header_then_events(self, tmp_path, service):
        with AdmissionService(
            ServeConfig(static_q=16), log_dir=tmp_path / "log"
        ) as logged:
            logged.handle(join(0))
        lines = [
            json.loads(line)
            for line in (tmp_path / "log" / "events.jsonl")
            .read_text().splitlines()
        ]
        assert lines[0]["kind"] == "header"
        assert lines[0]["config"]["static_q"] == 16
        assert lines[1]["kind"] == "event"
        assert lines[1]["request"]["name"] == "c0"
        assert lines[1]["decision"]["verdict"] == "admit"

    def test_decisions_file_matches_decisions(self, tmp_path):
        with AdmissionService(
            ServeConfig(static_q=16), log_dir=tmp_path / "log"
        ) as logged:
            decisions = [logged.handle(join(seq, source_id=seq))
                         for seq in range(3)]
        raw = (tmp_path / "log" / "decisions.jsonl").read_text()
        assert raw.splitlines() == [d.to_json() for d in decisions]


class TestConfig:
    def test_unknown_medium_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown medium"):
            AdmissionService(ServeConfig(medium="token-ring"))

    def test_media_table_covers_the_profiles(self):
        assert set(MEDIA) == {
            "gigabit-ethernet", "classic-ethernet", "atm-bus"
        }

    def test_config_round_trips(self):
        config = ServeConfig(static_q=128, check_every=8)
        assert ServeConfig.from_dict(config.to_dict()) == config
