"""Request/Decision/Incident: validation, JSON round-trips, determinism."""

from __future__ import annotations

import json

import pytest

from repro.serve.model import Decision, Incident, Request


class TestRequest:
    def test_join_round_trips(self):
        request = Request(seq=3, kind="join", source_id=1, name="video-1-0",
                          nu=2, length=12_000, deadline=5_000_000, a=1,
                          w=1_000_000)
        assert Request.from_dict(json.loads(request.to_json())) == request

    def test_unused_fields_dropped_from_json(self):
        request = Request(seq=0, kind="leave", source_id=4, name="x")
        doc = request.to_dict()
        assert set(doc) == {"seq", "kind", "source_id", "name"}

    def test_reconfigure_carries_scale(self):
        request = Request(seq=9, kind="reconfigure", scale=1.5)
        assert Request.from_dict(request.to_dict()) == request

    def test_rejects_negative_seq(self):
        with pytest.raises(ValueError, match="seq"):
            Request(seq=-1, kind="join")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Request(seq=0, kind="merge")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            Request.from_dict({"seq": 0, "kind": "join", "priority": 7})

    def test_json_is_compact_and_sorted(self):
        text = Request(seq=1, kind="leave", source_id=2, name="a").to_json()
        assert ": " not in text and ", " not in text
        keys = list(json.loads(text))
        assert keys == sorted(keys)


class TestDecision:
    def test_round_trips_with_evicted(self):
        decision = Decision(seq=5, kind="reconfigure", verdict="ok",
                            class_count=2, total_nu=2, scale=2.0,
                            slack=125.5, evicted=((3, "video-3-1"),))
        assert Decision.from_dict(
            json.loads(decision.to_json())
        ) == decision

    def test_applied_property(self):
        admit = Decision(seq=0, kind="join", verdict="admit")
        reject = Decision(seq=0, kind="join", verdict="reject")
        ok = Decision(seq=0, kind="leave", verdict="ok")
        error = Decision(seq=0, kind="leave", verdict="error")
        assert admit.applied and ok.applied
        assert not reject.applied and not error.applied

    def test_rejects_unknown_verdict(self):
        with pytest.raises(ValueError, match="verdict"):
            Decision(seq=0, kind="join", verdict="maybe")

    def test_no_wall_clock_fields(self):
        """The determinism contract: decisions never carry timestamps."""
        decision = Decision(seq=0, kind="join", verdict="admit",
                            class_count=1, total_nu=1, slack=10.0)
        doc = decision.to_dict()
        assert not any("time" in key or "latency" in key for key in doc)

    def test_json_byte_stability(self):
        make = lambda: Decision(seq=2, kind="rescale", verdict="reject",
                                reason="infeasible", source_id=1, name="c",
                                class_count=4, total_nu=4, slack=0.5)
        assert make().to_json() == make().to_json()


class TestIncident:
    def test_round_trips(self):
        incident = Incident(kind="oracle-divergence", at_seq=17,
                            detail="engine != scalar on 1 class")
        assert Incident.from_dict(
            json.loads(incident.to_json())
        ) == incident
