"""``python -m repro.serve`` CLI: subcommands, exit codes, artifacts."""

from __future__ import annotations

import json

import pytest

from repro.serve.cli import main


def test_trace_writes_jsonl(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    assert main(["trace", str(path), "--events", "25", "--stations", "6",
                 "--trace-seed", "4"]) == 0
    lines = path.read_text().splitlines()
    assert len(lines) == 25
    assert json.loads(lines[0])["seq"] == 0


def test_trace_to_stdout(capsys):
    assert main(["trace", "-", "--events", "5"]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert len(out) == 5


def test_trace_is_deterministic(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    args = ["--events", "40", "--trace-seed", "8"]
    main(["trace", str(a), *args])
    main(["trace", str(b), *args])
    assert a.read_bytes() == b.read_bytes()


def test_run_then_replay_then_verify(tmp_path, capsys):
    log_dir = tmp_path / "log"
    cache = str(tmp_path / "cache")
    code = main(["run", str(log_dir), "--events", "30", "--stations", "6",
                 "--trace-seed", "2", "--static-q", "64",
                 "--check-every", "10", "--cache-dir", cache])
    assert code == 0
    assert (log_dir / "events.jsonl").exists()
    assert (log_dir / "decisions.jsonl").exists()
    out = capsys.readouterr().out
    assert "0 incident(s)" in out

    assert main(["replay", str(log_dir)]) == 0
    assert "0 mismatch(es)" in capsys.readouterr().out

    assert main(["verify", str(log_dir), "--cache-dir", cache,
                 "--check-every", "10"]) == 0
    assert "0 incident(s)" in capsys.readouterr().out


def test_run_from_trace_file(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    main(["trace", str(trace_path), "--events", "20", "--stations", "5"])
    log_dir = tmp_path / "log"
    code = main(["run", str(log_dir), "--trace-file", str(trace_path),
                 "--static-q", "64", "--no-cache",
                 "--cache-dir", str(tmp_path / "unused")])
    assert code == 0
    events = (log_dir / "events.jsonl").read_text().splitlines()
    assert len(events) == 21  # header + 20 events


def test_run_writes_telemetry_manifest(tmp_path):
    manifest = tmp_path / "tel.jsonl"
    code = main(["run", str(tmp_path / "log"), "--events", "10",
                 "--stations", "4", "--no-cache",
                 "--cache-dir", str(tmp_path / "unused"),
                 "--telemetry", str(manifest)])
    assert code == 0
    doc = json.loads(manifest.read_text().splitlines()[0])
    assert doc["counters"]["serve/requests"] == 10
    assert "serve/decision_latency_us" in doc["histograms"]


def test_corrupted_log_fails_replay(tmp_path, capsys):
    log_dir = tmp_path / "log"
    main(["run", str(log_dir), "--events", "15", "--stations", "4",
          "--no-cache", "--cache-dir", str(tmp_path / "unused")])
    events = log_dir / "events.jsonl"
    lines = events.read_text().splitlines()
    # Flip one logged verdict: replay must detect the mismatch.
    doc = json.loads(lines[1])
    doc["decision"]["verdict"] = (
        "reject" if doc["decision"]["verdict"] != "reject" else "admit"
    )
    lines[1] = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    events.write_text("\n".join(lines) + "\n")
    assert main(["replay", str(log_dir)]) == 2
    assert "replay-mismatch" in capsys.readouterr().err


def test_bad_jobs_errors(tmp_path):
    with pytest.raises(SystemExit):
        main(["run", str(tmp_path / "log"), "--jobs", "0"])
