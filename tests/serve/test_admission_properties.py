"""Property suite: the service is the scalar oracle, policy included.

An independent reference model replicates the admission policy using
*only* scalar ``check_feasibility`` over explicit class lists — no
engine, no incremental state.  For arbitrary interleaved
join/leave/rescale/reconfigure traces, the service must agree with the
reference on every verdict, and its engine state must end exactly equal
to what the surviving class set implies: per-row pickle digests of the
engine report against a fresh scalar report, and the engine snapshot
against one rebuilt from the reference's bookkeeping.
"""

from __future__ import annotations

import math
import pickle

from hypothesis import given
from hypothesis import strategies as st

from repro.core.feasibility import check_feasibility
from repro.model.message import DensityBound, MessageClass
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec
from repro.serve.model import Request
from repro.serve.service import AdmissionService, ServeConfig

_MS = 1_000_000
_Q = 16
_NAMES = tuple(f"n{i}" for i in range(6))
_SCALES = (0.5, 1.0, 2.0, 8.0)


class ReferenceModel:
    """The admission policy, re-derived from scalar feasibility only."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.medium = config.medium_profile()
        self.trees = config.trees()
        #: [source_id, nu, [ {name, length, deadline, a, w, w0} ]]
        self.sources: list[list] = []
        self.order: list[tuple[int, str]] = []
        self.names: set[str] = set()
        self.scale = 1.0

    def _find(self, source_id: int):
        for source in self.sources:
            if source[0] == source_id:
                return source
        return None

    def _total_nu(self) -> int:
        return sum(source[1] for source in self.sources)

    def problem(self) -> HRTDMProblem | None:
        if not self.sources:
            return None
        specs = []
        offset = 0
        for source_id, nu, classes in self.sources:
            specs.append(SourceSpec(
                source_id=source_id,
                message_classes=tuple(
                    MessageClass(
                        name=c["name"], length=c["length"],
                        deadline=c["deadline"],
                        bound=DensityBound(a=c["a"], w=c["w"]),
                    )
                    for c in classes
                ),
                static_indices=tuple(range(offset, offset + nu)),
            ))
            offset += nu
        return HRTDMProblem(
            sources=tuple(specs),
            static_q=self.config.static_q,
            static_m=self.config.static_m,
        )

    def _feasible(self) -> bool:
        problem = self.problem()
        if problem is None:
            return True
        return check_feasibility(problem, self.medium, self.trees).feasible

    def _remove(self, source_id: int, name: str) -> None:
        source = self._find(source_id)
        source[2] = [c for c in source[2] if c["name"] != name]
        if not source[2]:
            self.sources.remove(source)
        self.names.discard(name)
        self.order.remove((source_id, name))

    def join(self, request: Request) -> str:
        if request.name in self.names:
            return "error"
        source = self._find(request.source_id)
        if source is None:
            if self._total_nu() + request.nu > self.config.static_q:
                return "reject"
            source = [request.source_id, request.nu, []]
            self.sources.append(source)
        source[2].append({
            "name": request.name, "length": request.length,
            "deadline": request.deadline, "a": request.a, "w": request.w,
            "w0": request.w,
        })
        self.names.add(request.name)
        self.order.append((request.source_id, request.name))
        if self._feasible():
            return "admit"
        self._remove(request.source_id, request.name)
        return "reject"

    def leave(self, request: Request) -> str:
        if (request.source_id, request.name) not in self.order:
            return "error"
        self._remove(request.source_id, request.name)
        return "ok"

    def rescale(self, request: Request) -> str:
        if (request.source_id, request.name) not in self.order:
            return "error"
        source = self._find(request.source_id)
        target = next(c for c in source[2] if c["name"] == request.name)
        saved = dict(target)
        if request.a is not None:
            target["a"] = request.a
        if request.w is not None:
            target["w"] = request.w
        target["w0"] = target["w"]
        if self._feasible():
            return "admit"
        target.update(saved)
        return "reject"

    def reconfigure(self, request: Request) -> str:
        self.scale = request.scale
        for _, _, classes in self.sources:
            for c in classes:
                c["w"] = max(1, math.ceil(c["w0"] / self.scale))
        while self.order and not self._feasible():
            source_id, name = self.order[-1]
            self._remove(source_id, name)
        return "ok"

    def apply(self, request: Request) -> str:
        return getattr(self, request.kind)(request)

    def snapshot(self) -> tuple:
        """The engine-snapshot shape the service must end up in."""
        return (
            self.scale,
            tuple(
                (
                    source_id, nu,
                    tuple(
                        (c["name"], c["length"], c["deadline"], c["a"],
                         c["w"], c["w0"])
                        for c in classes
                    ),
                )
                for source_id, nu, classes in self.sources
            ),
        )


def _ops():
    lengths = st.sampled_from((500, 2_000, 8_000))
    deadlines = st.sampled_from((2 * _MS, 8 * _MS, 32 * _MS))
    arrivals = st.sampled_from((1, 2, 8))
    windows = st.sampled_from((200_000, 1 * _MS, 4 * _MS))
    source_ids = st.integers(0, 3)
    names = st.sampled_from(_NAMES)
    join = st.tuples(st.just("join"), source_ids, names, lengths,
                     deadlines, arrivals, windows)
    leave = st.tuples(st.just("leave"), source_ids, names)
    rescale = st.tuples(st.just("rescale"), source_ids, names, arrivals,
                        windows)
    reconfigure = st.tuples(st.just("reconfigure"),
                            st.sampled_from(_SCALES))
    return st.lists(st.one_of(join, leave, rescale, reconfigure),
                    min_size=1, max_size=30)


def _to_request(seq: int, op: tuple) -> Request:
    kind = op[0]
    if kind == "join":
        _, source_id, name, length, deadline, a, w = op
        return Request(seq=seq, kind="join", source_id=source_id,
                       name=name, nu=2, length=length, deadline=deadline,
                       a=a, w=w)
    if kind == "leave":
        return Request(seq=seq, kind="leave", source_id=op[1], name=op[2])
    if kind == "rescale":
        _, source_id, name, a, w = op
        return Request(seq=seq, kind="rescale", source_id=source_id,
                       name=name, a=a, w=w)
    return Request(seq=seq, kind="reconfigure", scale=op[1])


@given(_ops())
def test_service_agrees_with_scalar_reference(ops):
    config = ServeConfig(static_q=_Q)
    service = AdmissionService(config)
    reference = ReferenceModel(config)
    for seq, op in enumerate(ops):
        request = _to_request(seq, op)
        decision = service.handle(request)
        expected = reference.apply(request)
        assert decision.verdict == expected, (
            f"seq {seq} {op}: service said {decision.verdict} "
            f"({decision.reason}), reference said {expected}"
        )
    # Terminal state: the engine must be exactly the surviving set.
    assert service.engine.snapshot() == reference.snapshot()
    problem = reference.problem()
    if problem is None:
        assert service.class_count == 0
    else:
        oracle = check_feasibility(
            problem, reference.medium, reference.trees
        )
        mine = service.engine.report()
        assert len(mine.classes) == len(oracle.classes)
        for row, expected_row in zip(mine.classes, oracle.classes):
            assert pickle.dumps(row) == pickle.dumps(expected_row)


@given(_ops())
def test_rejections_leave_no_residue(ops):
    """Digest check after *every* request, not just at the end: any
    rollback residue (a half-applied join or rescale) surfaces at the
    first infeasible request rather than being masked by later ones."""
    config = ServeConfig(static_q=_Q)
    service = AdmissionService(config)
    reference = ReferenceModel(config)
    for seq, op in enumerate(ops):
        request = _to_request(seq, op)
        service.handle(request)
        reference.apply(request)
        assert service.engine.snapshot() == reference.snapshot()
