"""Unit and property tests for the online invariant monitors.

Monitors are driven directly with synthetic slot streams here — no
simulation loop — so each oracle's accept/reject boundary is explicit.
The property tests establish the soundness direction: on any *consistent*
slot stream (state derived from the wire by the channel's own resolution
rule) the safety monitors never fire.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.message import DensityBound, MessageClass, MessageInstance
from repro.net.frames import Frame
from repro.protocols.base import ChannelState
from repro.sim.invariants import (
    MAX_VIOLATIONS_PER_MONITOR,
    DeadlineMonitor,
    MonitorSuite,
    MutualExclusionMonitor,
    SearchLengthMonitor,
    WorkConservationMonitor,
    standard_suite,
)

_SILENCE = ChannelState.SILENCE
_SUCCESS = ChannelState.SUCCESS
_COLLISION = ChannelState.COLLISION

_CLASS = MessageClass(
    name="cls", length=1_000, deadline=10_000, bound=DensityBound(a=1, w=10_000)
)


def _frame(station_id=0, arrival=0, deadline=10_000):
    msg_class = MessageClass(
        name="cls",
        length=1_000,
        deadline=deadline,
        bound=DensityBound(a=1, w=max(deadline, 1)),
    )
    return Frame(
        station_id=station_id,
        message=MessageInstance.arrive(msg_class, arrival, station_id, seq=0),
    )


class _StubStation:
    """The station surface monitors touch: id, queue, backlog."""

    def __init__(self, station_id=0, queued=()):
        self.station_id = station_id
        self.queue = list(queued)

    def backlog(self):
        return list(self.queue)


def _slot(
    monitor,
    now=0,
    state=_SILENCE,
    wire=0,
    frame=None,
    corrupted=False,
    jammed=False,
    stations=(),
    down=None,
    duration=64,
):
    monitor.on_slot(
        now, duration, state, wire, frame, corrupted, jammed,
        list(stations), down,
    )


class TestMutualExclusion:
    def test_consistent_slots_are_clean(self):
        monitor = MutualExclusionMonitor()
        _slot(monitor, state=_SILENCE, wire=0)
        _slot(monitor, state=_SUCCESS, wire=1, frame=_frame())
        _slot(monitor, state=_COLLISION, wire=2)
        _slot(monitor, state=_COLLISION, wire=1, corrupted=True)
        assert monitor.violations == []

    def test_two_transmitters_observed_as_success(self):
        monitor = MutualExclusionMonitor()
        _slot(monitor, state=_SUCCESS, wire=2, frame=_frame())
        assert len(monitor.violations) == 1
        assert monitor.violations[0].detail("wire") == 2

    def test_success_without_frame(self):
        monitor = MutualExclusionMonitor()
        _slot(monitor, state=_SUCCESS, wire=1, frame=None)
        assert len(monitor.violations) == 1

    def test_phantom_collision(self):
        monitor = MutualExclusionMonitor()
        _slot(monitor, state=_COLLISION, wire=1, corrupted=False)
        assert len(monitor.violations) == 1

    def test_corrupted_slot_must_collide_and_deliver_nothing(self):
        monitor = MutualExclusionMonitor()
        _slot(monitor, state=_SUCCESS, wire=1, corrupted=True)
        _slot(monitor, state=_COLLISION, wire=1, frame=_frame(),
              corrupted=True)
        assert len(monitor.violations) == 2

    def test_silence_with_traffic(self):
        monitor = MutualExclusionMonitor()
        _slot(monitor, state=_SILENCE, wire=1)
        assert len(monitor.violations) == 1


class TestDeadline:
    def test_on_time_completion_clean(self):
        monitor = DeadlineMonitor()
        _slot(monitor, now=100, state=_SUCCESS, wire=1,
              frame=_frame(arrival=0, deadline=10_000))
        assert monitor.violations == []

    def test_late_completion_flagged(self):
        monitor = DeadlineMonitor()
        _slot(monitor, now=10_000, state=_SUCCESS, wire=1, duration=64,
              frame=_frame(arrival=0, deadline=10_000))
        (violation,) = monitor.violations
        assert violation.detail("completion") == 10_064
        assert violation.detail("deadline") == 10_000

    def test_babble_frames_exempt(self):
        monitor = DeadlineMonitor()
        _slot(monitor, now=10_000, state=_SUCCESS, wire=1,
              frame=_frame(station_id=-1, arrival=0, deadline=1))
        assert monitor.violations == []

    def test_finalize_flags_past_due_backlog(self):
        monitor = DeadlineMonitor()
        overdue = MessageInstance.arrive(_CLASS, 0, 0, seq=1)
        fresh = MessageInstance.arrive(_CLASS, 95_000, 0, seq=2)
        station = _StubStation(queued=[overdue, fresh])
        monitor.finalize(100_000, [station], None)
        (violation,) = monitor.violations
        assert violation.detail("deadline") == 10_000


class TestWorkConservation:
    def test_streak_up_to_limit_tolerated(self):
        monitor = WorkConservationMonitor(limit=5)
        station = _StubStation(queued=["msg"])
        for now in range(5):
            _slot(monitor, now=now, state=_SILENCE, stations=[station])
        assert monitor.violations == []

    def test_streak_beyond_limit_reported_once(self):
        monitor = WorkConservationMonitor(limit=5)
        station = _StubStation(queued=["msg"])
        for now in range(9):
            _slot(monitor, now=now, state=_SILENCE, stations=[station])
        assert len(monitor.violations) == 1  # one report per streak
        assert monitor.violations[0].detail("since") == 0

    def test_activity_resets_streak(self):
        monitor = WorkConservationMonitor(limit=3)
        station = _StubStation(queued=["msg"])
        for now in range(20):
            if now % 3 == 2:
                _slot(monitor, now=now, state=_SUCCESS, wire=1,
                      frame=_frame(), stations=[station])
            else:
                _slot(monitor, now=now, state=_SILENCE, stations=[station])
        assert monitor.violations == []

    def test_idle_without_backlog_is_fine(self):
        monitor = WorkConservationMonitor(limit=2)
        station = _StubStation(queued=[])
        for now in range(10):
            _slot(monitor, now=now, state=_SILENCE, stations=[station])
        assert monitor.violations == []

    def test_down_station_queue_excused(self):
        monitor = WorkConservationMonitor(limit=2)
        station = _StubStation(station_id=3, queued=["msg"])
        for now in range(10):
            _slot(monitor, now=now, state=_SILENCE, stations=[station],
                  down={3})
        assert monitor.violations == []

    def test_limit_validation(self):
        with pytest.raises(ValueError, match="limit"):
            WorkConservationMonitor(limit=0)


def _ddcr_config():
    from repro.protocols.ddcr import DDCRConfig

    return DDCRConfig(
        time_f=16, time_m=2, class_width=65_536, static_q=4, static_m=2
    )


class TestSearchLength:
    def test_collision_run_within_bound_clean(self):
        config = _ddcr_config()
        monitor = SearchLengthMonitor(config, margin=2)
        bound = config.collision_run_bound(2)
        for now in range(bound):
            _slot(monitor, now=now, state=_COLLISION, wire=2)
        _slot(monitor, now=bound, state=_SUCCESS, wire=1, frame=_frame())
        assert monitor.violations == []

    def test_collision_run_beyond_bound_flagged_once(self):
        config = _ddcr_config()
        monitor = SearchLengthMonitor(config, margin=2)
        bound = config.collision_run_bound(2)
        for now in range(bound + 3):
            _slot(monitor, now=now, state=_COLLISION, wire=2)
        assert len(monitor.violations) == 1
        assert monitor.violations[0].detail("bound") == bound

    def test_corrupted_collisions_excused(self):
        """Noise-garbled slots neither extend nor reset the genuine run."""
        config = _ddcr_config()
        monitor = SearchLengthMonitor(config, margin=0)
        bound = config.collision_run_bound(0)
        for now in range(bound * 3):
            _slot(monitor, now=now, state=_COLLISION, wire=1, corrupted=True)
        assert monitor.violations == []

    def test_taint_skips_record_checks(self):
        config = _ddcr_config()
        monitor = SearchLengthMonitor(config)
        _slot(monitor, state=_COLLISION, wire=1, corrupted=True)

        class _Record:
            wasted_slots = 10**6
            started_at = 0
            ended_at = 0

        class _Mac:
            sts_records = (_Record(),)
            tts_records = ()

        station = _StubStation()
        station.mac = _Mac()
        monitor.finalize(1_000, [station], None)
        assert monitor.violations == []  # tainted: records not judged


class TestSuite:
    def test_cap_truncates_with_count(self):
        monitor = MutualExclusionMonitor()
        suite = MonitorSuite([monitor])
        for now in range(MAX_VIOLATIONS_PER_MONITOR + 25):
            suite.on_slot(now, 64, _SILENCE, 1, None, False, False, [], None)
        report = suite.finalize(10**6, [], None)
        assert len(report.violations) == MAX_VIOLATIONS_PER_MONITOR
        assert report.truncated == (("mutual_exclusion", 25),)
        assert report.total_violations == MAX_VIOLATIONS_PER_MONITOR + 25
        assert not report.ok
        assert "mutual_exclusion" in report.summary()

    def test_report_is_picklable_and_sorted(self):
        mutex = MutualExclusionMonitor()
        deadline = DeadlineMonitor()
        suite = MonitorSuite([deadline, mutex])
        suite.on_slot(200, 64, _SILENCE, 1, None, False, False, [], None)
        suite.on_slot(
            100, 64, _SUCCESS, 1,
            _frame(arrival=0, deadline=50), False, False, [], None,
        )
        report = suite.finalize(10**6, [], None)
        times = [violation.time for violation in report.violations]
        assert times == sorted(times)
        assert pickle.loads(pickle.dumps(report)) == report

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            MonitorSuite([])

    def test_slots_checked_counts_every_round(self):
        suite = MonitorSuite([MutualExclusionMonitor()])
        for now in range(7):
            suite.on_slot(now, 64, _SILENCE, 0, None, False, False, [], None)
        assert suite.finalize(7, [], None).slots_checked == 7


class TestStandardSuite:
    def _stations(self, factory, z=3):
        import itertools

        from repro.model.workloads import uniform_problem
        from repro.net.station import Station

        problem = uniform_problem(
            z=z, length=1_000, deadline=400_000, a=1, w=200_000
        )
        seq = itertools.count()
        return [
            Station(
                station_id=source.source_id,
                mac=factory(source),
                static_indices=source.static_indices,
                seq_source=seq,
            )
            for source in problem.sources
        ]

    def test_homogeneous_ddcr_gets_full_suite(self):
        from repro.protocols.ddcr import DDCRProtocol

        config = _ddcr_config()
        stations = self._stations(lambda s: DDCRProtocol(config))
        names = [m.name for m in standard_suite(stations).monitors]
        assert names == [
            "mutual_exclusion",
            "deadline",
            "search_length",
            "work_conservation",
        ]

    def test_backoff_protocol_disarms_work_conservation(self):
        from repro.protocols.csma_cd import CSMACDProtocol

        stations = self._stations(lambda s: CSMACDProtocol(seed=s.source_id))
        names = [m.name for m in standard_suite(stations).monitors]
        assert "work_conservation" not in names
        assert "search_length" not in names

    def test_mixed_macs_disarm_search_length(self):
        from repro.protocols.ddcr import DDCRProtocol
        from repro.protocols.tdma import TDMAProtocol

        config = _ddcr_config()
        roster = (0, 1, 2)
        stations = self._stations(
            lambda s: DDCRProtocol(config)
            if s.source_id
            else TDMAProtocol(roster)
        )
        names = [m.name for m in standard_suite(stations).monitors]
        assert "search_length" not in names
        assert "work_conservation" in names

    def test_deadline_opt_out(self):
        from repro.protocols.tdma import TDMAProtocol

        stations = self._stations(lambda s: TDMAProtocol((0, 1, 2)))
        names = [
            m.name
            for m in standard_suite(stations, deadline=False).monitors
        ]
        assert "deadline" not in names


# -- property tests --------------------------------------------------------

_consistent_slots = st.lists(
    st.one_of(
        st.just(("silence", 0)),
        st.just(("success", 1)),
        st.integers(min_value=2, max_value=6).map(lambda w: ("collision", w)),
        st.integers(min_value=0, max_value=1).map(lambda w: ("corrupted", w)),
    ),
    max_size=200,
)


@given(_consistent_slots)
def test_mutual_exclusion_sound_on_consistent_streams(slots):
    """The safety oracle never fires on any stream the channel's own
    resolution rule could actually produce."""
    monitor = MutualExclusionMonitor()
    for now, (kind, wire) in enumerate(slots):
        if kind == "silence":
            _slot(monitor, now=now, state=_SILENCE, wire=wire)
        elif kind == "success":
            _slot(monitor, now=now, state=_SUCCESS, wire=wire,
                  frame=_frame())
        elif kind == "collision":
            _slot(monitor, now=now, state=_COLLISION, wire=wire)
        else:
            _slot(monitor, now=now, state=_COLLISION, wire=wire,
                  corrupted=True)
    assert monitor.violations == []


@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=0, max_value=80),
)
def test_work_conservation_boundary_is_exact(limit, streak):
    """A backlogged idle streak fires iff it strictly exceeds the limit."""
    monitor = WorkConservationMonitor(limit=limit)
    station = _StubStation(queued=["msg"])
    for now in range(streak):
        _slot(monitor, now=now, state=_SILENCE, stations=[station])
    assert bool(monitor.violations) == (streak > limit)


@given(st.lists(st.booleans(), max_size=120))
def test_search_length_counts_only_genuine_collisions(pattern):
    """Interleaving corrupted collisions must never push a genuine-run
    count over the bound when the genuine slots alone stay under it."""
    config = _ddcr_config()
    monitor = SearchLengthMonitor(config, margin=0)
    bound = config.collision_run_bound(0)
    genuine = 0
    for now, corrupted in enumerate(pattern):
        if corrupted:
            _slot(monitor, now=now, state=_COLLISION, wire=1, corrupted=True)
        else:
            genuine += 1
            if genuine >= bound:
                _slot(monitor, now=now, state=_SUCCESS, wire=1,
                      frame=_frame())
                genuine = 0
            else:
                _slot(monitor, now=now, state=_COLLISION, wire=2)
    assert monitor.violations == []
