"""End-to-end fault-injection tests through :class:`NetworkSimulation`.

The acceptance matrix of the fault subsystem:

* every in-bound faulted scenario (crash/restart, burst noise, babbler,
  drift, jam window) runs with the auto-armed standard monitor suite and
  reports **zero** violations under both engines, byte-identically;
* an overload plan that violates the declared ``a/w`` density bound makes
  the deadline monitor fire — the oracle's negative test;
* fault plans thread through :class:`RunSpec` content hashing and the
  experiments CLI flags.
"""

from __future__ import annotations

import pickle

import pytest

from repro.faults.context import current_fault_plan, use_fault_plan
from repro.faults.models import (
    ArrivalBurst,
    BabblingStation,
    BusJam,
    ClockDrift,
    FaultPlan,
    GilbertElliottNoise,
    StationCrash,
)
from repro.model.workloads import uniform_problem
from repro.net.network import NetworkSimulation
from repro.net.phy import ideal_medium
from repro.protocols.ddcr import DDCRConfig, DDCRProtocol
from repro.protocols.tdma import TDMAProtocol

ENGINES = ("des", "fastloop")
_HORIZON = 250_000

_GE = GilbertElliottNoise(p_enter_bad=0.002, p_exit_bad=0.05, bad_rate=0.5)
_CRASH = StationCrash(station_id=0, at=40_000, restart_at=120_000)


def _problem(z=6):
    return uniform_problem(
        z=z, length=1_000, deadline=400_000, a=1, w=200_000
    )


def _config(problem):
    return DDCRConfig(
        time_f=16, time_m=2, class_width=65_536,
        static_q=problem.static_q, static_m=problem.static_m,
    )


def _run(engine, plan, *, monitors=None, z=6, horizon=_HORIZON, trace=False):
    problem = _problem(z)
    config = _config(problem)
    simulation = NetworkSimulation(
        problem,
        ideal_medium(slot_time=64),
        protocol_factory=lambda source: DDCRProtocol(config),
        trace=trace,
        engine=engine,
        faults=plan,
        monitors=monitors,
    )
    return simulation.run(horizon)


IN_BOUND_PLANS = {
    "crash-restart": FaultPlan((_CRASH,)),
    "burst-noise": FaultPlan((_GE,)),
    "babbler": FaultPlan((BabblingStation(start=40_000, stop=60_000,
                                          period=8),)),
    "drift": FaultPlan((ClockDrift(station_id=0, skew_per_slot=4.0),)),
    "jam-window": FaultPlan((BusJam(start=40_000, stop=60_000),)),
    "noise+crash": FaultPlan((_GE, _CRASH)),
}


@pytest.mark.parametrize("name", sorted(IN_BOUND_PLANS))
def test_in_bound_faults_hold_all_invariants(name):
    """DDCR under every in-bound fault: monitors auto-arm, stay silent,
    and reports are byte-identical across engines."""
    plan = IN_BOUND_PLANS[name]
    reports = []
    for engine in ENGINES:
        result = _run(engine, plan)
        report = result.invariants
        assert report is not None, "faulted run must auto-arm monitors"
        assert report.ok, report.summary()
        assert report.slots_checked > 1_000
        reports.append(pickle.dumps(report))
    assert reports[0] == reports[1]


def test_mutual_exclusion_never_violated_under_noise_and_crash():
    """The tentpole e2e: burst noise over a crash/restart cycle never
    yields two simultaneous successful transmitters."""
    snapshots = []
    for engine in ENGINES:
        result = _run(engine, FaultPlan((_GE, _CRASH)), trace=True)
        report = result.invariants
        assert report.by_invariant("mutual_exclusion") == ()
        snapshots.append(
            pickle.dumps(
                (result.stats, result.completions,
                 list(result.trace.records()), report)
            )
        )
    assert snapshots[0] == snapshots[1]


def test_overload_trips_deadline_monitor():
    """Negative test: an arrival burst far beyond the declared (a, w)
    bound must be *detected* — identically under both engines."""
    plan = FaultPlan((ArrivalBurst(station_id=0, at=20_000, count=600),))
    reports = []
    for engine in ENGINES:
        result = _run(engine, plan, horizon=900_000)
        report = result.invariants
        assert not report.ok
        deadline_violations = report.by_invariant("deadline")
        assert deadline_violations, "overload must miss deadlines"
        assert all(
            violation.detail("station") == 0
            for violation in deadline_violations
            if violation.message.startswith("message completed")
        )
        # No safety violation: the protocol stays correct, only late.
        assert report.by_invariant("mutual_exclusion") == ()
        reports.append(pickle.dumps(report))
    assert reports[0] == reports[1]


def test_fault_free_run_with_monitors_is_clean():
    result = _run("fastloop", None, monitors=True)
    report = result.invariants
    assert report is not None and report.ok
    assert report.monitors == (
        "mutual_exclusion", "deadline", "search_length", "work_conservation"
    )


def test_fault_free_run_without_monitors_has_no_report():
    assert _run("fastloop", None).invariants is None


def test_monitors_false_suppresses_even_when_faulted():
    result = _run("fastloop", FaultPlan((_GE,)), monitors=False)
    assert result.invariants is None


def test_crash_silences_station_until_restart():
    result = _run("fastloop", FaultPlan((_CRASH,)))
    mine = [r for r in result.completions if r.message.source_id == 0]
    assert mine, "station 0 must deliver before the crash and after restart"
    down_window = [
        r for r in mine if 41_000 < r.completion <= 120_000
    ]
    assert down_window == []
    assert any(r.completion > 120_000 for r in mine)  # restarted and drained


def test_tdma_under_crash_holds_its_invariants():
    """A non-DDCR protocol through the same fault path."""
    problem = _problem(z=4)
    roster = tuple(source.source_id for source in problem.sources)
    reports = []
    for engine in ENGINES:
        simulation = NetworkSimulation(
            problem,
            ideal_medium(slot_time=64),
            protocol_factory=lambda source: TDMAProtocol(roster),
            engine=engine,
            faults=FaultPlan((_CRASH,)),
        )
        report = simulation.run(_HORIZON).invariants
        assert report.ok, report.summary()
        reports.append(pickle.dumps(report))
    assert reports[0] == reports[1]


def test_ambient_plan_scoping():
    plan = FaultPlan((_GE,))
    assert current_fault_plan() is None
    with use_fault_plan(plan):
        assert current_fault_plan() is plan
        with use_fault_plan(None):
            assert current_fault_plan() is None
        assert current_fault_plan() is plan
    assert current_fault_plan() is None


def test_simulation_picks_up_ambient_plan():
    with use_fault_plan(FaultPlan((_GE,))):
        result = _run("fastloop", None)
    assert result.invariants is not None  # plan reached the channel
    explicit = _run("fastloop", FaultPlan((_GE,)))
    assert pickle.dumps(result.invariants) == pickle.dumps(explicit.invariants)


def test_explicit_empty_plan_overrides_ambient():
    with use_fault_plan(FaultPlan((_GE,))):
        result = _run("fastloop", FaultPlan())
    assert result.invariants is None  # forced fault-free


class TestRunSpecIntegration:
    def test_faults_change_the_content_hash(self):
        from repro.runtime.spec import RunSpec

        clean = RunSpec.make("PROTO")
        faulted = RunSpec.make("PROTO", faults=FaultPlan((_GE,)))
        assert clean.spec_hash() != faulted.spec_hash()
        assert clean != faulted
        assert "[faulted]" in faulted.describe()

    def test_empty_plan_normalises_to_fault_free(self):
        from repro.runtime.spec import RunSpec

        clean = RunSpec.make("PROTO")
        empty = RunSpec.make("PROTO", faults=FaultPlan())
        assert clean.spec_hash() == empty.spec_hash()
        assert empty.faults is None

    def test_engine_still_outside_the_hash(self):
        from repro.runtime.spec import RunSpec

        plan = FaultPlan((_CRASH,))
        des = RunSpec.make("PROTO", faults=plan, engine="des")
        fast = RunSpec.make("PROTO", faults=plan, engine="fastloop")
        assert des.spec_hash() == fast.spec_hash()

    def test_plan_forms_are_equivalent(self):
        from repro.runtime.spec import RunSpec

        plan = FaultPlan((_GE, _CRASH))
        by_object = RunSpec.make("PROTO", faults=plan)
        by_json = RunSpec.make("PROTO", faults=plan.dumps())
        by_dict = RunSpec.make("PROTO", faults=plan.to_dict())
        assert by_object == by_json == by_dict
        assert by_object.fault_plan() == plan

    def test_bad_faults_type_rejected(self):
        from repro.runtime.spec import RunSpec

        with pytest.raises(TypeError, match="faults"):
            RunSpec.make("PROTO", faults=42)


class TestExperimentsCLI:
    def test_fault_flags_are_mutually_exclusive(self, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["PROTO", "--fault", "crash", "--faults", "plan.json"])
        assert "not allowed with" in capsys.readouterr().err

    def test_bad_plan_file_is_a_usage_error(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        path = tmp_path / "plan.json"
        path.write_text('{"faults": [{"kind": "meteor_strike"}]}')
        with pytest.raises(SystemExit):
            main(["PROTO", "--faults", str(path)])
        assert "unknown fault kind" in capsys.readouterr().err

    def test_unknown_preset_rejected_by_choices(self, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["PROTO", "--fault", "asteroid"])
        assert "invalid choice" in capsys.readouterr().err


def test_dualbus_monitors_identical_across_engines():
    from repro.net.dualbus import DualBusSimulation, suggested_jam_threshold

    problem = _problem(z=4)
    config = _config(problem)
    reports = []
    for engine in ENGINES:
        simulation = DualBusSimulation(
            problem,
            ideal_medium(slot_time=64),
            protocol_factory=lambda source: DDCRProtocol(config),
            jam_threshold=suggested_jam_threshold(config),
            fail_bus_at=80_000,
            monitors=True,
            engine=engine,
        )
        result = simulation.run(_HORIZON)
        assert result.failovers == 1
        assert result.invariants is not None
        for report in result.invariants:
            assert report.ok, report.summary()
            assert report.monitors == ("mutual_exclusion",)
        reports.append(pickle.dumps(result.invariants))
    assert reports[0] == reports[1]
