"""Unit tests for the fault-injector runtime: gates, arming, per-round
state.  These drive :class:`FaultInjector` directly against a hand-built
channel, without a simulation loop, so each fault model's mechanics are
observable in isolation."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.faults.models import (
    ArrivalBurst,
    BabblingStation,
    BernoulliNoise,
    BusJam,
    ClockDrift,
    FaultPlan,
    GilbertElliottNoise,
    StationCrash,
)
from repro.faults.runtime import (
    BernoulliGate,
    FaultInjector,
    GilbertElliottGate,
)
from repro.model.workloads import uniform_problem
from repro.net.channel import BroadcastChannel
from repro.net.phy import ideal_medium
from repro.net.station import Station
from repro.protocols.tdma import TDMAProtocol
from repro.sim.engine import Environment


def _build_channel(z=3):
    """A channel with z attached TDMA stations (no arrivals loaded)."""
    problem = uniform_problem(
        z=z, length=1_000, deadline=400_000, a=1, w=200_000
    )
    env = Environment()
    channel = BroadcastChannel(env, ideal_medium(slot_time=64))
    roster = tuple(source.source_id for source in problem.sources)
    seq = itertools.count()
    stations = []
    for source in problem.sources:
        station = Station(
            station_id=source.source_id,
            mac=TDMAProtocol(roster),
            static_indices=source.static_indices,
            seq_source=seq,
        )
        channel.attach(station)
        stations.append(station)
    return channel, stations, problem


class TestGates:
    def test_bernoulli_matches_legacy_draw_order(self):
        """Same seed, same decisions as the historical inline gate —
        including NOT drawing on slots already carrying >= 2 frames."""
        gate = BernoulliGate(0.3, random.Random(7))
        reference = random.Random(7)
        outcomes = []
        for wire in [0, 1, 2, 1, 3, 0, 1]:
            got = gate(0, wire)
            if wire < 2:
                outcomes.append((got, reference.random() < 0.3))
            else:
                assert got is False  # and no draw consumed
        assert all(got == want for got, want in outcomes)

    def test_gilbert_elliott_inactive_before_start(self):
        rng = random.Random(1)
        gate = GilbertElliottGate(
            GilbertElliottNoise(
                p_enter_bad=1.0, p_exit_bad=0.0, bad_rate=1.0, start=100
            ),
            rng,
        )
        state = rng.getstate()
        assert gate(0, 1) is False
        assert rng.getstate() == state  # no draws consumed before start
        assert gate(100, 1) is True  # enters BAD, corrupts at rate 1

    def test_gilbert_elliott_degenerates_to_bernoulli(self):
        """Frozen in BAD with no transitions, the chain is memoryless."""
        model = GilbertElliottNoise(
            p_enter_bad=0.0, p_exit_bad=0.0, bad_rate=0.25, start_bad=True
        )
        gate = GilbertElliottGate(model, random.Random(3))
        reference = random.Random(3)
        for _ in range(200):
            got = gate(0, 1)
            reference.random()  # the transition draw
            assert got == (reference.random() < 0.25)

    def test_gilbert_elliott_chain_advances_on_busy_slots(self):
        """The weather does not care about the traffic: transitions are
        drawn even on slots with >= 2 frames (which are never corrupted)."""
        gate = GilbertElliottGate(
            GilbertElliottNoise(p_enter_bad=1.0, p_exit_bad=0.0, bad_rate=1.0),
            random.Random(0),
        )
        assert gate(0, 2) is False  # collision slot: transition only
        assert gate.bad is True  # ... but the chain entered BAD
        assert gate(1, 1) is True

    def test_bursts_cluster_relative_to_bernoulli(self):
        """Same long-run argument the model exists for: with matched
        average rate, GE errors arrive in visibly longer runs."""
        ge = GilbertElliottGate(
            GilbertElliottNoise(p_enter_bad=0.01, p_exit_bad=0.2, bad_rate=0.9),
            random.Random(5),
        )
        outcomes = [ge(i, 1) for i in range(20_000)]

        def longest_run(bits):
            best = run = 0
            for bit in bits:
                run = run + 1 if bit else 0
                best = max(best, run)
            return best

        rate = sum(outcomes) / len(outcomes)
        bernoulli = random.Random(5)
        reference = [bernoulli.random() < rate for _ in range(20_000)]
        assert longest_run(outcomes) > longest_run(reference)


class TestArming:
    def test_unknown_station_rejected(self):
        channel, _, _ = _build_channel()
        injector = FaultInjector(
            FaultPlan((StationCrash(station_id=99, at=10),))
        )
        with pytest.raises(ValueError, match="unknown station 99"):
            injector.arm(channel)

    def test_restart_requires_reset_mac(self):
        channel, _, _ = _build_channel()
        injector = FaultInjector(
            FaultPlan((StationCrash(station_id=0, at=10, restart_at=20),))
        )
        with pytest.raises(ValueError, match="reset_mac"):
            injector.arm(channel)

    def test_burst_requires_resolve_class(self):
        channel, _, _ = _build_channel()
        injector = FaultInjector(
            FaultPlan((ArrivalBurst(station_id=0, at=10, count=2),))
        )
        with pytest.raises(ValueError, match="resolve_class"):
            injector.arm(channel)

    def test_double_arm_rejected(self):
        channel, _, _ = _build_channel()
        injector = FaultInjector(FaultPlan((BusJam(start=0),)))
        injector.arm(channel)
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm(channel)

    def test_single_jam_only(self):
        channel, _, _ = _build_channel()
        injector = FaultInjector(
            FaultPlan((BusJam(start=0), BusJam(start=10)))
        )
        with pytest.raises(ValueError, match="more than one bus jam"):
            injector.arm(channel)

    def test_jam_sets_channel_window(self):
        channel, _, _ = _build_channel()
        FaultInjector(FaultPlan((BusJam(start=128, stop=256),))).arm(channel)
        assert channel.jam_from == 128
        assert channel.jam_until == 256

    def test_babbler_id_collision_rejected(self):
        channel, _, _ = _build_channel()
        injector = FaultInjector(
            FaultPlan((BabblingStation(start=0, stop=10, station_id=0),))
        )
        with pytest.raises(ValueError, match="collides"):
            injector.arm(channel)

    def test_babbler_ids_auto_assigned_negative_and_distinct(self):
        channel, _, _ = _build_channel()
        injector = FaultInjector(
            FaultPlan(
                (
                    BabblingStation(start=0, stop=10),
                    BabblingStation(start=0, stop=10),
                )
            )
        )
        injector.arm(channel)
        sids = [b.sid for b in injector._babblers]
        assert sids == sorted(sids, reverse=True)
        assert len(set(sids)) == 2
        assert all(sid < 0 for sid in sids)

    def test_burst_loads_pending_arrivals(self):
        channel, stations, problem = _build_channel()
        injector = FaultInjector(
            FaultPlan((ArrivalBurst(station_id=0, at=500, count=5),))
        )
        injector.arm(
            channel,
            resolve_class=lambda station, name: problem.sources[
                station.station_id
            ].message_classes[0],
        )
        assert stations[0].undelivered_arrivals == 5
        stations[0].deliver_due(500)
        assert len(stations[0].backlog()) == 5


class TestPerRound:
    def test_crash_and_restart_lifecycle(self):
        channel, stations, _ = _build_channel()
        resets = []
        injector = FaultInjector(
            FaultPlan((StationCrash(station_id=1, at=100, restart_at=300),))
        )
        injector.arm(channel, reset_mac=resets.append)
        injector.begin_round(0)
        assert injector.down == set()
        injector.begin_round(100)
        assert injector.down == {1}
        assert injector.desynced == {1}
        injector.begin_round(200)
        assert injector.down == {1}
        injector.begin_round(300)
        assert injector.down == set()
        assert injector.desynced == {1}  # desync outlives the restart
        assert resets == [stations[1]]

    def test_drift_suppression_cadence(self):
        channel, _, _ = _build_channel()
        injector = FaultInjector(
            FaultPlan(
                (ClockDrift(station_id=0, skew_per_slot=4.0, threshold=32.0),)
            )
        )
        injector.arm(channel)
        pattern = []
        for round_index in range(24):
            injector.begin_round(round_index * 64)
            pattern.append(0 in injector.suppressed)
        # skew 4/slot against threshold 32: every 8th round mis-times.
        assert pattern.count(True) == 3
        assert [i for i, hit in enumerate(pattern) if hit] == [7, 15, 23]

    def test_drift_window_respected(self):
        channel, _, _ = _build_channel()
        injector = FaultInjector(
            FaultPlan(
                (
                    ClockDrift(
                        station_id=0,
                        skew_per_slot=64.0,
                        threshold=32.0,
                        start=128,
                        stop=256,
                    ),
                )
            )
        )
        injector.arm(channel)
        injector.begin_round(0)
        assert not injector.suppressed  # before start: clock still true
        injector.begin_round(128)
        assert injector.suppressed == {0}
        injector.begin_round(256)
        assert not injector.suppressed  # window closed

    def test_babbler_fires_on_period_within_window(self):
        channel, _, _ = _build_channel()
        injector = FaultInjector(
            FaultPlan((BabblingStation(start=128, stop=512, period=2),))
        )
        injector.arm(channel)
        fired = []
        for now in range(0, 768, 64):
            injector.begin_round(now)
            fired.append(len(injector.extra))
        # Rounds at 128..448 are in-window; every 2nd fires.
        assert fired == [0, 0, 1, 0, 1, 0, 1, 0, 0, 0, 0, 0]

    def test_babble_frame_shape(self):
        channel, _, _ = _build_channel()
        injector = FaultInjector(
            FaultPlan((BabblingStation(start=0, stop=64, length=777),))
        )
        injector.arm(channel)
        injector.begin_round(0)
        (frame,) = injector.extra
        assert frame.station_id < 0
        assert frame.message.length == 777
        assert frame.message.seq == -1  # never touches the global counter
