"""Fault model and plan unit tests: validation, serialisation, presets.

The serialisation round-trip is also property-tested: a plan drawn from
arbitrary valid models must survive ``dumps -> loads`` unchanged, and its
canonical JSON must be deterministic (that string keys RunSpec content
hashes).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faults.models import (
    FAULT_KINDS,
    PLAN_PRESETS,
    ArrivalBurst,
    BabblingStation,
    BernoulliNoise,
    BusJam,
    ClockDrift,
    FaultPlan,
    GilbertElliottNoise,
    StationCrash,
    preset_plan,
)


class TestModelValidation:
    def test_bernoulli_rate_range(self):
        BernoulliNoise(rate=0.0)
        BernoulliNoise(rate=0.5)
        with pytest.raises(ValueError, match="rate"):
            BernoulliNoise(rate=1.0)
        with pytest.raises(ValueError, match="rate"):
            BernoulliNoise(rate=-0.1)

    def test_gilbert_elliott_probabilities(self):
        with pytest.raises(ValueError, match="p_enter_bad"):
            GilbertElliottNoise(p_enter_bad=1.5, p_exit_bad=0.1, bad_rate=0.5)
        with pytest.raises(ValueError, match="start"):
            GilbertElliottNoise(
                p_enter_bad=0.1, p_exit_bad=0.1, bad_rate=0.5, start=-1
            )

    def test_bus_jam_window(self):
        BusJam(start=0)
        BusJam(start=10, stop=20)
        with pytest.raises(ValueError, match="stop"):
            BusJam(start=10, stop=10)

    def test_crash_restart_ordering(self):
        StationCrash(station_id=0, at=5)
        with pytest.raises(ValueError, match="restart_at"):
            StationCrash(station_id=0, at=5, restart_at=5)
        with pytest.raises(ValueError, match="at"):
            StationCrash(station_id=0, at=-1)

    def test_babbler_window_and_period(self):
        with pytest.raises(ValueError, match="stop"):
            BabblingStation(start=5, stop=5)
        with pytest.raises(ValueError, match="period"):
            BabblingStation(start=0, stop=10, period=0)
        with pytest.raises(ValueError, match="length"):
            BabblingStation(start=0, stop=10, length=0)

    def test_drift_parameters(self):
        with pytest.raises(ValueError, match="skew_per_slot"):
            ClockDrift(station_id=0, skew_per_slot=0.0)
        with pytest.raises(ValueError, match="threshold"):
            ClockDrift(station_id=0, skew_per_slot=1.0, threshold=0.0)

    def test_burst_count(self):
        with pytest.raises(ValueError, match="count"):
            ArrivalBurst(station_id=0, at=0, count=0)


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan().is_empty
        assert FaultPlan((BusJam(start=0),))

    def test_rejects_non_models(self):
        with pytest.raises(TypeError, match="fault models"):
            FaultPlan(("not a fault",))

    def test_of_kind_filters(self):
        plan = FaultPlan(
            (BusJam(start=0), BernoulliNoise(rate=0.1), BusJam(start=9))
        )
        assert len(plan.of_kind(BusJam)) == 2
        assert len(plan.of_kind(BernoulliNoise)) == 1
        assert plan.of_kind(StationCrash) == ()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_dict({"faults": [{"kind": "meteor_strike"}]})

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError, match="missing required"):
            FaultPlan.from_dict({"faults": [{"kind": "station_crash"}]})
        with pytest.raises(ValueError, match="missing required key"):
            FaultPlan.from_dict({})

    def test_dump_load_file(self, tmp_path):
        plan = preset_plan("crash")
        path = tmp_path / "plan.json"
        plan.dump(path)
        assert FaultPlan.load(path) == plan
        # The file is plain JSON an operator can write by hand.
        payload = json.loads(path.read_text())
        assert payload["faults"][0]["kind"] == "station_crash"

    def test_presets_cover_every_kind_family(self):
        kinds = {
            event.kind
            for plan in PLAN_PRESETS.values()
            for event in plan.events
        }
        assert "station_crash" in kinds
        assert "gilbert_elliott" in kinds
        assert "babbler" in kinds
        assert "clock_drift" in kinds
        assert "arrival_burst" in kinds
        assert "bus_jam" in kinds

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown fault preset"):
            preset_plan("asteroid")


# -- property tests: serialisation round-trip -----------------------------

_times = st.integers(min_value=0, max_value=10**9)
_probs = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


def _windows():
    return st.tuples(_times, _times).map(
        lambda pair: (min(pair), max(pair) + 1)
    )


_bernoulli = st.builds(
    BernoulliNoise,
    rate=st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
)
_gilbert = st.builds(
    GilbertElliottNoise,
    p_enter_bad=_probs,
    p_exit_bad=_probs,
    bad_rate=_probs,
    good_rate=_probs,
    start=_times,
    start_bad=st.booleans(),
)
_jam = _windows().map(lambda w: BusJam(start=w[0], stop=w[1]))
_crash = st.tuples(
    st.integers(min_value=0, max_value=63), _windows(), st.booleans()
).map(
    lambda t: StationCrash(
        station_id=t[0],
        at=t[1][0],
        restart_at=t[1][1] if t[2] else None,
    )
)
_babbler = st.tuples(
    _windows(),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=10_000),
).map(
    lambda t: BabblingStation(
        start=t[0][0], stop=t[0][1], period=t[1], length=t[2]
    )
)
_drift = st.builds(
    ClockDrift,
    station_id=st.integers(min_value=0, max_value=63),
    skew_per_slot=st.floats(
        min_value=0.001, max_value=1000.0, allow_nan=False
    ),
    start=_times,
)
_burst = st.builds(
    ArrivalBurst,
    station_id=st.integers(min_value=0, max_value=63),
    at=_times,
    count=st.integers(min_value=1, max_value=10_000),
)

_any_fault = st.one_of(
    _bernoulli, _gilbert, _jam, _crash, _babbler, _drift, _burst
)
_plans = st.lists(_any_fault, max_size=8).map(
    lambda events: FaultPlan(tuple(events))
)


@given(_plans)
def test_plan_round_trips_through_json(plan):
    assert FaultPlan.loads(plan.dumps()) == plan
    assert FaultPlan.from_dict(plan.to_dict()) == plan


@given(_plans)
def test_canonical_dumps_is_deterministic(plan):
    """Equal plans serialise identically: the string can key content
    hashes."""
    assert plan.dumps() == FaultPlan.loads(plan.dumps()).dumps()


@given(_any_fault)
def test_kind_discriminator_is_registered(event):
    assert FAULT_KINDS[event.kind] is type(event)
    assert event.to_dict()["kind"] == event.kind
