"""Shared builders for protocol-level tests.

``run_network`` wires stations with explicit arrival traces onto an ideal
medium and runs the channel — compact enough that each test reads as a
scenario description.
"""

from __future__ import annotations

import pytest

from repro.model.arrival import TraceArrivals
from repro.model.message import DensityBound, MessageClass
from repro.net.channel import BroadcastChannel
from repro.net.phy import MediumProfile, ideal_medium
from repro.net.station import Station
from repro.sim.engine import Environment


def make_class(
    name: str = "c",
    length: int = 1000,
    deadline: int = 1_000_000,
    a: int = 1,
    w: int = 1_000_000,
) -> MessageClass:
    return MessageClass(
        name=name, length=length, deadline=deadline,
        bound=DensityBound(a=a, w=w),
    )


def run_network(
    macs: list,
    arrivals: dict[int, list[int]],
    horizon: int,
    medium: MediumProfile | None = None,
    msg_class: MessageClass | None = None,
    static_indices: dict[int, tuple[int, ...]] | None = None,
    check_consistency: bool = True,
):
    """Run stations 0..len(macs)-1 with the given arrival-time traces."""
    medium = medium if medium is not None else ideal_medium(slot_time=64)
    msg_class = msg_class if msg_class is not None else make_class()
    env = Environment()
    channel = BroadcastChannel(
        env, medium, check_consistency=check_consistency
    )
    stations = []
    for station_id, mac in enumerate(macs):
        indices = (
            static_indices[station_id]
            if static_indices is not None
            else (station_id,)
        )
        station = Station(
            station_id=station_id, mac=mac, static_indices=indices
        )
        trace = arrivals.get(station_id, [])
        if trace:
            station.load_arrivals(
                msg_class, TraceArrivals(trace=tuple(trace)), horizon
            )
        channel.attach(station)
        stations.append(station)
    env.process(channel.process(horizon))
    env.run(until=horizon)
    return channel, stations


@pytest.fixture
def ideal():
    return ideal_medium(slot_time=64)
