"""Tests for the local EDF queue (algorithm LA)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.message import DensityBound, MessageClass, MessageInstance
from repro.protocols.edf_queue import EDFQueue


def _msg(deadline: int, arrival: int = 0) -> MessageInstance:
    cls = MessageClass(
        name="c", length=64, deadline=deadline,
        bound=DensityBound(a=1, w=1000),
    )
    return MessageInstance.arrive(cls, arrival, source_id=0)


class TestEDFOrder:
    def test_peek_is_earliest_deadline(self):
        queue = EDFQueue()
        late = _msg(deadline=500)
        early = _msg(deadline=100)
        queue.push(late)
        queue.push(early)
        assert queue.peek() is early

    def test_pop_drains_in_edf_order(self):
        queue = EDFQueue()
        messages = [_msg(deadline=d) for d in (300, 100, 200)]
        for message in messages:
            queue.push(message)
        drained = [queue.pop() for _ in range(3)]
        deadlines = [m.absolute_deadline for m in drained]
        assert deadlines == sorted(deadlines)

    def test_fifo_on_deadline_ties(self):
        queue = EDFQueue()
        first = _msg(deadline=100)
        second = _msg(deadline=100)
        queue.push(second)
        queue.push(first)
        # Tie broken by sequence number (arrival order of creation).
        assert queue.pop() is first

    def test_arrival_reranks(self):
        queue = EDFQueue()
        queue.push(_msg(deadline=500))
        assert queue.peek().relative_deadline == 500
        urgent = _msg(deadline=50)
        queue.push(urgent)
        assert queue.peek() is urgent


class TestMutation:
    def test_empty_peek_is_none(self):
        assert EDFQueue().peek() is None

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EDFQueue().pop()

    def test_remove_specific(self):
        queue = EDFQueue()
        a, b = _msg(100), _msg(200)
        queue.push(a)
        queue.push(b)
        queue.remove(a)
        assert len(queue) == 1
        assert queue.peek() is b

    def test_double_remove_rejected(self):
        queue = EDFQueue()
        a = _msg(100)
        queue.push(a)
        queue.remove(a)
        with pytest.raises(KeyError):
            queue.remove(a)

    def test_len_and_bool(self):
        queue = EDFQueue()
        assert not queue and len(queue) == 0
        queue.push(_msg(100))
        assert queue and len(queue) == 1

    def test_snapshot_sorted(self):
        queue = EDFQueue()
        for d in (300, 100, 200):
            queue.push(_msg(deadline=d))
        snapshot = queue.snapshot()
        assert [m.absolute_deadline for m in snapshot] == [100, 200, 300]
        assert len(queue) == 3  # snapshot does not consume

    @given(st.lists(st.integers(1, 10_000), min_size=1, max_size=40))
    def test_heap_invariant_under_load(self, deadlines):
        queue = EDFQueue()
        for deadline in deadlines:
            queue.push(_msg(deadline=deadline))
        drained = []
        while queue:
            drained.append(queue.pop().absolute_deadline)
        assert drained == sorted(drained)
