"""Tests for the CSMA/DDCR protocol."""

from __future__ import annotations

import pytest

from repro.core.search_cost import simulate_search
from repro.protocols.base import ChannelState
from repro.protocols.ddcr.config import DDCRConfig
from repro.protocols.ddcr.indexing import raw_class, time_index
from repro.protocols.ddcr.protocol import DDCRMode, DDCRProtocol
from tests.protocols.conftest import make_class, run_network


def _config(**overrides) -> DDCRConfig:
    defaults = dict(
        time_f=16,
        time_m=2,
        class_width=100_000,
        static_q=8,
        static_m=2,
        alpha=0,
        theta_factor=1.0,
    )
    defaults.update(overrides)
    return DDCRConfig(**defaults)


def _macs(count: int, config: DDCRConfig | None = None) -> list[DDCRProtocol]:
    config = config if config is not None else _config()
    return [DDCRProtocol(config) for _ in range(count)]


class TestConfig:
    def test_horizon(self):
        assert _config().horizon == 1_600_000

    def test_theta(self):
        assert _config(theta_factor=0.5).theta == 50_000
        assert _config(theta_factor=0.0).theta == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            _config(time_f=12)
        with pytest.raises(ValueError):
            _config(static_q=6)
        with pytest.raises(ValueError):
            _config(class_width=0)
        with pytest.raises(ValueError):
            _config(alpha=-1)
        with pytest.raises(ValueError):
            _config(theta_factor=-1.0)

    def test_tree_parameters_bridge(self):
        trees = _config().tree_parameters()
        assert trees.time_f == 16 and trees.static_q == 8


class TestIndexing:
    def test_raw_class_floor(self):
        config = _config()
        assert raw_class(0, 250_000, config) == 2
        assert raw_class(0, 50_000, config) == 0

    def test_negative_raw_class_for_late_messages(self):
        config = _config(alpha=50_000)
        assert raw_class(100_000, 40_000, config) < 0

    def test_clamped_to_frontier(self):
        config = _config()
        assert time_index(0, 250_000, config, frontier=0) == 2
        assert time_index(0, 250_000, config, frontier=5) == 5

    def test_beyond_horizon_is_none(self):
        config = _config()
        beyond = config.horizon + config.class_width
        assert time_index(0, beyond, config, frontier=0) is None

    def test_frontier_can_push_beyond_horizon(self):
        config = _config()
        assert time_index(0, 100, config, frontier=16) is None


class TestSingleStation:
    def test_free_mode_transmits_immediately(self):
        macs = _macs(1)
        channel, stations = run_network(macs, {0: [0, 5_000]}, horizon=500_000)
        assert len(stations[0].completions) == 2
        assert channel.stats.collision_slots == 0
        assert macs[0].mode is DDCRMode.FREE

    def test_no_arrivals_stays_free_and_silent(self):
        macs = _macs(1)
        channel, _ = run_network(macs, {}, horizon=100_000)
        assert channel.stats.successes == 0
        assert macs[0].mode is DDCRMode.FREE


class TestCollisionEntry:
    def test_collision_starts_tts(self):
        macs = _macs(2)
        channel, stations = run_network(
            macs, {0: [0], 1: [0]}, horizon=2_000_000
        )
        assert channel.stats.collision_slots >= 1
        assert sum(len(s.completions) for s in stations) == 2
        assert len(macs[0].tts_records) >= 1
        first = macs[0].tts_records[0]
        assert first.triggered_by_collision
        assert first.out

    def test_reft_set_at_entry(self):
        macs = _macs(2)
        run_network(macs, {0: [0], 1: [0]}, horizon=2_000_000)
        assert macs[0].reft > 0

    def test_same_class_collision_resolved_by_sts(self):
        # Same deadline => same equivalence class => time-leaf collision.
        macs = _macs(2)
        channel, stations = run_network(
            macs, {0: [0], 1: [0]}, horizon=2_000_000
        )
        assert len(macs[0].sts_records) == 1
        record = macs[0].sts_records[0]
        assert record.successes == 2

    def test_different_classes_resolved_in_time_tree(self):
        # Deadlines two classes apart: TTs isolates without any STs.
        config = _config()
        macs = _macs(2, config)
        cls_near = make_class(name="near", deadline=150_000)
        cls_far = make_class(name="far", deadline=550_000)
        from repro.model.arrival import TraceArrivals
        from repro.net.channel import BroadcastChannel
        from repro.net.phy import ideal_medium
        from repro.net.station import Station
        from repro.sim.engine import Environment

        env = Environment()
        channel = BroadcastChannel(
            env, ideal_medium(slot_time=64), check_consistency=True
        )
        stations = []
        for sid, (mac, cls) in enumerate(
            zip(macs, (cls_near, cls_far))
        ):
            station = Station(station_id=sid, mac=mac, static_indices=(sid,))
            station.load_arrivals(cls, TraceArrivals(trace=(0,)), 2_000_000)
            channel.attach(station)
            stations.append(station)
        env.process(channel.process(2_000_000))
        env.run(until=2_000_000)
        assert sum(len(s.completions) for s in stations) == 2
        assert macs[0].sts_records == []
        # Near-deadline message must be transmitted first (EDF emulation).
        all_completions = sorted(
            (r.completion, r.message.msg_class.name)
            for s in stations
            for r in s.completions
        )
        assert all_completions[0][1] == "near"


class TestStaticTreeSearch:
    def test_sts_cost_matches_reference(self):
        # Three stations with known static indices all in one class.
        macs = _macs(3)
        indices = {0: (1,), 1: (4,), 2: (6,)}
        channel, stations = run_network(
            macs, {i: [0] for i in range(3)}, horizon=2_000_000,
            static_indices=indices,
        )
        record = macs[0].sts_records[0]
        assert record.successes == 3
        assert record.wasted_slots == simulate_search([1, 4, 6], 8, 2).cost

    def test_nu_messages_per_sts(self):
        # A station with two static indices clears two same-class messages
        # in a single static search.
        macs = _macs(2)
        indices = {0: (0, 4), 1: (2,)}
        channel, stations = run_network(
            macs, {0: [0, 0], 1: [0]}, horizon=2_000_000,
            static_indices=indices,
        )
        record = macs[0].sts_records[0]
        assert record.successes == 3
        assert len(stations[0].completions) == 2

    def test_exhausted_indices_wait_for_next_round(self):
        # Station 0 has one index but two same-class messages: the second
        # cannot ride the same STs and is delivered afterwards.
        macs = _macs(2)
        indices = {0: (0,), 1: (2,)}
        channel, stations = run_network(
            macs, {0: [0, 0], 1: [0]}, horizon=4_000_000,
            static_indices=indices,
        )
        assert len(stations[0].completions) == 2
        first_sts = macs[0].sts_records[0]
        assert first_sts.successes == 2  # one per station


class TestCompressedTime:
    def test_theta_zero_starves_beyond_horizon(self):
        # Deadlines beyond c*F and theta = 0: after the entry collision the
        # protocol loops empty TTs forever and never delivers.
        config = _config(theta_factor=0.0)
        macs = _macs(2, config)
        cls = make_class(deadline=3_000_000)  # horizon is 1.6e6
        channel, stations = run_network(
            macs, {0: [0], 1: [0]}, horizon=3_000_000, msg_class=cls
        )
        assert sum(len(s.completions) for s in stations) == 0
        assert macs[0].mode is DDCRMode.TTS

    def test_theta_positive_pulls_messages_in(self):
        config = _config(theta_factor=1.0)
        macs = _macs(2, config)
        cls = make_class(deadline=3_000_000)
        channel, stations = run_network(
            macs, {0: [0], 1: [0]}, horizon=3_000_000, msg_class=cls
        )
        assert sum(len(s.completions) for s in stations) == 2

    def test_exit_to_free_restores_csma_cd(self):
        config = _config(theta_factor=0.0, exit_to_free_on_idle=True)
        macs = _macs(2, config)
        cls = make_class(deadline=3_000_000)
        channel, stations = run_network(
            macs, {0: [0], 1: [0]}, horizon=3_000_000, msg_class=cls
        )
        assert sum(len(s.completions) for s in stations) == 2

    def test_empty_tts_runs_counted(self):
        macs = _macs(2)
        channel, _ = run_network(macs, {0: [0], 1: [0]}, horizon=2_000_000)
        assert macs[0].empty_tts_runs > 0, (
            "idle periods must produce empty TTs runs"
        )
        # Stored records are the non-trivial ones only.
        for record in macs[0].tts_records:
            assert (
                record.successes
                or record.nested_sts_runs
                or record.triggered_by_collision
                or record.wasted_slots > 1
            )


class TestLateArrivals:
    def test_late_message_clamped_to_frontier(self):
        # A message arriving mid-search with an already-passed class is
        # serviced in the same TTs via the f*+1 clamp.
        config = _config(class_width=10_000)  # horizon 160k
        macs = _macs(3, config)
        cls = make_class(deadline=20_000)
        channel, stations = run_network(
            macs, {0: [0], 1: [0], 2: [900]}, horizon=1_000_000,
            msg_class=cls,
        )
        assert sum(len(s.completions) for s in stations) == 3
        for station in stations:
            for record in station.completions:
                assert record.on_time


class TestLockstep:
    def test_public_state_consistency_under_load(self):
        # run_network asserts slot-by-slot consistency internally.
        macs = _macs(4)
        run_network(
            macs,
            {i: [0, 40_000, 80_000] for i in range(4)},
            horizon=4_000_000,
        )
        states = {mac.mode for mac in macs}
        assert len(states) == 1

    def test_reft_agrees_across_stations(self):
        macs = _macs(3)
        run_network(macs, {i: [0, 30_000] for i in range(3)}, horizon=2_000_000)
        assert len({mac.reft for mac in macs}) == 1


class TestEDFEmulation:
    def test_no_inversions_in_feasible_run(self):
        from repro.analysis.metrics import count_inversions
        from repro.net.network import RunResult
        from repro.sim.trace import TraceLog

        macs = _macs(4)
        channel, stations = run_network(
            macs, {i: [0, 50_000] for i in range(4)}, horizon=4_000_000
        )
        result = RunResult(
            horizon=4_000_000,
            stations=stations,
            stats=channel.stats,
            trace=TraceLog(enabled=False),
        )
        assert count_inversions(result) == 0
