"""Tests for the distributed splitting-search automaton.

The key property: fed with the slot outcomes of the *reference* search
semantics (:func:`repro.core.search_cost.simulate_search`), the automaton
reproduces the identical probe sequence, cost accounting and frontier — the
protocol and the analysis are two views of the same object.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.search_cost import simulate_search
from repro.core.trees import BalancedTree, LeafInterval
from repro.protocols.base import ChannelState
from repro.protocols.treesearch import SplittingSearch

_STATE = {
    0: ChannelState.SILENCE,
    1: ChannelState.SUCCESS,
    2: ChannelState.COLLISION,
}


def _drive(search: SplittingSearch, active: set[int]) -> list[str]:
    """Run the automaton against a fixed active set; return slot states."""
    slots = []
    while not search.done:
        node = search.current
        count = sum(1 for leaf in active if leaf in node)
        if count >= 2 and node.is_leaf():
            raise AssertionError("leaf collision needs the nested path")
        state = _STATE[min(count, 2)]
        search.feed(state)
        slots.append(state.value)
    return slots


class TestAgainstReference:
    @pytest.mark.parametrize("m,t", [(2, 8), (2, 16), (3, 9), (4, 16)])
    def test_matches_simulate_search(self, m, t):
        tree = BalancedTree.of(m=m, leaves=t)
        for k in range(0, min(t, 5) + 1):
            for active in itertools.combinations(range(t), k):
                reference = simulate_search(active, t, m)
                search = SplittingSearch.fresh(tree)
                slots = _drive(search, set(active))
                assert slots == list(reference.slots), (active,)
                assert search.wasted_slots == reference.cost
                assert search.successes == k

    @given(st.data())
    def test_matches_reference_random(self, data):
        m, t = data.draw(st.sampled_from([(2, 32), (4, 64)]))
        k = data.draw(st.integers(0, 10))
        active = set(
            data.draw(
                st.lists(
                    st.integers(0, t - 1), min_size=k, max_size=k, unique=True
                )
            )
        )
        tree = BalancedTree.of(m=m, leaves=t)
        search = SplittingSearch.fresh(tree)
        _drive(search, active)
        assert search.wasted_slots == simulate_search(active, t, m).cost


class TestFrontier:
    def test_frontier_advances_left_to_right(self):
        tree = BalancedTree.of(m=2, leaves=8)
        search = SplittingSearch.fresh(tree)
        frontiers = [search.frontier]
        while not search.done:
            node = search.current
            active = {1, 6}
            count = sum(1 for leaf in active if leaf in node)
            search.feed(_STATE[min(count, 2)])
            frontiers.append(search.frontier)
        assert frontiers == sorted(frontiers)
        assert frontiers[-1] == 8

    def test_agenda_covers_frontier_to_end(self):
        tree = BalancedTree.of(m=2, leaves=16)
        search = SplittingSearch.fresh(tree)
        active = {3, 9, 12}
        while not search.done:
            # DFS contiguity: agenda intervals tile [frontier, leaves).
            covered = sorted(
                (node.lo, node.hi) for node in search.agenda
            )
            assert covered[0][0] == search.frontier
            assert covered[-1][1] == 16
            for (_, hi), (lo, _) in zip(covered, covered[1:]):
                assert hi == lo
            node = search.current
            count = sum(1 for leaf in active if leaf in node)
            search.feed(_STATE[min(count, 2)])


class TestAfterRootCollision:
    def test_starts_with_children(self):
        tree = BalancedTree.of(m=4, leaves=16)
        search = SplittingSearch.after_root_collision(tree)
        assert len(search.agenda) == 4
        assert search.current == LeafInterval(0, 4)

    def test_empty_run_costs_m_slots(self):
        # "m consecutive empty slots" — the paper's empty-TTs signature.
        tree = BalancedTree.of(m=4, leaves=16)
        search = SplittingSearch.after_root_collision(tree)
        _drive(search, set())
        assert search.wasted_slots == 4


class TestLeafResolution:
    def test_begin_and_complete(self):
        tree = BalancedTree.of(m=2, leaves=4)
        search = SplittingSearch.after_root_collision(tree)
        search.feed(ChannelState.COLLISION)  # [0,2) splits
        leaf = search.begin_leaf_resolution()
        assert leaf == LeafInterval(0, 1)
        assert search.frontier == 0  # not yet searched
        search.complete_leaf(leaf)
        assert search.frontier == 1

    def test_begin_on_internal_node_rejected(self):
        tree = BalancedTree.of(m=2, leaves=4)
        search = SplittingSearch.after_root_collision(tree)
        with pytest.raises(RuntimeError):
            search.begin_leaf_resolution()

    def test_leaf_collision_via_feed_rejected(self):
        tree = BalancedTree.of(m=2, leaves=4)
        search = SplittingSearch.after_root_collision(tree)
        search.feed(ChannelState.COLLISION)
        with pytest.raises(RuntimeError):
            search.feed(ChannelState.COLLISION)

    def test_complete_behind_frontier_rejected(self):
        tree = BalancedTree.of(m=2, leaves=4)
        search = SplittingSearch.fresh(tree)
        search.feed(ChannelState.SILENCE)  # whole tree silent, frontier = 4
        with pytest.raises(RuntimeError):
            search.complete_leaf(LeafInterval(0, 1))


class TestStateKey:
    def test_identical_runs_identical_keys(self):
        tree = BalancedTree.of(m=2, leaves=8)
        a = SplittingSearch.fresh(tree)
        b = SplittingSearch.fresh(tree)
        for state in (ChannelState.COLLISION, ChannelState.SILENCE):
            a.feed(state)
            b.feed(state)
            assert a.state_key() == b.state_key()

    def test_diverging_feedback_diverges_keys(self):
        tree = BalancedTree.of(m=2, leaves=8)
        a = SplittingSearch.fresh(tree)
        b = SplittingSearch.fresh(tree)
        a.feed(ChannelState.COLLISION)
        b.feed(ChannelState.SILENCE)
        assert a.state_key() != b.state_key()

    def test_done_guard(self):
        tree = BalancedTree.of(m=2, leaves=2)
        search = SplittingSearch.fresh(tree)
        search.feed(ChannelState.SILENCE)
        assert search.done
        with pytest.raises(RuntimeError):
            _ = search.current
