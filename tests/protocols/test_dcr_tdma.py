"""Tests for the CSMA/DCR and TDMA baselines."""

from __future__ import annotations

import pytest

from repro.core.search_cost import simulate_search, xi_exact
from repro.core.trees import BalancedTree
from repro.protocols.dcr import DCRMode, DCRProtocol
from repro.protocols.tdma import TDMAProtocol
from tests.protocols.conftest import run_network


def _dcr_macs(count: int, m: int = 2, leaves: int = 8) -> list[DCRProtocol]:
    tree = BalancedTree.of(m=m, leaves=leaves)
    return [DCRProtocol(tree) for _ in range(count)]


class TestDCR:
    def test_single_station_stays_free(self):
        macs = _dcr_macs(1)
        channel, stations = run_network(macs, {0: [0, 2000]}, horizon=100_000)
        assert len(stations[0].completions) == 2
        assert macs[0].mode is DCRMode.FREE
        assert macs[0].searches_completed == 0

    def test_collision_triggers_search_and_resolves(self):
        macs = _dcr_macs(3)
        channel, stations = run_network(
            macs, {i: [0] for i in range(3)}, horizon=1_000_000
        )
        delivered = sum(len(s.completions) for s in stations)
        assert delivered == 3
        assert macs[0].searches_completed >= 1
        assert macs[0].mode is DCRMode.FREE  # returned to free mode

    def test_search_cost_matches_reference(self):
        # Stations at static indices 1, 4, 6 on an 8-leaf binary tree.
        macs = _dcr_macs(3)
        indices = {0: (1,), 1: (4,), 2: (6,)}
        channel, stations = run_network(
            macs, {i: [0] for i in range(3)}, horizon=1_000_000,
            static_indices=indices,
        )
        expected = simulate_search([1, 4, 6], 8, 2).cost
        assert macs[0].search_slot_costs == [expected]

    def test_search_cost_never_exceeds_xi(self):
        macs = _dcr_macs(4)
        channel, stations = run_network(
            macs, {i: [0, 10_000] for i in range(4)}, horizon=4_000_000
        )
        bound = xi_exact(4, 8, 2)
        for cost in macs[0].search_slot_costs:
            assert cost <= bound

    def test_multiple_messages_per_search_via_index_ranks(self):
        # One station with two static indices can send twice per search.
        tree = BalancedTree.of(m=2, leaves=8)
        macs = [DCRProtocol(tree), DCRProtocol(tree)]
        indices = {0: (0, 4), 1: (2,)}
        channel, stations = run_network(
            macs, {0: [0, 0], 1: [0]}, horizon=1_000_000,
            static_indices=indices,
        )
        assert len(stations[0].completions) == 2
        assert len(stations[1].completions) == 1

    def test_index_out_of_tree_rejected(self):
        tree = BalancedTree.of(m=2, leaves=4)
        with pytest.raises(ValueError):
            run_network(
                [DCRProtocol(tree)], {0: [0]}, horizon=1000,
                static_indices={0: (7,)},
            )

    def test_lockstep_public_state(self):
        # check_consistency=True in run_network already asserts this
        # slot-by-slot; reaching the end means the replicas agreed.
        macs = _dcr_macs(4)
        run_network(macs, {i: [0, 5000] for i in range(4)}, horizon=500_000)
        assert all(mac.mode is DCRMode.FREE for mac in macs)


class TestTDMA:
    def test_round_robin_no_collisions(self):
        roster = (0, 1, 2)
        macs = [TDMAProtocol(roster) for _ in range(3)]
        channel, stations = run_network(
            macs, {i: [0] for i in range(3)}, horizon=200_000
        )
        assert channel.stats.collision_slots == 0
        assert sum(len(s.completions) for s in stations) == 3

    def test_owner_rotates_even_when_idle(self):
        roster = (0, 1)
        macs = [TDMAProtocol(roster) for _ in range(2)]
        channel, stations = run_network(
            macs, {1: [0]}, horizon=100_000
        )
        # Station 1 still gets service despite station 0 owning slot 0.
        assert len(stations[1].completions) == 1

    def test_unknown_station_rejected(self):
        with pytest.raises(ValueError):
            run_network([TDMAProtocol((5,))], {0: [0]}, horizon=1000)

    def test_noise_collision_tolerated(self):
        # A collision on a TDMA channel can only be noise; the owner
        # simply retries on a later turn.
        from repro.protocols.base import ChannelState, SlotObservation
        from repro.net.station import Station

        mac = TDMAProtocol((0,))
        Station(0, mac)
        mac.observe(
            SlotObservation(
                state=ChannelState.COLLISION, start=0, duration=64
            )
        )
        assert mac.noisy_slots == 1

    def test_roster_validation(self):
        with pytest.raises(ValueError):
            TDMAProtocol(())
        with pytest.raises(ValueError):
            TDMAProtocol((1, 1))

    def test_latency_scales_with_roster_size(self):
        def worst_latency(z: int) -> int:
            roster = tuple(range(z))
            macs = [TDMAProtocol(roster) for _ in range(z)]
            channel, stations = run_network(
                macs, {z - 1: [0]}, horizon=2_000_000
            )
            return stations[z - 1].completions[0].latency

        assert worst_latency(8) > worst_latency(2)
