"""Tests for the CSMA-CD/BEB baseline."""

from __future__ import annotations

from repro.protocols.csma_cd import CSMACDProtocol
from tests.protocols.conftest import make_class, run_network


class TestSingleStation:
    def test_transmits_without_contention(self):
        mac = CSMACDProtocol(seed=0)
        channel, stations = run_network(
            [mac], {0: [0, 1000, 2000]}, horizon=100_000,
            check_consistency=False,
        )
        assert len(stations[0].completions) == 3
        assert channel.stats.collision_slots == 0
        assert all(r.on_time for r in stations[0].completions)

    def test_idle_channel_is_silent(self):
        channel, _ = run_network(
            [CSMACDProtocol()], {}, horizon=10_000, check_consistency=False
        )
        assert channel.stats.successes == 0
        assert channel.stats.silence_slots > 0


class TestContention:
    def test_two_stations_eventually_resolve(self):
        macs = [CSMACDProtocol(seed=i) for i in range(2)]
        channel, stations = run_network(
            macs, {0: [0], 1: [0]}, horizon=400_000, check_consistency=False
        )
        assert channel.stats.collision_slots >= 1
        delivered = sum(len(s.completions) for s in stations)
        assert delivered == 2

    def test_many_stations_burst(self):
        macs = [CSMACDProtocol(seed=i) for i in range(6)]
        channel, stations = run_network(
            macs, {i: [0] for i in range(6)}, horizon=2_000_000,
            check_consistency=False,
        )
        delivered = sum(
            1
            for s in stations
            for r in s.completions
            if not r.dropped
        )
        assert delivered == 6

    def test_deterministic_given_seeds(self):
        def once():
            macs = [CSMACDProtocol(seed=i) for i in range(4)]
            channel, stations = run_network(
                macs, {i: [0] for i in range(4)}, horizon=1_000_000,
                check_consistency=False,
            )
            return [
                (r.message.seq, r.completion)
                for s in stations
                for r in s.completions
            ]

        first = [c for _, c in once()]
        second = [c for _, c in once()]
        assert first == second

    def test_backoff_state_resets_after_success(self):
        mac = CSMACDProtocol(seed=1)
        run_network(
            [mac, CSMACDProtocol(seed=2)], {0: [0, 500], 1: [0]},
            horizon=2_000_000, check_consistency=False,
        )
        assert mac._attempts == 0


class TestDrops:
    def test_excessive_collisions_drop(self):
        # Force perpetual collisions: two stations whose RNGs are the same
        # seed pick identical backoffs forever.
        macs = [CSMACDProtocol(seed=5), CSMACDProtocol(seed=5)]
        channel, stations = run_network(
            macs, {0: [0], 1: [0]}, horizon=50_000_000,
            check_consistency=False,
        )
        drops = sum(
            1 for s in stations for r in s.completions if r.dropped
        )
        # With identical backoff streams both frames hit 16 attempts.
        assert drops == 2
        assert channel.stats.successes == 0
