"""Tests for the DDCR extensions: XOR bus, packet bursting, noise."""

from __future__ import annotations

import pytest

from repro.analysis.adversary import build_static_collision_scenario
from repro.analysis.metrics import summarize
from repro.core.search_cost import (
    worst_case_placement,
    xi_exact,
    xi_nondestructive,
)
from repro.model.workloads import uniform_problem
from repro.net.network import NetworkSimulation
from repro.net.phy import ideal_medium
from repro.protocols.ddcr import DDCRConfig, DDCRProtocol
from tests.protocols.conftest import make_class, run_network


def _config(**overrides) -> DDCRConfig:
    defaults = dict(
        time_f=16,
        time_m=2,
        class_width=100_000,
        static_q=8,
        static_m=2,
        alpha=0,
        theta_factor=1.0,
    )
    defaults.update(overrides)
    return DDCRConfig(**defaults)


class TestNonDestructiveBus:
    @pytest.mark.parametrize("k,q,m", [(2, 16, 2), (5, 16, 2), (4, 16, 4)])
    def test_sts_cost_equals_xi_nd(self, k, q, m):
        placement = worst_case_placement(k, q, m, skip_empty=True)
        scenario = build_static_collision_scenario(
            placement, q, m, nondestructive=True
        )
        result = scenario.run()
        record = result.stations[0].mac.sts_records[0]
        assert record.wasted_slots == xi_nondestructive(k, q, m)
        assert record.successes == k

    def test_nd_cheaper_than_destructive(self):
        placement = worst_case_placement(4, 16, 2)
        destructive = build_static_collision_scenario(placement, 16, 2)
        nd_placement = worst_case_placement(4, 16, 2, skip_empty=True)
        nondestructive = build_static_collision_scenario(
            nd_placement, 16, 2, nondestructive=True
        )
        cost_d = destructive.run().stations[0].mac.sts_records[0].wasted_slots
        cost_nd = (
            nondestructive.run().stations[0].mac.sts_records[0].wasted_slots
        )
        assert cost_nd < cost_d
        assert cost_d == xi_exact(4, 16, 2)

    def test_lockstep_holds_on_xor_bus(self):
        # check_consistency is on inside the scenario builder; a clean run
        # of a larger ND scenario is the assertion.
        placement = worst_case_placement(8, 16, 2, skip_empty=True)
        scenario = build_static_collision_scenario(
            placement, 16, 2, nondestructive=True
        )
        result = scenario.run()
        assert sum(len(s.completions) for s in result.stations) == 8


class TestPacketBursting:
    def _run(self, burst_limit: int, arrivals=None):
        config = _config(burst_limit=burst_limit)
        macs = [DDCRProtocol(config) for _ in range(2)]
        cls = make_class(length=2_000, deadline=400_000)
        arrivals = arrivals if arrivals is not None else {0: [0, 0, 0], 1: [0]}
        return run_network(
            macs, arrivals, horizon=2_000_000, msg_class=cls
        )

    def test_burst_transmits_back_to_back(self):
        channel, stations = self._run(burst_limit=10_000)
        records = sorted(
            (r.started, r.completion)
            for r in stations[0].completions
        )
        assert len(records) == 3
        # Consecutive frames of the burst have no contention gap.
        assert records[1][0] == records[0][1]
        assert records[2][0] == records[1][1]

    def test_no_burst_without_budget(self):
        channel, stations = self._run(burst_limit=0)
        records = sorted(
            (r.started, r.completion) for r in stations[0].completions
        )
        assert len(records) == 3
        # Without bursting, contention separates consecutive frames.
        assert records[1][0] > records[0][1]

    def test_budget_caps_burst_length(self):
        # Budget fits exactly two 2000-bit messages (first counts too).
        channel, stations = self._run(burst_limit=4_000)
        records = sorted(
            (r.started, r.completion) for r in stations[0].completions
        )
        assert records[1][0] == records[0][1]   # second rides the burst
        assert records[2][0] > records[1][1]    # third does not fit

    def test_all_messages_delivered_either_way(self):
        for limit in (0, 4_000, 64_000):
            channel, stations = self._run(burst_limit=limit)
            assert sum(len(s.completions) for s in stations) == 4

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            _config(burst_limit=-1)


class TestPriorityField:
    def _run(self, use_map: bool):
        from repro.net.dot1q import DEFAULT_PRIORITY_MAP

        config = _config(
            class_width=50_000,
            priority_map=DEFAULT_PRIORITY_MAP if use_map else None,
        )
        macs = [DDCRProtocol(config) for _ in range(3)]
        cls = make_class(length=2_000, deadline=300_000)
        return run_network(
            macs, {i: [0, 100_000] for i in range(3)},
            horizon=3_000_000, msg_class=cls,
        )

    def test_guarantee_survives_quantisation(self):
        channel, stations = self._run(use_map=True)
        assert sum(len(s.completions) for s in stations) == 6
        assert all(r.on_time for s in stations for r in s.completions)

    def test_same_goodput_as_exact(self):
        _, exact = self._run(use_map=False)
        _, mapped = self._run(use_map=True)
        assert sum(len(s.completions) for s in exact) == sum(
            len(s.completions) for s in mapped
        )

    def test_mac_sees_representative_deadline(self):
        from repro.net.dot1q import DEFAULT_PRIORITY_MAP
        from repro.protocols.ddcr.indexing import mac_visible_deadline

        config = _config(priority_map=DEFAULT_PRIORITY_MAP)
        visible = mac_visible_deadline(1_000, 300_000, config)
        assert visible == 1_000 + DEFAULT_PRIORITY_MAP.quantise(300_000)
        exact_config = _config()
        assert mac_visible_deadline(1_000, 300_000, exact_config) == 301_000


class TestNoise:
    def _simulate(self, noise_rate: float, horizon=4_000_000):
        problem = uniform_problem(
            z=4, length=1_000, deadline=400_000, a=1, w=200_000
        )
        config = DDCRConfig(
            time_f=64,
            time_m=4,
            class_width=16_384,
            static_q=problem.static_q,
            static_m=problem.static_m,
            theta_factor=1.0,
        )
        simulation = NetworkSimulation(
            problem,
            ideal_medium(slot_time=64),
            protocol_factory=lambda s: DDCRProtocol(config),
            check_consistency=True,
            noise_rate=noise_rate,
            noise_seed=7,
        )
        return simulation.run(horizon)

    def test_noise_injected_and_counted(self):
        result = self._simulate(0.05)
        assert result.stats.corrupted_slots > 0

    def test_all_delivered_under_noise(self):
        clean = self._simulate(0.0)
        noisy = self._simulate(0.10)
        assert noisy.delivered == clean.delivered
        assert summarize(noisy).misses == 0

    def test_latency_degrades_gracefully(self):
        clean = summarize(self._simulate(0.0))
        noisy = summarize(self._simulate(0.20))
        assert noisy.max_latency >= clean.max_latency
        assert noisy.max_latency < 10 * clean.max_latency

    def test_deterministic_given_seed(self):
        a = [
            (r.started, r.completion)
            for r in self._simulate(0.10).completions
        ]
        b = [
            (r.started, r.completion)
            for r in self._simulate(0.10).completions
        ]
        assert a == b

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            self._simulate(1.0)
