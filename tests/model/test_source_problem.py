"""Tests for sources, static-index allocation and HRTDM instances."""

from __future__ import annotations

import pytest

from repro.model.message import DensityBound, MessageClass
from repro.model.problem import HRTDMProblem, ProblemValidationError
from repro.model.source import SourceSpec, allocate_static_indices


def _cls(name="c", length=100, deadline=1000, a=1, w=1000):
    return MessageClass(
        name=name, length=length, deadline=deadline,
        bound=DensityBound(a=a, w=w),
    )


class TestSourceSpec:
    def test_indices_are_ranked(self):
        source = SourceSpec(
            source_id=0, message_classes=(_cls(),), static_indices=(5, 1, 3)
        )
        assert source.static_indices == (1, 3, 5)
        assert source.nu == 3

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError):
            SourceSpec(
                source_id=0, message_classes=(_cls(),), static_indices=(1, 1)
            )

    def test_needs_at_least_one_index(self):
        with pytest.raises(ValueError):
            SourceSpec(source_id=0, message_classes=(_cls(),), static_indices=())

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(ValueError):
            SourceSpec(
                source_id=0,
                message_classes=(_cls("a"), _cls("a")),
                static_indices=(0,),
            )

    def test_utilization_sums_classes(self):
        source = SourceSpec(
            source_id=0,
            message_classes=(_cls("a", length=100, w=1000),
                             _cls("b", length=300, w=1000)),
            static_indices=(0,),
        )
        assert source.utilization == pytest.approx(0.4)

    def test_class_named(self):
        source = SourceSpec(
            source_id=0, message_classes=(_cls("a"),), static_indices=(0,)
        )
        assert source.class_named("a").name == "a"
        with pytest.raises(KeyError):
            source.class_named("b")


class TestAllocateStaticIndices:
    def test_spread_interleaves(self):
        allocations = allocate_static_indices([2, 2], q=4, spread=True)
        assert allocations == [(0, 2), (1, 3)]

    def test_block_is_contiguous(self):
        allocations = allocate_static_indices([2, 2], q=4, spread=False)
        assert allocations == [(0, 1), (2, 3)]

    def test_uneven_counts(self):
        allocations = allocate_static_indices([1, 3], q=8, spread=True)
        flattened = [i for alloc in allocations for i in alloc]
        assert sorted(flattened) == list(range(4))
        assert len(allocations[0]) == 1 and len(allocations[1]) == 3

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            allocate_static_indices([3, 3], q=4)

    def test_empty_and_invalid(self):
        with pytest.raises(ValueError):
            allocate_static_indices([], q=4)
        with pytest.raises(ValueError):
            allocate_static_indices([0], q=4)


class TestHRTDMProblem:
    def _sources(self, z=2, q=4):
        allocations = allocate_static_indices([1] * z, q)
        return tuple(
            SourceSpec(
                source_id=i,
                message_classes=(_cls(f"c{i}"),),
                static_indices=allocations[i],
            )
            for i in range(z)
        )

    def test_valid_instance(self):
        problem = HRTDMProblem(
            sources=self._sources(), static_q=4, static_m=2
        )
        assert problem.z == 2
        assert len(problem.all_classes()) == 2
        assert problem.total_utilization > 0

    def test_q_must_be_power(self):
        with pytest.raises(ProblemValidationError):
            HRTDMProblem(sources=self._sources(), static_q=6, static_m=2)

    def test_q_must_cover_sources(self):
        sources = self._sources(z=2, q=4)
        with pytest.raises(ProblemValidationError):
            HRTDMProblem(sources=sources * 3, static_q=4, static_m=2)

    def test_duplicate_ids_rejected(self):
        source = self._sources(z=1)[0]
        with pytest.raises(ProblemValidationError):
            HRTDMProblem(sources=(source, source), static_q=4, static_m=2)

    def test_index_out_of_tree_rejected(self):
        source = SourceSpec(
            source_id=0, message_classes=(_cls(),), static_indices=(4,)
        )
        with pytest.raises(ProblemValidationError):
            HRTDMProblem(sources=(source,), static_q=4, static_m=2)

    def test_index_clash_rejected(self):
        a = SourceSpec(
            source_id=0, message_classes=(_cls("a"),), static_indices=(0,)
        )
        b = SourceSpec(
            source_id=1, message_classes=(_cls("b"),), static_indices=(0,)
        )
        with pytest.raises(ProblemValidationError):
            HRTDMProblem(sources=(a, b), static_q=4, static_m=2)

    def test_source_by_id(self):
        problem = HRTDMProblem(sources=self._sources(), static_q=4)
        assert problem.source_by_id(1).source_id == 1
        with pytest.raises(KeyError):
            problem.source_by_id(9)

    def test_describe_mentions_every_class(self):
        problem = HRTDMProblem(sources=self._sources(), static_q=4)
        text = problem.describe()
        for cls in problem.all_classes():
            assert cls.name in text
