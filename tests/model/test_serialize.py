"""Tests for HRTDM instance serialisation."""

from __future__ import annotations

import json

import pytest

from repro.model.problem import ProblemValidationError
from repro.model.serialize import (
    dump_problem,
    load_problem,
    problem_from_dict,
    problem_to_dict,
)
from repro.model.workloads import (
    trading_floor_problem,
    uniform_problem,
    videoconference_problem,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: uniform_problem(z=4),
            lambda: videoconference_problem(participants=3),
            lambda: trading_floor_problem(desks=4),
        ],
        ids=["uniform", "videoconference", "trading"],
    )
    def test_dict_round_trip(self, factory):
        problem = factory()
        rebuilt = problem_from_dict(problem_to_dict(problem))
        assert rebuilt.z == problem.z
        assert rebuilt.static_q == problem.static_q
        assert rebuilt.static_m == problem.static_m
        for original, copy in zip(problem.sources, rebuilt.sources):
            assert copy.source_id == original.source_id
            assert copy.static_indices == original.static_indices
            assert [c.name for c in copy.message_classes] == [
                c.name for c in original.message_classes
            ]
            for a, b in zip(original.message_classes, copy.message_classes):
                assert (a.length, a.deadline, a.bound) == (
                    b.length,
                    b.deadline,
                    b.bound,
                )

    def test_file_round_trip(self, tmp_path):
        problem = uniform_problem(z=4)
        path = tmp_path / "instance.json"
        dump_problem(problem, str(path))
        rebuilt = load_problem(str(path))
        assert problem_to_dict(rebuilt) == problem_to_dict(problem)

    def test_json_is_stable_and_valid(self, tmp_path):
        path = tmp_path / "instance.json"
        dump_problem(uniform_problem(z=2), str(path))
        data = json.loads(path.read_text())
        assert set(data) == {"static_q", "static_m", "sources"}


class TestValidation:
    def test_missing_key_reports_path(self):
        with pytest.raises(ValueError, match="sources\\[0\\]"):
            problem_from_dict(
                {"static_q": 4, "sources": [{"source_id": 0}]}
            )

    def test_missing_top_level_key(self):
        with pytest.raises(ValueError, match="static_q"):
            problem_from_dict({"sources": []})

    def test_model_validation_still_applies(self):
        data = problem_to_dict(uniform_problem(z=2))
        data["static_q"] = 6  # not a power of 2
        with pytest.raises(ProblemValidationError):
            problem_from_dict(data)

    def test_default_static_m(self):
        data = problem_to_dict(uniform_problem(z=2))
        del data["static_m"]
        assert problem_from_dict(data).static_m == 2
