"""Tests for message classes, instances and density bounds."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.message import DensityBound, MessageClass, MessageInstance


class TestDensityBound:
    def test_density(self):
        bound = DensityBound(a=2, w=1000)
        assert bound.density == 0.002

    def test_validation(self):
        with pytest.raises(ValueError):
            DensityBound(a=0, w=10)
        with pytest.raises(ValueError):
            DensityBound(a=1, w=0)

    def test_admits_respecting_sequence(self):
        bound = DensityBound(a=2, w=100)
        assert bound.admits([0, 50, 100, 150, 200])

    def test_rejects_violating_sequence(self):
        bound = DensityBound(a=2, w=100)
        assert not bound.admits([0, 10, 20])

    def test_burst_at_exact_window_edge(self):
        bound = DensityBound(a=2, w=100)
        # Third arrival exactly w after the first: window is half-open.
        assert bound.admits([0, 0, 100, 100, 200, 200])
        assert not bound.admits([0, 0, 99])

    def test_admits_unsorted_input(self):
        bound = DensityBound(a=1, w=50)
        assert bound.admits([100, 0, 200])
        assert not bound.admits([100, 60, 0])

    @given(st.lists(st.integers(0, 10_000), max_size=30))
    def test_admits_is_permutation_invariant(self, times):
        bound = DensityBound(a=3, w=500)
        assert bound.admits(times) == bound.admits(sorted(times, reverse=True))


class TestMessageClass:
    def test_utilization(self):
        cls = MessageClass(
            name="v", length=1000, deadline=500,
            bound=DensityBound(a=1, w=10_000),
        )
        assert cls.utilization == pytest.approx(0.1)

    def test_validation(self):
        bound = DensityBound(a=1, w=10)
        with pytest.raises(ValueError):
            MessageClass(name="", length=10, deadline=10, bound=bound)
        with pytest.raises(ValueError):
            MessageClass(name="x", length=0, deadline=10, bound=bound)
        with pytest.raises(ValueError):
            MessageClass(name="x", length=10, deadline=0, bound=bound)


class TestMessageInstance:
    def _cls(self, deadline=100):
        return MessageClass(
            name="c", length=64, deadline=deadline,
            bound=DensityBound(a=1, w=1000),
        )

    def test_absolute_deadline(self):
        msg = MessageInstance.arrive(self._cls(deadline=100), 40, source_id=1)
        assert msg.absolute_deadline == 140
        assert msg.arrival == 40
        assert msg.relative_deadline == 100
        assert msg.length == 64

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            MessageInstance.arrive(self._cls(), -1, source_id=0)

    def test_edf_ordering(self):
        early = MessageInstance.arrive(self._cls(deadline=50), 0, 0)
        late = MessageInstance.arrive(self._cls(deadline=200), 0, 0)
        assert early < late

    def test_fifo_tiebreak(self):
        first = MessageInstance.arrive(self._cls(), 0, 0)
        second = MessageInstance.arrive(self._cls(), 0, 0)
        assert first < second  # same deadline: earlier sequence wins

    def test_lateness(self):
        msg = MessageInstance.arrive(self._cls(deadline=100), 0, 0)
        assert msg.lateness(90) == -10
        assert msg.lateness(120) == 20

    def test_unique_sequence_numbers(self):
        messages = [
            MessageInstance.arrive(self._cls(), 0, 0) for _ in range(10)
        ]
        assert len({m.seq for m in messages}) == 10
