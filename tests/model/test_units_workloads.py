"""Tests for unit conversions and the canned workloads."""

from __future__ import annotations

import pytest

from repro.core.feasibility import TreeParameters, check_feasibility
from repro.model.units import (
    GIGABIT_PER_SECOND,
    Throughput,
    bits_to_seconds,
    seconds_to_bits,
)
from repro.model.workloads import (
    air_traffic_control_problem,
    trading_floor_problem,
    uniform_problem,
    videoconference_problem,
)
from repro.net.phy import GIGABIT_ETHERNET


class TestUnits:
    def test_round_trip(self):
        throughput = Throughput(GIGABIT_PER_SECOND)
        assert seconds_to_bits(1e-6, throughput) == 1000
        assert bits_to_seconds(1000, throughput) == pytest.approx(1e-6)

    def test_transmission_bits_is_length(self):
        assert Throughput(GIGABIT_PER_SECOND).transmission_bits(512) == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            Throughput(0)
        with pytest.raises(ValueError):
            seconds_to_bits(-1.0, Throughput(GIGABIT_PER_SECOND))
        with pytest.raises(ValueError):
            Throughput(GIGABIT_PER_SECOND).transmission_bits(-1)


class TestWorkloads:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: uniform_problem(),
            lambda: videoconference_problem(),
            lambda: trading_floor_problem(),
            lambda: air_traffic_control_problem(),
        ],
        ids=["uniform", "videoconference", "trading", "atc"],
    )
    def test_builders_produce_valid_instances(self, factory):
        problem = factory()
        assert problem.z >= 1
        assert problem.total_utilization < 1.0
        assert len(problem.all_classes()) >= problem.z

    def test_scale_raises_density(self):
        light = uniform_problem(scale=1.0)
        heavy = uniform_problem(scale=4.0)
        assert heavy.total_utilization == pytest.approx(
            4 * light.total_utilization, rel=0.01
        )

    def test_default_workloads_feasible_on_gige(self):
        for factory in (
            lambda: uniform_problem(),
            lambda: videoconference_problem(participants=4, scale=0.5),
        ):
            problem = factory()
            trees = TreeParameters(
                time_f=64,
                time_m=4,
                static_q=problem.static_q,
                static_m=problem.static_m,
            )
            report = check_feasibility(problem, GIGABIT_ETHERNET, trees)
            assert report.feasible, report.worst

    def test_videoconference_has_three_classes_per_participant(self):
        problem = videoconference_problem(participants=3)
        assert len(problem.all_classes()) == 9

    def test_atc_mixes_radars_and_consoles(self):
        problem = air_traffic_control_problem(radars=2, consoles=3)
        assert problem.z == 5

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            videoconference_problem(participants=0)
        with pytest.raises(ValueError):
            trading_floor_problem(desks=0)
        with pytest.raises(ValueError):
            uniform_problem(z=0)
        with pytest.raises(ValueError):
            uniform_problem(scale=0)
