"""Tests for arrival processes, including the density-bound property."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.arrival import (
    GreedyBurstArrivals,
    JitteredPeriodicArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    SporadicArrivals,
    TraceArrivals,
    take_until,
)
from repro.model.message import DensityBound


class TestTakeUntil:
    def test_cuts_at_horizon(self):
        process = PeriodicArrivals(period=10)
        assert take_until(process, 35) == [0, 10, 20, 30]

    def test_zero_horizon(self):
        assert take_until(PeriodicArrivals(period=5), 0) == []

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            take_until(PeriodicArrivals(period=5), -1)


class TestPeriodic:
    def test_phase(self):
        assert take_until(PeriodicArrivals(period=10, phase=3), 25) == [3, 13, 23]

    def test_implied_bound_respected(self):
        process = PeriodicArrivals(period=100)
        times = take_until(process, 10_000)
        assert process.implied_bound().admits(times)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicArrivals(period=0)
        with pytest.raises(ValueError):
            PeriodicArrivals(period=10, phase=-1)


class TestSporadic:
    def test_min_gap_enforced(self):
        process = SporadicArrivals(min_interarrival=50, mean_slack=30, seed=1)
        times = take_until(process, 20_000)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap >= 50 for gap in gaps)

    def test_implied_bound_respected(self):
        process = SporadicArrivals(min_interarrival=40, mean_slack=10, seed=3)
        times = take_until(process, 10_000)
        assert process.implied_bound().admits(times)

    def test_deterministic_per_seed(self):
        a = take_until(SporadicArrivals(20, 5.0, seed=9), 5_000)
        b = take_until(SporadicArrivals(20, 5.0, seed=9), 5_000)
        assert a == b

    def test_zero_slack_is_periodic(self):
        times = take_until(SporadicArrivals(25, 0.0), 100)
        assert times == [0, 25, 50, 75]


class TestJitteredPeriodic:
    def test_nondecreasing(self):
        process = JitteredPeriodicArrivals(period=100, jitter=60, seed=5)
        times = take_until(process, 50_000)
        assert times == sorted(times)

    def test_implied_bound_respected(self):
        process = JitteredPeriodicArrivals(period=100, jitter=60, seed=5)
        times = take_until(process, 50_000)
        assert process.implied_bound().admits(times)

    def test_zero_jitter_bound_is_periodic(self):
        process = JitteredPeriodicArrivals(period=100, jitter=0)
        assert process.implied_bound() == DensityBound(a=1, w=100)

    def test_jitter_must_be_below_period(self):
        with pytest.raises(ValueError):
            JitteredPeriodicArrivals(period=100, jitter=100)


class TestPoisson:
    def test_no_implied_bound(self):
        assert PoissonArrivals(mean_interarrival=100.0).implied_bound() is None

    def test_strictly_increasing(self):
        times = take_until(PoissonArrivals(50.0, seed=2), 20_000)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_rate_roughly_matches(self):
        times = take_until(PoissonArrivals(100.0, seed=4), 1_000_000)
        assert 0.5 < len(times) / 10_000 < 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestGreedyBurst:
    def test_saturates_but_respects_bound(self):
        bound = DensityBound(a=3, w=1000)
        process = GreedyBurstArrivals(bound=bound)
        times = take_until(process, 50_000)
        assert bound.admits(times)
        # Saturation: exactly a arrivals per window.
        assert len(times) == 3 * 50

    def test_burst_spacing(self):
        bound = DensityBound(a=3, w=1000)
        process = GreedyBurstArrivals(bound=bound, burst_spacing=10)
        times = take_until(process, 1000)
        assert times == [0, 10, 20]
        assert bound.admits(take_until(process, 50_000))

    def test_spacing_cannot_spill_window(self):
        with pytest.raises(ValueError):
            GreedyBurstArrivals(
                bound=DensityBound(a=3, w=20), burst_spacing=10
            )

    @given(st.integers(1, 5), st.integers(100, 2000))
    def test_always_admissible(self, a, w):
        bound = DensityBound(a=a, w=w)
        process = GreedyBurstArrivals(bound=bound)
        assert bound.admits(take_until(process, 20 * w))


class TestTrace:
    def test_replay(self):
        assert take_until(TraceArrivals(trace=(1, 5, 9)), 100) == [1, 5, 9]

    def test_must_be_nondecreasing(self):
        with pytest.raises(ValueError):
            TraceArrivals(trace=(5, 3))

    def test_no_negative_times(self):
        with pytest.raises(ValueError):
            TraceArrivals(trace=(-1, 3))
