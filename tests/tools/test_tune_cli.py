"""Tests for the configuration tuner."""

from __future__ import annotations

import pytest

from repro.model.serialize import dump_problem
from repro.model.workloads import uniform_problem
from repro.net.phy import GIGABIT_ETHERNET
from repro.tools.tune import main, tune

_MS = 1_000_000


class TestTune:
    def test_outcomes_sorted_feasible_first(self):
        outcomes = tune(uniform_problem(z=4), GIGABIT_ETHERNET)
        feasibility = [outcome.feasible for outcome in outcomes]
        # Once we hit an infeasible outcome, no feasible one may follow.
        if False in feasibility:
            first_bad = feasibility.index(False)
            assert not any(feasibility[first_bad:])

    def test_best_has_max_slack_among_feasible(self):
        outcomes = tune(uniform_problem(z=4), GIGABIT_ETHERNET)
        feasible = [o for o in outcomes if o.feasible]
        assert feasible
        assert feasible[0].worst_slack == max(
            o.worst_slack for o in feasible
        )

    def test_horizon_covers_deadlines(self):
        problem = uniform_problem(z=4, deadline=10 * _MS)
        for outcome in tune(problem, GIGABIT_ETHERNET):
            if outcome.feasible:
                assert outcome.horizon >= 10 * _MS

    def test_infeasible_instance_has_no_feasible_candidates(self):
        problem = uniform_problem(
            z=8, length=500_000, deadline=1 * _MS, a=4, w=1 * _MS
        )
        outcomes = tune(problem, GIGABIT_ETHERNET)
        assert not any(outcome.feasible for outcome in outcomes)


class TestTuneCLI:
    @pytest.fixture
    def instance_path(self, tmp_path):
        path = tmp_path / "instance.json"
        dump_problem(uniform_problem(z=4), str(path))
        return str(path)

    def test_feasible_exit_zero(self, instance_path, capsys):
        assert main([instance_path]) == 0
        out = capsys.readouterr().out
        assert "recommended" in out

    def test_infeasible_exit_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        dump_problem(
            uniform_problem(
                z=8, length=500_000, deadline=1 * _MS, a=4, w=1 * _MS
            ),
            str(path),
        )
        assert main([str(path)]) == 2

    def test_missing_file_exit_one(self, capsys):
        assert main(["/nonexistent.json"]) == 1

    def test_top_limits_rows(self, instance_path, capsys):
        main([instance_path, "--top", "2"])
        out = capsys.readouterr().out
        table_rows = [
            line for line in out.splitlines() if line.strip().startswith(("16", "64", "256", "1024"))
        ]
        assert len(table_rows) == 2
