"""The manifest consumer CLI (python -m repro.tools.obs)."""

from __future__ import annotations

import pytest

from repro.obs.instruments import Telemetry
from repro.obs.manifest import RunTelemetry, write_manifests
from repro.tools.obs import main, snapshot_quantile


def make_manifest(
    run_id: str = "RUN",
    success: int = 100,
    latencies: tuple[int, ...] = (100, 200, 5_000),
    run_seconds: float = 2.0,
) -> RunTelemetry:
    telemetry = Telemetry()
    telemetry.counter("slots/success").inc(success)
    telemetry.counter("slots/silence").inc(10)
    telemetry.gauge("failovers").set(1)
    hist = telemetry.histogram("latency/a")
    for value in latencies:
        hist.record(value)
    with telemetry.span("run"):
        with telemetry.span("spec/execute"):
            pass
    doc = RunTelemetry.from_registry(
        telemetry, run_id=run_id, engine="fastloop", seed=3
    )
    # deterministic span timings for diff/ratio tests
    doc.spans[0]["seconds"] = run_seconds
    doc.spans[0]["children"][0]["seconds"] = run_seconds * 0.9
    return doc


class TestSnapshotQuantile:
    def test_matches_live_histogram(self):
        from repro.obs.instruments import Histogram

        hist = Histogram("h", edges=(10, 20, 30))
        for value in (1, 12, 25, 28, 40):
            hist.record(value)
        snap = hist.snapshot()
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert snapshot_quantile(snap, q) == hist.quantile(q)

    def test_empty_histogram(self):
        assert snapshot_quantile(
            {"edges": [10], "counts": [0, 0], "count": 0, "max": None}, 0.5
        ) is None


class TestSummarize:
    def test_renders_instruments_and_spans(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        write_manifests(path, [make_manifest()])
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run RUN" in out
        assert "engine=fastloop" in out
        assert "slots/success" in out
        assert "latency/a" in out
        assert "p50=" in out and "p99=" in out
        assert "spec/execute" in out
        assert "1 manifest(s)" in out

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["summarize", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_corrupt_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["summarize", str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err


class TestDiff:
    def test_identical_manifests_diff_clean(self, tmp_path, capsys):
        path = tmp_path / "a.jsonl"
        write_manifests(path, [make_manifest()])
        assert main(["diff", str(path), str(path)]) == 0
        out = capsys.readouterr().out
        assert "run RUN" in out
        assert "(x1.00)" in out  # span ratios are reported even when flat

    def test_counter_and_quantile_deltas(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        # p99 of 100 samples: the tail moving out two decades must show
        write_manifests(
            a, [make_manifest(success=100, latencies=(100,) * 100)]
        )
        write_manifests(
            b,
            [
                make_manifest(
                    success=90, latencies=(100,) * 90 + (400_000,) * 10
                )
            ],
        )
        assert main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "slots/success" in out and "(-10)" in out
        assert "latency/a" in out and "p99" in out

    def test_fail_over_trips_on_span_regression(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_manifests(a, [make_manifest(run_seconds=2.0)])
        write_manifests(b, [make_manifest(run_seconds=3.0)])  # +50%
        assert main(["diff", str(a), str(b), "--fail-over", "25"]) == 2
        err = capsys.readouterr().err
        assert "REGRESSION" in err
        assert "run" in err

    def test_fail_over_tolerates_small_drift(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_manifests(a, [make_manifest(run_seconds=2.0)])
        write_manifests(b, [make_manifest(run_seconds=2.2)])  # +10%
        assert main(["diff", str(a), str(b), "--fail-over", "25"]) == 0

    def test_min_seconds_ignores_noise_spans(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_manifests(a, [make_manifest(run_seconds=0.0001)])
        write_manifests(b, [make_manifest(run_seconds=0.01)])  # 100x, tiny
        assert main(["diff", str(a), str(b), "--fail-over", "25"]) == 0

    def test_runs_paired_by_run_id(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_manifests(
            a, [make_manifest("X"), make_manifest("ONLY-IN-A")]
        )
        write_manifests(b, [make_manifest("X", success=101)])
        assert main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "run X" in out
        assert "unmatched run ids: ONLY-IN-A" in out

    def test_no_common_runs_exits_one(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_manifests(a, [make_manifest("A")])
        write_manifests(b, [make_manifest("B")])
        assert main(["diff", str(a), str(b)]) == 1
        assert "no runs in common" in capsys.readouterr().err

    def test_usage_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])
