"""The manifest consumer CLI (python -m repro.tools.obs)."""

from __future__ import annotations

import pytest

import json

from repro.obs.instruments import Telemetry
from repro.obs.manifest import RunTelemetry, write_manifests
from repro.tools.obs import (
    main,
    render_delta_record,
    render_top,
    snapshot_quantile,
)


def make_manifest(
    run_id: str = "RUN",
    success: int = 100,
    latencies: tuple[int, ...] = (100, 200, 5_000),
    run_seconds: float = 2.0,
    engine_fallback: str | None = None,
) -> RunTelemetry:
    telemetry = Telemetry()
    telemetry.counter("slots/success").inc(success)
    telemetry.counter("slots/silence").inc(10)
    telemetry.gauge("failovers").set(1)
    hist = telemetry.histogram("latency/a")
    for value in latencies:
        hist.record(value)
    with telemetry.span("run"):
        with telemetry.span("spec/execute"):
            pass
    doc = RunTelemetry.from_registry(
        telemetry, run_id=run_id, engine="fastloop", seed=3,
        engine_fallback=engine_fallback,
    )
    # deterministic span timings for diff/ratio tests
    doc.spans[0]["seconds"] = run_seconds
    doc.spans[0]["children"][0]["seconds"] = run_seconds * 0.9
    return doc


class TestSnapshotQuantile:
    def test_matches_live_histogram(self):
        from repro.obs.instruments import Histogram

        hist = Histogram("h", edges=(10, 20, 30))
        for value in (1, 12, 25, 28, 40):
            hist.record(value)
        snap = hist.snapshot()
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert snapshot_quantile(snap, q) == hist.quantile(q)

    def test_empty_histogram(self):
        assert snapshot_quantile(
            {"edges": [10], "counts": [0, 0], "count": 0, "max": None}, 0.5
        ) is None

    def test_extremes_are_exact_min_max(self):
        snap = {"edges": [10], "counts": [2, 0], "count": 2,
                "min": 3, "max": 7}
        assert snapshot_quantile(snap, 0.0) == 3
        assert snapshot_quantile(snap, 1.0) == 7

    def test_out_of_range_raises(self):
        snap = {"edges": [10], "counts": [1, 0], "count": 1,
                "min": 1, "max": 1}
        for q in (-0.01, 1.01, float("nan")):
            with pytest.raises(ValueError, match="quantile"):
                snapshot_quantile(snap, q)


class TestSummarize:
    def test_renders_instruments_and_spans(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        write_manifests(path, [make_manifest()])
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run RUN" in out
        assert "engine=fastloop" in out
        assert "slots/success" in out
        assert "latency/a" in out
        assert "p50=" in out and "p99=" in out
        assert "spec/execute" in out
        assert "1 manifest(s)" in out

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["summarize", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_corrupt_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["summarize", str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err


class TestDiff:
    def test_identical_manifests_diff_clean(self, tmp_path, capsys):
        path = tmp_path / "a.jsonl"
        write_manifests(path, [make_manifest()])
        assert main(["diff", str(path), str(path)]) == 0
        out = capsys.readouterr().out
        assert "run RUN" in out
        assert "(x1.00)" in out  # span ratios are reported even when flat

    def test_counter_and_quantile_deltas(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        # p99 of 100 samples: the tail moving out two decades must show
        write_manifests(
            a, [make_manifest(success=100, latencies=(100,) * 100)]
        )
        write_manifests(
            b,
            [
                make_manifest(
                    success=90, latencies=(100,) * 90 + (400_000,) * 10
                )
            ],
        )
        assert main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "slots/success" in out and "(-10)" in out
        assert "latency/a" in out and "p99" in out

    def test_fail_over_trips_on_span_regression(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_manifests(a, [make_manifest(run_seconds=2.0)])
        write_manifests(b, [make_manifest(run_seconds=3.0)])  # +50%
        assert main(["diff", str(a), str(b), "--fail-over", "25"]) == 2
        err = capsys.readouterr().err
        assert "REGRESSION" in err
        assert "run" in err

    def test_fail_over_tolerates_small_drift(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_manifests(a, [make_manifest(run_seconds=2.0)])
        write_manifests(b, [make_manifest(run_seconds=2.2)])  # +10%
        assert main(["diff", str(a), str(b), "--fail-over", "25"]) == 0

    def test_min_seconds_ignores_noise_spans(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_manifests(a, [make_manifest(run_seconds=0.0001)])
        write_manifests(b, [make_manifest(run_seconds=0.01)])  # 100x, tiny
        assert main(["diff", str(a), str(b), "--fail-over", "25"]) == 0

    def test_runs_paired_by_run_id(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_manifests(
            a, [make_manifest("X"), make_manifest("ONLY-IN-A")]
        )
        write_manifests(b, [make_manifest("X", success=101)])
        assert main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "run X" in out
        assert "unmatched run ids: ONLY-IN-A" in out

    def test_no_common_runs_exits_one(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_manifests(a, [make_manifest("A")])
        write_manifests(b, [make_manifest("B")])
        assert main(["diff", str(a), str(b)]) == 1
        assert "no runs in common" in capsys.readouterr().err

    def test_usage_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestEngineFallback:
    def test_summarize_surfaces_fallback_note(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        write_manifests(
            path,
            [make_manifest(engine_fallback="numpy unavailable")],
        )
        assert main(["summarize", str(path)]) == 0
        assert "engine fallback: numpy unavailable" in capsys.readouterr().out

    def test_summarize_silent_without_fallback(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        write_manifests(path, [make_manifest()])
        assert main(["summarize", str(path)]) == 0
        assert "engine fallback" not in capsys.readouterr().out

    def test_diff_reports_fallback_change(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_manifests(a, [make_manifest()])
        write_manifests(
            b, [make_manifest(engine_fallback="numpy unavailable")]
        )
        assert main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "engine fallback: - -> numpy unavailable" in out

    def test_diff_silent_when_fallback_unchanged(self, tmp_path, capsys):
        path = tmp_path / "a.jsonl"
        write_manifests(
            path, [make_manifest(engine_fallback="numpy unavailable")]
        )
        assert main(["diff", str(path), str(path)]) == 0
        assert "engine fallback" not in capsys.readouterr().out


def _stream_record(tick: int = 3) -> dict:
    return {
        "tick": tick,
        "counters": {"serve/requests": [2, 10]},
        "gauges": {"cache/entries": 5.0},
        "histograms": {
            "serve/decision_latency_us": {
                "count": 10, "delta": 2, "p50": 128, "p99": 4096,
            },
        },
    }


class TestRenderDeltaRecord:
    def test_renders_all_sections(self):
        line = render_delta_record(_stream_record())
        assert line.startswith("tick 3")
        assert "serve/requests +2=10" in line
        assert "cache/entries=5" in line
        assert "serve/decision_latency_us n=10 (+2)" in line
        assert "p50=128" in line and "p99=4096" in line

    def test_idle_record_is_just_the_tick(self):
        assert render_delta_record({"tick": 9}) == "tick 9"


class TestRenderTop:
    def test_table_sorted_with_histogram_summary(self):
        metrics = {
            "repro_b_count_total": {"type": "counter", "value": 4.0},
            "repro_a_lat": {
                "type": "histogram", "count": 2.0, "sum": 10.0,
                "buckets": [("10", 2.0)],
            },
        }
        lines = render_top(metrics)
        assert lines[0].startswith("repro_a_lat")
        assert "n=2" in lines[0] and "mean=5" in lines[0]
        assert lines[1].startswith("repro_b_count_total")
        assert "counter" in lines[1] and lines[1].rstrip().endswith("4")


class TestTailCommand:
    def test_tail_renders_stream(self, tmp_path, capsys):
        stream = tmp_path / "metrics.jsonl"
        stream.write_text(
            "".join(
                json.dumps(_stream_record(tick)) + "\n" for tick in (1, 2)
            )
        )
        assert main(["tail", str(stream)]) == 0
        out = capsys.readouterr().out
        assert "tick 1" in out and "tick 2" in out
        assert "2 export record(s)" in out

    def test_tail_last_window(self, tmp_path, capsys):
        stream = tmp_path / "metrics.jsonl"
        stream.write_text(
            "".join(
                json.dumps({"tick": tick}) + "\n" for tick in range(5)
            )
        )
        assert main(["tail", str(stream), "--last", "2"]) == 0
        out = capsys.readouterr().out
        assert "tick 3" in out and "tick 4" in out
        assert "tick 2" not in out

    def test_tail_tolerates_truncated_final_line(self, tmp_path, capsys):
        stream = tmp_path / "metrics.jsonl"
        stream.write_text('{"tick":1}\n{"tick":2,"coun')
        assert main(["tail", str(stream)]) == 0
        out = capsys.readouterr().out
        assert "tick 1" in out
        assert "1 export record(s)" in out

    def test_tail_interior_corruption_exits_one(self, tmp_path, capsys):
        stream = tmp_path / "metrics.jsonl"
        stream.write_text('{"tick":1}\ngarbage\n{"tick":3}\n')
        assert main(["tail", str(stream)]) == 1
        assert "corrupt" in capsys.readouterr().err

    def test_tail_missing_stream_is_empty_not_fatal(self, tmp_path, capsys):
        assert main(["tail", str(tmp_path / "absent.jsonl")]) == 0
        assert "0 export record(s)" in capsys.readouterr().out


class TestTopCommand:
    def test_top_renders_prometheus_snapshot(self, tmp_path, capsys):
        from repro.obs.export import render_prometheus

        telemetry = Telemetry()
        telemetry.counter("serve/requests").inc(7)
        telemetry.histogram("serve/decision_latency_us", (64,)).record(10)
        prom = tmp_path / "metrics.prom"
        prom.write_text(render_prometheus(telemetry))
        assert main(["top", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "repro_serve_requests" in out
        assert "repro_serve_decision_latency_us" in out
        assert "2 metric(s)" in out

    def test_top_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "absent.prom")]) == 1
        assert "error" in capsys.readouterr().err
