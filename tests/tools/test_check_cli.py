"""Tests for the feasibility-check CLI."""

from __future__ import annotations

import pytest

from repro.model.serialize import dump_problem
from repro.model.workloads import uniform_problem
from repro.tools.check import main


@pytest.fixture
def instance_path(tmp_path):
    path = tmp_path / "instance.json"
    dump_problem(uniform_problem(z=4), str(path))
    return str(path)


@pytest.fixture
def infeasible_path(tmp_path):
    path = tmp_path / "bad.json"
    dump_problem(
        uniform_problem(
            z=8, length=500_000, deadline=1_000_000, a=4, w=1_000_000
        ),
        str(path),
    )
    return str(path)


class TestCheckCLI:
    def test_feasible_exit_zero(self, instance_path, capsys):
        assert main([instance_path]) == 0
        out = capsys.readouterr().out
        assert "FEASIBLE" in out
        assert "uniform-0" in out

    def test_infeasible_exit_two(self, infeasible_path, capsys):
        assert main([infeasible_path]) == 2
        assert "INFEASIBLE" in capsys.readouterr().out

    def test_missing_file_exit_one(self, capsys):
        assert main(["/nonexistent/instance.json"]) == 1
        assert "error" in capsys.readouterr().err

    def test_medium_selection(self, instance_path, capsys):
        assert main([instance_path, "--medium", "classic-ethernet"]) in (0, 2)
        assert "classic-ethernet" in capsys.readouterr().out

    def test_tree_overrides(self, instance_path, capsys):
        assert main([instance_path, "--time-f", "256", "--time-m", "4"]) == 0
        assert "F=256" in capsys.readouterr().out

    def test_simulation_spot_check(self, instance_path, capsys):
        assert main([instance_path, "--simulate", "10"]) == 0
        out = capsys.readouterr().out
        assert "misses=0" in out
