"""Tests for the feasibility-check CLI."""

from __future__ import annotations

import pytest

from repro.model.serialize import dump_problem
from repro.model.workloads import uniform_problem
from repro.tools.check import main


@pytest.fixture
def instance_path(tmp_path):
    path = tmp_path / "instance.json"
    dump_problem(uniform_problem(z=4), str(path))
    return str(path)


@pytest.fixture
def infeasible_path(tmp_path):
    path = tmp_path / "bad.json"
    dump_problem(
        uniform_problem(
            z=8, length=500_000, deadline=1_000_000, a=4, w=1_000_000
        ),
        str(path),
    )
    return str(path)


class TestCheckCLI:
    def test_feasible_exit_zero(self, instance_path, capsys):
        assert main([instance_path]) == 0
        out = capsys.readouterr().out
        assert "FEASIBLE" in out
        assert "uniform-0" in out

    def test_infeasible_exit_two(self, infeasible_path, capsys):
        assert main([infeasible_path]) == 2
        assert "INFEASIBLE" in capsys.readouterr().out

    def test_missing_file_exit_one(self, capsys):
        assert main(["/nonexistent/instance.json"]) == 1
        assert "error" in capsys.readouterr().err

    def test_medium_selection(self, instance_path, capsys):
        assert main([instance_path, "--medium", "classic-ethernet"]) in (0, 2)
        assert "classic-ethernet" in capsys.readouterr().out

    def test_tree_overrides(self, instance_path, capsys):
        assert main([instance_path, "--time-f", "256", "--time-m", "4"]) == 0
        assert "F=256" in capsys.readouterr().out

    def test_simulation_spot_check(self, instance_path, capsys):
        assert main([instance_path, "--simulate", "10"]) == 0
        out = capsys.readouterr().out
        assert "misses=0" in out

    def test_no_instance_without_ci_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2


class TestCIFastPath:
    """--ci resolves the suite through the runtime cache (stubbed here:
    executing all 19 experiments for real is the benchmark suite's job)."""

    @pytest.fixture
    def warm_cache(self, tmp_path):
        from repro.experiments.base import ExperimentResult
        from repro.experiments.registry import EXPERIMENTS
        from repro.runtime import ResultCache, RunSpec

        cache = ResultCache(tmp_path / "ci-cache")
        for experiment_id in EXPERIMENTS:
            cache.put(
                RunSpec.make(experiment_id),
                ExperimentResult(
                    experiment_id=experiment_id,
                    title="stub",
                    headers=["x"],
                    rows=[[0]],
                    checks={"ok": True},
                ),
            )
        return cache

    def test_ci_ok_on_warm_cache(self, warm_cache, capsys):
        assert main(["--ci", "--cache-dir", str(warm_cache.directory)]) == 0
        out = capsys.readouterr().out
        assert "all repro modules import cleanly" in out
        assert "0 executed, 19 from cache" in out
        assert "verdict: OK" in out

    def test_ci_runs_invariants_smoke(self, warm_cache, capsys):
        assert (
            main(
                [
                    "--ci",
                    "--cache-dir",
                    str(warm_cache.directory),
                    "--no-perf",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "invariants-smoke: ddcr+burst-noise+crash" in out
        assert "invariants-smoke: csma-cd+burst-noise" in out
        assert "invariants-smoke: dcr+clock-drift" in out
        assert "invariants-smoke: tdma+crash" in out
        assert "invariants ok" in out

    def test_no_invariants_skips_the_smoke(self, warm_cache, capsys):
        assert (
            main(
                [
                    "--ci",
                    "--cache-dir",
                    str(warm_cache.directory),
                    "--no-perf",
                    "--no-invariants",
                ]
            )
            == 0
        )
        assert "invariants-smoke" not in capsys.readouterr().out

    def test_ci_failing_experiment_exits_two(self, warm_cache, capsys):
        from repro.experiments.base import ExperimentResult
        from repro.runtime import RunSpec

        warm_cache.put(
            RunSpec.make("FIG1"),
            ExperimentResult(
                experiment_id="FIG1",
                title="stub",
                headers=["x"],
                rows=[[0]],
                checks={"ok": False},
            ),
        )
        assert main(["--ci", "--cache-dir", str(warm_cache.directory)]) == 2
        captured = capsys.readouterr()
        assert "FAILED checks: FIG1" in captured.err
