"""Tests for the feasibility-check CLI."""

from __future__ import annotations

import pytest

from repro.model.serialize import dump_problem
from repro.model.workloads import uniform_problem
from repro.tools.check import main


@pytest.fixture
def instance_path(tmp_path):
    path = tmp_path / "instance.json"
    dump_problem(uniform_problem(z=4), str(path))
    return str(path)


@pytest.fixture
def infeasible_path(tmp_path):
    path = tmp_path / "bad.json"
    dump_problem(
        uniform_problem(
            z=8, length=500_000, deadline=1_000_000, a=4, w=1_000_000
        ),
        str(path),
    )
    return str(path)


class TestCheckCLI:
    def test_feasible_exit_zero(self, instance_path, capsys):
        assert main([instance_path]) == 0
        out = capsys.readouterr().out
        assert "FEASIBLE" in out
        assert "uniform-0" in out

    def test_infeasible_exit_two(self, infeasible_path, capsys):
        assert main([infeasible_path]) == 2
        assert "INFEASIBLE" in capsys.readouterr().out

    def test_missing_file_exit_one(self, capsys):
        assert main(["/nonexistent/instance.json"]) == 1
        assert "error" in capsys.readouterr().err

    def test_medium_selection(self, instance_path, capsys):
        assert main([instance_path, "--medium", "classic-ethernet"]) in (0, 2)
        assert "classic-ethernet" in capsys.readouterr().out

    def test_tree_overrides(self, instance_path, capsys):
        assert main([instance_path, "--time-f", "256", "--time-m", "4"]) == 0
        assert "F=256" in capsys.readouterr().out

    def test_simulation_spot_check(self, instance_path, capsys):
        assert main([instance_path, "--simulate", "10"]) == 0
        out = capsys.readouterr().out
        assert "misses=0" in out

    def test_no_instance_without_ci_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2


class TestCIFastPath:
    """--ci resolves the suite through the runtime cache (stubbed here:
    executing every experiment for real is the benchmark suite's job)."""

    @pytest.fixture
    def warm_cache(self, tmp_path):
        from repro.experiments.base import ExperimentResult
        from repro.experiments.registry import EXPERIMENTS
        from repro.runtime import ResultCache, RunSpec

        cache = ResultCache(tmp_path / "ci-cache")
        for experiment_id in EXPERIMENTS:
            cache.put(
                RunSpec.make(experiment_id),
                ExperimentResult(
                    experiment_id=experiment_id,
                    title="stub",
                    headers=["x"],
                    rows=[[0]],
                    checks={"ok": True},
                ),
            )
        return cache

    def test_ci_ok_on_warm_cache(self, warm_cache, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        assert (
            main(
                [
                    "--ci",
                    "--cache-dir", str(warm_cache.directory),
                    "--history", str(history),
                ]
            )
            == 0
        )
        from repro.experiments.registry import EXPERIMENTS

        out = capsys.readouterr().out
        assert "all repro modules import cleanly" in out
        assert f"0 executed, {len(EXPERIMENTS)} from cache" in out
        assert "obs-smoke: telemetry round-trip ok" in out
        assert "perf-trend: not enough history" in out
        assert "sweep-smoke:" in out
        assert "serve-smoke:" in out
        assert "obs2-smoke: traced serve session ok" in out
        assert "0 resubmissions" in out
        assert "verdict: OK" in out
        assert history.exists()  # the run was recorded for next time

    def test_no_obs2_skips_the_smoke(self, warm_cache, capsys):
        assert (
            main(
                [
                    "--ci",
                    "--cache-dir", str(warm_cache.directory),
                    "--no-perf",
                    "--no-invariants",
                    "--no-obs",
                    "--no-sweep",
                    "--no-feas",
                    "--no-serve",
                    "--no-obs2",
                ]
            )
            == 0
        )
        assert "obs2-smoke" not in capsys.readouterr().out

    def test_ci_runs_invariants_smoke(self, warm_cache, capsys):
        assert (
            main(
                [
                    "--ci",
                    "--cache-dir",
                    str(warm_cache.directory),
                    "--no-perf",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "invariants-smoke: ddcr+burst-noise+crash" in out
        assert "invariants-smoke: csma-cd+burst-noise" in out
        assert "invariants-smoke: dcr+clock-drift" in out
        assert "invariants-smoke: tdma+crash" in out
        assert "invariants ok" in out

    def test_no_invariants_skips_the_smoke(self, warm_cache, capsys):
        assert (
            main(
                [
                    "--ci",
                    "--cache-dir",
                    str(warm_cache.directory),
                    "--no-perf",
                    "--no-invariants",
                ]
            )
            == 0
        )
        assert "invariants-smoke" not in capsys.readouterr().out

    def test_no_obs_skips_the_smoke(self, warm_cache, capsys):
        assert (
            main(
                [
                    "--ci",
                    "--cache-dir", str(warm_cache.directory),
                    "--no-perf",
                    "--no-invariants",
                    "--no-obs",
                ]
            )
            == 0
        )
        assert "obs-smoke" not in capsys.readouterr().out

    def test_no_sweep_skips_the_smoke(self, warm_cache, capsys):
        assert (
            main(
                [
                    "--ci",
                    "--cache-dir", str(warm_cache.directory),
                    "--no-perf",
                    "--no-invariants",
                    "--no-obs",
                    "--no-sweep",
                ]
            )
            == 0
        )
        assert "sweep-smoke" not in capsys.readouterr().out

    def test_ci_runs_feas_smoke(self, warm_cache, capsys):
        assert (
            main(
                [
                    "--ci",
                    "--cache-dir", str(warm_cache.directory),
                    "--no-perf",
                    "--no-invariants",
                    "--no-obs",
                    "--no-sweep",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "feas-smoke: scalar, vectorized (2 backends)" in out

    def test_no_feas_skips_the_smoke(self, warm_cache, capsys):
        assert (
            main(
                [
                    "--ci",
                    "--cache-dir", str(warm_cache.directory),
                    "--no-perf",
                    "--no-invariants",
                    "--no-obs",
                    "--no-sweep",
                    "--no-feas",
                ]
            )
            == 0
        )
        assert "feas-smoke" not in capsys.readouterr().out

    def test_feas_smoke_agrees_across_paths(self, capsys):
        from repro.tools.check import _run_feas_smoke

        assert _run_feas_smoke() == []
        out = capsys.readouterr().out
        assert "incremental paths agree" in out

    def test_no_cache_skips_the_sweep_smoke(self, capsys, monkeypatch):
        # The sweep smoke resumes against the result cache; without one
        # it reports the skip instead of failing.  Empty the suite so the
        # uncached run costs nothing.
        import repro.experiments.registry as registry

        monkeypatch.setattr(registry, "EXPERIMENTS", {})
        assert (
            main(
                [
                    "--ci",
                    "--no-cache",
                    "--no-perf",
                    "--no-invariants",
                    "--no-obs",
                ]
            )
            == 0
        )
        assert "sweep-smoke: skipped" in capsys.readouterr().out

    def test_obs_smoke_round_trips_on_warm_cache(self, warm_cache, capsys):
        from repro.tools.check import _run_obs_smoke

        assert _run_obs_smoke(str(warm_cache.directory)) == []
        out = capsys.readouterr().out
        assert "obs-smoke: telemetry round-trip ok" in out
        assert "source=cache" in out

    def test_ci_failing_experiment_exits_two(self, warm_cache, capsys):
        from repro.experiments.base import ExperimentResult
        from repro.runtime import RunSpec

        warm_cache.put(
            RunSpec.make("FIG1"),
            ExperimentResult(
                experiment_id="FIG1",
                title="stub",
                headers=["x"],
                rows=[[0]],
                checks={"ok": False},
            ),
        )
        assert (
            main(
                [
                    "--ci",
                    "--cache-dir", str(warm_cache.directory),
                    "--no-perf",
                    "--no-obs",
                ]
            )
            == 2
        )
        captured = capsys.readouterr()
        assert "FAILED checks: FIG1" in captured.err


class TestPerfTrendGate:
    """The gate medians the bench history; driven directly (running the
    full perf smoke per case would dominate the suite's runtime)."""

    @staticmethod
    def _result(ops: float):
        from repro.tools.bench import BenchResult

        return BenchResult(
            name="channel_slot_rate_16_fastloop",
            engine="fastloop",
            unit="rounds",
            ops=1000.0,
            seconds=1000.0 / ops,
            ops_per_sec=ops,
            repeats=1,
            median_seconds=1000.0 / ops,
            median_ops_per_sec=ops,
        )

    @staticmethod
    def _seed_history(path, ops: float, entries: int = 3):
        from repro.tools.bench import append_history, history_entry

        for _ in range(entries):
            append_history(
                path,
                history_entry([TestPerfTrendGate._result(ops)], smoke=True),
            )

    def test_steady_throughput_passes(self, tmp_path, capsys):
        from repro.tools.check import _run_perf_trend

        history = tmp_path / "hist.jsonl"
        self._seed_history(history, ops=10_000)
        failures = _run_perf_trend(
            [self._result(9_500)], history, window=5, threshold=30.0
        )
        assert failures == []
        assert "perf-trend: ok" in capsys.readouterr().out

    def test_regression_fails_the_gate(self, tmp_path, capsys):
        from repro.tools.check import _run_perf_trend

        history = tmp_path / "hist.jsonl"
        self._seed_history(history, ops=10_000)
        failures = _run_perf_trend(
            [self._result(5_000)], history, window=5, threshold=30.0
        )
        assert len(failures) == 1
        assert "below the history median" in failures[0]
        assert "perf-trend: FAILED" in capsys.readouterr().out

    def test_insufficient_history_skips_but_records(self, tmp_path, capsys):
        from repro.tools.bench import load_history
        from repro.tools.check import _run_perf_trend

        history = tmp_path / "hist.jsonl"
        failures = _run_perf_trend(
            [self._result(10_000)], history, window=5, threshold=30.0
        )
        assert failures == []
        assert "not enough history" in capsys.readouterr().out
        assert len(load_history(history)) == 1

    def test_run_is_recorded_after_comparison(self, tmp_path):
        """A regressed run must not median itself into the baseline."""
        from repro.tools.bench import load_history
        from repro.tools.check import _run_perf_trend

        history = tmp_path / "hist.jsonl"
        self._seed_history(history, ops=10_000)
        _run_perf_trend(
            [self._result(5_000)], history, window=5, threshold=30.0
        )
        entries = load_history(history)
        assert len(entries) == 4  # the bad run is recorded...
        # ...but the comparison above used only the three seeded entries
        bench = entries[-1]["benches"]["channel_slot_rate_16_fastloop"]
        assert bench["ops_per_sec"] == 5_000

    def test_window_limits_the_baseline(self, tmp_path):
        """Only the last N entries vote: old fast entries age out."""
        from repro.tools.check import _run_perf_trend

        history = tmp_path / "hist.jsonl"
        self._seed_history(history, ops=50_000, entries=2)  # ancient, fast
        self._seed_history(history, ops=10_000, entries=3)  # recent
        failures = _run_perf_trend(
            [self._result(9_000)], history, window=3, threshold=30.0
        )
        assert failures == []

    def test_non_smoke_entries_are_ignored(self, tmp_path, capsys):
        import json

        from repro.tools.check import _run_perf_trend

        history = tmp_path / "hist.jsonl"
        with open(history, "w") as handle:
            entry = {
                "smoke": False,
                "benches": {
                    "channel_slot_rate_16_fastloop": {"ops_per_sec": 99_999}
                },
            }
            for _ in range(3):
                handle.write(json.dumps(entry) + "\n")
        failures = _run_perf_trend(
            [self._result(1_000)], history, window=5, threshold=30.0
        )
        assert failures == []
        assert "not enough history" in capsys.readouterr().out
