"""The micro-benchmark CLI (python -m repro.tools.bench)."""

from __future__ import annotations

import json

import pytest

from repro.tools import bench


def test_list_names(capsys):
    assert bench.main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "xi_dp_table" in out
    assert "channel_slot_rate_16_fastloop" in out
    assert "telemetry_overhead" in out
    assert "tracer_overhead" in out
    assert "(engine: fastloop)" in out


def test_unknown_bench_rejected():
    with pytest.raises(SystemExit):
        bench.main(["--only", "nope", "--no-write"])


def test_smoke_run_writes_report(tmp_path, capsys):
    output = tmp_path / "bench.json"
    code = bench.main(
        [
            "--smoke",
            "--only", "divide_conquer_table",
            "--only", "channel_slot_rate_4_fastloop",
            "--output", str(output),
        ]
    )
    assert code == 0
    payload = json.loads(output.read_text())
    assert payload["schema"] == 1
    assert payload["smoke"] is True
    assert payload["git_rev"]
    assert payload["default_engine"] in ("auto", "des", "fastloop")
    by_name = {entry["name"]: entry for entry in payload["benches"]}
    assert set(by_name) == {
        "divide_conquer_table", "channel_slot_rate_4_fastloop"
    }
    slot_rate = by_name["channel_slot_rate_4_fastloop"]
    assert slot_rate["engine"] == "fastloop"
    assert slot_rate["unit"] == "rounds"
    assert slot_rate["ops_per_sec"] > 0
    assert slot_rate["repeats"] == 1
    out = capsys.readouterr().out
    assert "rounds/s" in out


def test_no_write_leaves_no_file(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    code = bench.main(
        ["--smoke", "--only", "divide_conquer_table", "--no-write"]
    )
    assert code == 0
    assert list(tmp_path.iterdir()) == []


def test_run_benches_returns_results():
    results = bench.run_benches(
        names=["divide_conquer_table"], smoke=True
    )
    assert len(results) == 1
    assert results[0].ops_per_sec > 0
    assert "tables/s" in results[0].describe()


def test_repeats_honored_with_min_and_median(tmp_path):
    output = tmp_path / "bench.json"
    code = bench.main(
        [
            "--smoke",
            "--repeats", "3",
            "--only", "divide_conquer_table",
            "--output", str(output),
            "--no-history",
        ]
    )
    assert code == 0
    (entry,) = json.loads(output.read_text())["benches"]
    assert entry["repeats"] == 3
    # min is the fastest sample, so it can never exceed the median
    assert 0 < entry["seconds"] <= entry["median_seconds"]
    assert entry["median_ops_per_sec"] <= entry["ops_per_sec"]


def test_median_reported_in_describe():
    (result,) = bench.run_benches(
        names=["divide_conquer_table"], smoke=True, repeats=3
    )
    assert result.repeats == 3
    assert "median" in result.describe()


def test_history_appended_per_run(tmp_path):
    output = tmp_path / "bench.json"
    history = tmp_path / "hist.jsonl"
    for _ in range(2):
        assert (
            bench.main(
                [
                    "--smoke",
                    "--only", "divide_conquer_table",
                    "--output", str(output),
                    "--history", str(history),
                ]
            )
            == 0
        )
    entries = bench.load_history(history)
    assert len(entries) == 2
    for entry in entries:
        assert entry["smoke"] is True
        assert entry["git_rev"]
        assert entry["benches"]["divide_conquer_table"]["ops_per_sec"] > 0


def test_history_defaults_next_to_output(tmp_path):
    output = tmp_path / "bench.json"
    assert (
        bench.main(
            [
                "--smoke",
                "--only", "divide_conquer_table",
                "--output", str(output),
            ]
        )
        == 0
    )
    assert (tmp_path / "BENCH_history.jsonl").exists()


def test_load_history_tolerates_missing_and_corrupt(tmp_path):
    assert bench.load_history(tmp_path / "nope.jsonl") == []
    path = tmp_path / "hist.jsonl"
    path.write_text('{"smoke": true}\ngarbage\n[1, 2]\n')
    assert bench.load_history(path) == [{"smoke": True}]


def test_list_includes_feasibility_fast_path_benches(capsys):
    assert bench.main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in (
        "xi_dp_table_cold",
        "xi_dp_table_warm_mem",
        "xi_dp_table_warm_disk",
        "feasibility_grid",
        "feasibility_grid_scalar",
    ):
        assert name in out


def test_xi_cache_tiers_order_as_expected():
    """Warm in-memory lookups must beat recomputing the DP from cold."""
    results = bench.run_benches(
        names=[
            "xi_dp_table_cold",
            "xi_dp_table_warm_mem",
            "xi_dp_table_warm_disk",
        ],
        smoke=True,
    )
    by_name = {result.name: result for result in results}
    for result in results:
        assert result.ops_per_sec > 0
        assert result.unit == "tables"
    assert (
        by_name["xi_dp_table_warm_mem"].ops_per_sec
        > by_name["xi_dp_table_cold"].ops_per_sec
    )
    assert (
        by_name["xi_dp_table_warm_disk"].ops_per_sec
        > by_name["xi_dp_table_cold"].ops_per_sec
    )


def test_feasibility_grid_bench_runs_in_smoke():
    (result,) = bench.run_benches(names=["feasibility_grid"], smoke=True)
    assert result.ops_per_sec > 0
    assert result.unit == "reports"


def test_telemetry_overhead_within_budget():
    """Enabled telemetry must stay within a modest fraction of the plain
    fastloop throughput (the ISSUE budget is <=10%; the assertion allows
    3x that to keep CI machines' scheduling noise from flaking the
    suite), and the disabled path IS the plain bench — NULL_TELEMETRY
    short-circuits before any instrument work."""
    plain, instrumented = bench.run_benches(
        names=["channel_slot_rate_16_fastloop", "telemetry_overhead"],
        smoke=True,
        repeats=2,
    )
    assert instrumented.ops_per_sec > plain.ops_per_sec * 0.70


def test_tracer_overhead_within_budget():
    """An armed flight recorder must stay within a modest fraction of the
    plain fastloop throughput (the ISSUE budget is <=10%; the assertion
    allows 3x that for CI scheduling noise).  The disabled path needs no
    separate bench: the hoisted ``tracer_on`` gate makes it the plain
    ``channel_slot_rate`` bench itself."""
    plain, traced = bench.run_benches(
        names=["channel_slot_rate_16_fastloop", "tracer_overhead"],
        smoke=True,
        repeats=2,
    )
    assert traced.ops_per_sec > plain.ops_per_sec * 0.70
