"""The micro-benchmark CLI (python -m repro.tools.bench)."""

from __future__ import annotations

import json

import pytest

from repro.tools import bench


def test_list_names(capsys):
    assert bench.main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "xi_dp_table" in out
    assert "channel_slot_rate_16_fastloop" in out
    assert "(engine: fastloop)" in out


def test_unknown_bench_rejected():
    with pytest.raises(SystemExit):
        bench.main(["--only", "nope", "--no-write"])


def test_smoke_run_writes_report(tmp_path, capsys):
    output = tmp_path / "bench.json"
    code = bench.main(
        [
            "--smoke",
            "--only", "divide_conquer_table",
            "--only", "channel_slot_rate_4_fastloop",
            "--output", str(output),
        ]
    )
    assert code == 0
    payload = json.loads(output.read_text())
    assert payload["schema"] == 1
    assert payload["smoke"] is True
    assert payload["git_rev"]
    assert payload["default_engine"] in ("auto", "des", "fastloop")
    by_name = {entry["name"]: entry for entry in payload["benches"]}
    assert set(by_name) == {
        "divide_conquer_table", "channel_slot_rate_4_fastloop"
    }
    slot_rate = by_name["channel_slot_rate_4_fastloop"]
    assert slot_rate["engine"] == "fastloop"
    assert slot_rate["unit"] == "rounds"
    assert slot_rate["ops_per_sec"] > 0
    assert slot_rate["repeats"] == 1
    out = capsys.readouterr().out
    assert "rounds/s" in out


def test_no_write_leaves_no_file(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    code = bench.main(
        ["--smoke", "--only", "divide_conquer_table", "--no-write"]
    )
    assert code == 0
    assert list(tmp_path.iterdir()) == []


def test_run_benches_returns_results():
    results = bench.run_benches(
        names=["divide_conquer_table"], smoke=True
    )
    assert len(results) == 1
    assert results[0].ops_per_sec > 0
    assert "tables/s" in results[0].describe()
