"""ABL-THETA bench: compressed-time theta(c) ablation."""

from repro.experiments import ablation_theta


def test_bench_ablation_theta(run_artefact):
    run_artefact(ablation_theta.run)
