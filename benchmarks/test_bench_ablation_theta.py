"""ABL-THETA bench: compressed-time theta(c) ablation."""


def test_bench_ablation_theta(run_artefact):
    run_artefact("ABL-THETA")
