"""FIG2 bench: regenerate Fig. 2 (binary vs quaternary, 64 leaves)."""


def test_bench_fig2(run_artefact):
    run_artefact("FIG2", rounds=3)
