"""FIG2 bench: regenerate Fig. 2 (binary vs quaternary, 64 leaves)."""

from repro.experiments import fig2


def test_bench_fig2(run_artefact):
    run_artefact(fig2.run, rounds=3)
