"""EXT-UTIL bench: guaranteed utilization at the feasibility frontier."""


def test_bench_ext_util(run_artefact):
    run_artefact("EXT-UTIL")
