"""EXT-UTIL bench: guaranteed utilization at the feasibility frontier."""

from repro.experiments import ext_util


def test_bench_ext_util(run_artefact):
    run_artefact(ext_util.run)
