"""Micro-benchmarks of the library's hot primitives.

Unlike the artefact benches (one deterministic run each), these measure
throughput of the core computations a user hits repeatedly: the xi tables,
closed forms, the reference search, the feasibility bound, and raw
channel-simulation slot rate.
"""

from __future__ import annotations

import pytest

from repro.core.closed_form import xi_closed_form
from repro.core.divide_conquer import divide_conquer_table
from repro.core.feasibility import TreeParameters, latency_bound
from repro.core.search_cost import (
    _cost_tuple,
    simulate_search,
    worst_case_placement,
)
from repro.model.workloads import uniform_problem
from repro.net.network import NetworkSimulation
from repro.net.phy import GIGABIT_ETHERNET, ideal_medium
from repro.protocols.ddcr import DDCRConfig, DDCRProtocol

_MS = 1_000_000


def test_bench_xi_dp_table(benchmark):
    """Ground-truth DP over Eq. 1 for a 1024-leaf quaternary tree."""

    def build():
        _cost_tuple.cache_clear()
        return _cost_tuple(4, 5)

    table = benchmark(build)
    assert table[2] == 19


def test_bench_divide_conquer_table(benchmark):
    """Eq. 2-4 route for the same shape (should be much faster)."""
    from repro.core.divide_conquer import _dc_tuple

    def build():
        _dc_tuple.cache_clear()
        return divide_conquer_table(4, 1024)

    table = benchmark(build)
    assert table[2] == 19


def test_bench_closed_form_grid(benchmark):
    """Eq. 10 evaluated over every k of a 4096-leaf binary tree."""

    def sweep():
        return [xi_closed_form(k, 4096, 2) for k in range(4097)]

    values = benchmark(sweep)
    assert values[2] == 23


def test_bench_simulate_search(benchmark):
    """Reference search semantics on a worst-case 64-of-256 placement."""
    placement = worst_case_placement(64, 256, 4)

    def run():
        return simulate_search(placement, 256, 4).cost

    cost = benchmark(run)
    assert cost > 0


def test_bench_latency_bound(benchmark):
    """One B_DDCR evaluation on a 16-source instance."""
    problem = uniform_problem(z=16, deadline=10 * _MS, a=2, w=4 * _MS)
    trees = TreeParameters(
        time_f=64, time_m=4,
        static_q=problem.static_q, static_m=problem.static_m,
    )
    source = problem.sources[0]
    target = source.message_classes[0]

    def evaluate():
        return latency_bound(
            target, source, problem, GIGABIT_ETHERNET, trees
        ).bound

    bound = benchmark(evaluate)
    assert bound > 0


@pytest.mark.parametrize("stations", [4, 16])
@pytest.mark.parametrize("engine", ["des", "fastloop"])
def test_bench_channel_slot_rate(benchmark, stations, engine):
    """DDCR simulation throughput (channel rounds per second), per engine."""
    problem = uniform_problem(
        z=stations, length=1_000, deadline=400_000, a=1, w=200_000
    )
    config = DDCRConfig(
        time_f=16, time_m=2, class_width=65_536,
        static_q=problem.static_q, static_m=problem.static_m,
    )

    def run():
        simulation = NetworkSimulation(
            problem,
            ideal_medium(slot_time=64),
            protocol_factory=lambda s: DDCRProtocol(config),
            engine=engine,
        )
        return simulation.run(1_000_000).delivered

    delivered = benchmark.pedantic(run, rounds=3, iterations=1)
    assert delivered > 0
