"""Benchmark-suite plumbing.

Each benchmark regenerates one paper artefact (figure or bound table, see
DESIGN.md's per-experiment index), prints the same rows/series the paper
reports, and asserts the experiment's shape checks.  Simulation-backed
benches run one round (the workloads are deterministic; repeating them
only re-measures the same path).

Artefact benches resolve experiments by id through the
:mod:`repro.runtime` executor — the same path the CLI takes — with the
cache disabled so the benchmark clock measures real execution.  Every
test using :func:`run_artefact` is marked ``slow``; run the micro benches
alone with ``pytest benchmarks -m "not slow"``.
"""

from __future__ import annotations

import pytest

from repro.runtime import ParallelExecutor, RunSpec


def pytest_collection_modifyitems(items):
    for item in items:
        if "run_artefact" in getattr(item, "fixturenames", ()):
            item.add_marker(pytest.mark.slow)


@pytest.fixture
def run_artefact(benchmark, capsys):
    """Run an experiment under the benchmark clock and validate its checks.

    Accepts a registry experiment id (preferred) or a bare callable
    returning an ExperimentResult.
    """

    def runner(experiment, rounds: int = 1, **params):
        if callable(experiment):
            resolve = experiment
        else:
            spec = RunSpec.make(experiment, **params)
            executor = ParallelExecutor(jobs=1, cache=None)

            def resolve():
                return executor.run([spec])[0].result

        result = benchmark.pedantic(resolve, rounds=rounds, iterations=1)
        with capsys.disabled():
            print()
            print(result.render())
        assert result.all_checks_pass, result.failed_checks()
        return result

    return runner
