"""Benchmark-suite plumbing.

Each benchmark regenerates one paper artefact (figure or bound table, see
DESIGN.md's per-experiment index), prints the same rows/series the paper
reports, and asserts the experiment's shape checks.  Simulation-backed
benches run one round (the workloads are deterministic; repeating them
only re-measures the same path).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_artefact(benchmark, capsys):
    """Run an experiment under the benchmark clock and validate its checks."""

    def runner(experiment_callable, rounds: int = 1):
        result = benchmark.pedantic(
            experiment_callable, rounds=rounds, iterations=1
        )
        with capsys.disabled():
            print()
            print(result.render())
        assert result.all_checks_pass, result.failed_checks()
        return result

    return runner
