"""PROTO bench: CSMA/DDCR vs CSMA-CD/BEB vs CSMA/DCR vs TDMA load sweep."""


def test_bench_protocols(run_artefact):
    run_artefact("PROTO")
