"""PROTO bench: CSMA/DDCR vs CSMA-CD/BEB vs CSMA/DCR vs TDMA load sweep."""

from repro.experiments import protocol_comparison


def test_bench_protocols(run_artefact):
    run_artefact(protocol_comparison.run)
