"""EXT-NOISE bench: common-mode slot-corruption sweep."""

from repro.experiments import ext_noise


def test_bench_ext_noise(run_artefact):
    run_artefact(ext_noise.run)
