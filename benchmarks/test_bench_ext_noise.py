"""EXT-NOISE bench: common-mode slot-corruption sweep."""


def test_bench_ext_noise(run_artefact):
    run_artefact("EXT-NOISE")
