"""EQ11-14 bench: tightness of xi_tilde (gap measurements + constants)."""

from repro.experiments import tightness


def test_bench_tightness(run_artefact):
    run_artefact(tightness.run)
