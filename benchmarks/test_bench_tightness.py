"""EQ11-14 bench: tightness of xi_tilde (gap measurements + constants)."""


def test_bench_tightness(run_artefact):
    run_artefact("EQ11-14")
