"""EQ9-10-15 bench: closed forms vs ground-truth DP over the (m, t) grid."""

from repro.experiments import closed_form_check


def test_bench_closed_form(run_artefact):
    run_artefact(closed_form_check.run)
