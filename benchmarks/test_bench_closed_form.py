"""EQ9-10-15 bench: closed forms vs ground-truth DP over the (m, t) grid."""


def test_bench_closed_form(run_artefact):
    run_artefact("EQ9-10-15")
