"""EXT-DUAL bench: dual-bus failover under a mid-run bus failure."""

from repro.experiments import ext_dual


def test_bench_ext_dual(run_artefact):
    run_artefact(ext_dual.run)
