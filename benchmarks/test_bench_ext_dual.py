"""EXT-DUAL bench: dual-bus failover under a mid-run bus failure."""


def test_bench_ext_dual(run_artefact):
    run_artefact("EXT-DUAL")
