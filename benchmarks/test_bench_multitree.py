"""EQ16-19 bench: Problem P2 bound vs exhaustive composition optimum."""


def test_bench_multitree(run_artefact):
    run_artefact("EQ16-19")
