"""EQ16-19 bench: Problem P2 bound vs exhaustive composition optimum."""

from repro.experiments import multitree


def test_bench_multitree(run_artefact):
    run_artefact(multitree.run)
