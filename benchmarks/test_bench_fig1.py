"""FIG1 bench: regenerate Fig. 1 (64-leaf quaternary worst-case searches)."""


def test_bench_fig1(run_artefact):
    run_artefact("FIG1", rounds=3)
