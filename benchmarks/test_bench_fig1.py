"""FIG1 bench: regenerate Fig. 1 (64-leaf quaternary worst-case searches)."""

from repro.experiments import fig1


def test_bench_fig1(run_artefact):
    run_artefact(fig1.run, rounds=3)
