"""SIM-FC bench: zero misses + B_DDCR dominance on feasible instances."""


def test_bench_fc_validation(run_artefact):
    run_artefact("SIM-FC")
