"""SIM-FC bench: zero misses + B_DDCR dominance on feasible instances."""

from repro.experiments import fc_validation


def test_bench_fc_validation(run_artefact):
    run_artefact(fc_validation.run)
