"""FC bench: feasibility frontier of B_DDCR over deadline/load."""


def test_bench_feasibility(run_artefact):
    run_artefact("FC")
