"""FC bench: feasibility frontier of B_DDCR over deadline/load."""

from repro.experiments import feasibility_sweep


def test_bench_feasibility(run_artefact):
    run_artefact(feasibility_sweep.run)
