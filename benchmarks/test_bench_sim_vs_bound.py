"""SIM-XI bench: simulated DDCR search costs vs analytic xi."""

from repro.experiments import sim_vs_bound


def test_bench_sim_vs_bound(run_artefact):
    run_artefact(sim_vs_bound.run)
