"""SIM-XI bench: simulated DDCR search costs vs analytic xi."""


def test_bench_sim_vs_bound(run_artefact):
    run_artefact("SIM-XI")
