"""EQ2-8 bench: divide-and-conquer recursion + special values grid."""

from repro.experiments import recursions


def test_bench_recursions(run_artefact):
    run_artefact(recursions.run)
