"""EQ2-8 bench: divide-and-conquer recursion + special values grid."""


def test_bench_recursions(run_artefact):
    run_artefact("EQ2-8")
