"""EXT-XOR bench: non-destructive ATM-bus variant (analysis + protocol)."""

from repro.experiments import ext_xor


def test_bench_ext_xor(run_artefact):
    run_artefact(ext_xor.run)
