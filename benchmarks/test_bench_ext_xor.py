"""EXT-XOR bench: non-destructive ATM-bus variant (analysis + protocol)."""


def test_bench_ext_xor(run_artefact):
    run_artefact("EXT-XOR")
