"""ABL-PCP bench: deadlines via the 3-bit 802.1p priority field."""


def test_bench_ablation_pcp(run_artefact):
    run_artefact("ABL-PCP")
