"""ABL-PCP bench: deadlines via the 3-bit 802.1p priority field."""

from repro.experiments import ablation_pcp


def test_bench_ablation_pcp(run_artefact):
    run_artefact(ablation_pcp.run)
