"""ABL-BURST bench: packet-bursting ablation."""

from repro.experiments import ablation_burst


def test_bench_ablation_burst(run_artefact):
    run_artefact(ablation_burst.run)
