"""ABL-BURST bench: packet-bursting ablation."""


def test_bench_ablation_burst(run_artefact):
    run_artefact("ABL-BURST")
