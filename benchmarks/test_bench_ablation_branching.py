"""ABL-M bench: time-tree branching degree ablation."""

from repro.experiments import ablation_branching


def test_bench_ablation_branching(run_artefact):
    run_artefact(ablation_branching.run)
