"""ABL-M bench: time-tree branching degree ablation."""


def test_bench_ablation_branching(run_artefact):
    run_artefact("ABL-M")
