"""EXT-HOST bench: tasks -> RTA -> bounds -> FC -> trace replay."""


def test_bench_ext_host(run_artefact):
    run_artefact("EXT-HOST")
