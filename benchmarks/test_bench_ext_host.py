"""EXT-HOST bench: tasks -> RTA -> bounds -> FC -> trace replay."""

from repro.experiments import ext_host


def test_bench_ext_host(run_artefact):
    run_artefact(ext_host.run)
