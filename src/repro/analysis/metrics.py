"""Run metrics: timeliness, latency, utilization, deadline inversions.

Digests a :class:`~repro.net.network.RunResult` into the quantities the
benches report: on-time ratio, deadline-miss count (completed late, dropped,
or still backlogged past due at the horizon), latency statistics per class,
channel utilization, and the number of *deadline inversions* — successful
transmissions that overtook a pending message with an earlier absolute
deadline (the non-optimality CSMA/DDCR's equivalence classes and the
compressed-time mode trade against, section 3.2).
"""

from __future__ import annotations

import dataclasses
import math
from collections import defaultdict

from repro.net.network import RunResult
from repro.sim.monitor import RunningStats

__all__ = ["ClassMetrics", "RunMetrics", "summarize", "count_inversions"]


@dataclasses.dataclass
class ClassMetrics:
    """Per-message-class digest."""

    class_name: str
    delivered: int = 0
    on_time: int = 0
    late: int = 0
    dropped: int = 0
    backlog_missed: int = 0
    latency: RunningStats = dataclasses.field(default_factory=RunningStats)

    @property
    def misses(self) -> int:
        return self.late + self.dropped + self.backlog_missed

    @property
    def total(self) -> int:
        return self.delivered + self.dropped + self.backlog_missed

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.total if self.total else 0.0


@dataclasses.dataclass
class RunMetrics:
    """Whole-run digest."""

    horizon: int
    delivered: int
    on_time: int
    late: int
    dropped: int
    backlog_missed: int
    backlog_pending: int
    utilization: float
    max_latency: int
    inversions: int
    per_class: dict[str, ClassMetrics]

    @property
    def misses(self) -> int:
        """Hard-real-time violations: late + dropped + past-due backlog."""
        return self.late + self.dropped + self.backlog_missed

    @property
    def total_offered(self) -> int:
        return self.delivered + self.dropped + self.backlog_missed + self.backlog_pending

    @property
    def miss_ratio(self) -> float:
        accountable = self.delivered + self.dropped + self.backlog_missed
        return self.misses / accountable if accountable else 0.0

    @property
    def meets_hrtdm(self) -> bool:
        """<p.HRTDM> timeliness: no message violated its deadline."""
        return self.misses == 0


def count_inversions(result: RunResult) -> int:
    """Deadline inversions among successful transmissions.

    A transmission of message A (on the wire from ``started`` to
    ``completion``) is an inversion when some message B with a strictly
    earlier absolute deadline had already arrived before A *started* and
    was still pending when A started (B's own transmission started later).
    Non-preemption inversions — B arriving while A already holds the wire —
    cannot occur under this definition, matching the paper's remark that
    those are unavoidable for any protocol and should not be charged.

    Each A is counted at most once (was it inverted or not), so the number
    is comparable across protocols regardless of queue depths.
    """
    completions = [r for r in result.completions if not r.dropped]
    inversions = 0
    for record in completions:
        a = record.message
        for other in completions:
            b = other.message
            if b.seq == a.seq:
                continue
            if (
                b.absolute_deadline < a.absolute_deadline
                and b.arrival <= record.started
                and other.started > record.started
            ):
                inversions += 1
                break
    return inversions


def summarize(result: RunResult) -> RunMetrics:
    """Digest a run into :class:`RunMetrics`."""
    per_class: dict[str, ClassMetrics] = defaultdict(
        lambda: ClassMetrics(class_name="")
    )
    delivered = on_time = late = dropped = 0
    max_latency = 0
    for record in result.completions:
        name = record.message.msg_class.name
        metrics = per_class[name]
        if not metrics.class_name:
            metrics.class_name = name
        if record.dropped:
            dropped += 1
            metrics.dropped += 1
            continue
        delivered += 1
        metrics.delivered += 1
        metrics.latency.add(record.latency)
        max_latency = max(max_latency, record.latency)
        if record.on_time:
            on_time += 1
            metrics.on_time += 1
        else:
            late += 1
            metrics.late += 1
    backlog_missed = 0
    backlog_pending = 0
    for message in result.backlog():
        name = message.msg_class.name
        metrics = per_class[name]
        if not metrics.class_name:
            metrics.class_name = name
        if message.absolute_deadline < result.horizon:
            backlog_missed += 1
            metrics.backlog_missed += 1
        else:
            backlog_pending += 1
    return RunMetrics(
        horizon=result.horizon,
        delivered=delivered,
        on_time=on_time,
        late=late,
        dropped=dropped,
        backlog_missed=backlog_missed,
        backlog_pending=backlog_pending,
        utilization=result.utilization(),
        max_latency=max_latency,
        inversions=count_inversions(result),
        per_class=dict(per_class),
    )


def mean_or_nan(stats: RunningStats) -> float:
    """Convenience: mean that is NaN (not an exception) when empty."""
    return stats.mean if stats.count else math.nan
