"""Analysis layer: metrics, sim-vs-bound checking, adversaries, reporting."""

from repro.analysis.adversary import (
    AdversarialScenario,
    build_static_collision_scenario,
    build_time_spread_scenario,
    expected_tts_cost,
)
from repro.analysis.bounds import (
    LatencyCheck,
    SearchBoundViolation,
    check_latency_bounds,
    check_search_costs,
)
from repro.analysis.metrics import (
    ClassMetrics,
    RunMetrics,
    count_inversions,
    summarize,
)
from repro.analysis.report import ascii_plot, format_series, format_table, to_csv

__all__ = [
    "AdversarialScenario",
    "build_static_collision_scenario",
    "build_time_spread_scenario",
    "expected_tts_cost",
    "LatencyCheck",
    "SearchBoundViolation",
    "check_latency_bounds",
    "check_search_costs",
    "ClassMetrics",
    "RunMetrics",
    "count_inversions",
    "summarize",
    "ascii_plot",
    "format_series",
    "format_table",
    "to_csv",
]
