"""Adversarial scenario construction: drive the simulator to the analysis.

The worst cases of Problems P1/P2 are attained by specific *placements* of
active leaves (computed exactly by
:func:`repro.core.search_cost.worst_case_placement`).  This module turns a
placement into a concrete simulation:

* :func:`build_static_collision_scenario` — z stations, one message each,
  all in the same deadline equivalence class, with static indices at the
  worst-case placement: the resulting time-leaf collision forces one STs
  whose slot cost must equal ``1 + xi(k, q)`` (the leading 1 being the root
  probe the leaf collision provides).
* :func:`build_time_spread_scenario` — stations whose deadlines land in
  chosen time-tree classes, to exercise TTs costs.

Both return ready-to-run :class:`~repro.net.network.NetworkSimulation`-
compatible pieces plus the analytic expectation, so tests and the SIM-XI
bench can assert equality, not just inequality.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.core.search_cost import xi_exact, xi_nondestructive
from repro.model.message import DensityBound, MessageClass
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec
from repro.net.network import NetworkSimulation, Scenario
from repro.net.phy import MediumProfile, ideal_medium
from repro.protocols.ddcr.config import DDCRConfig
from repro.protocols.ddcr.protocol import DDCRProtocol

__all__ = [
    "AdversarialScenario",
    "build_static_collision_scenario",
    "build_time_spread_scenario",
]


@dataclasses.dataclass
class AdversarialScenario:
    """A runnable worst-case scenario plus its analytic expectation."""

    simulation: NetworkSimulation
    config: DDCRConfig
    expected_sts_cost: int | None
    expected_participants: int
    horizon: int

    def run(self):
        return self.simulation.run(self.horizon)


def _uniform_class(
    name: str, length: int, deadline: int, window: int
) -> MessageClass:
    return MessageClass(
        name=name,
        length=length,
        deadline=deadline,
        bound=DensityBound(a=1, w=window),
    )


def build_static_collision_scenario(
    placement: Sequence[int],
    static_q: int,
    static_m: int,
    medium: MediumProfile | None = None,
    message_length: int = 1000,
    nondestructive: bool = False,
) -> AdversarialScenario:
    """One simultaneous burst, one station per placement index.

    All messages share arrival time 0 and the same deadline, so they fall
    into the same deadline equivalence class; the initial collision starts
    a TTs, the messages meet again on one time leaf, and the nested STs
    must search the static tree with exactly the ``placement`` leaves
    active — the analytic worst case when the placement came from
    :func:`~repro.core.search_cost.worst_case_placement`.

    With ``nondestructive=True`` the scenario runs on an idealised XOR bus
    and the expected cost is :func:`~repro.core.search_cost.xi_nondestructive`
    (pass a placement built with ``skip_empty=True`` for equality).
    """
    if len(placement) < 2:
        raise ValueError("need at least two colliding stations")
    if len(set(placement)) != len(placement):
        raise ValueError("placement indices must be distinct")
    if medium is None:
        medium = ideal_medium(slot_time=64, destructive=not nondestructive)
    k = len(placement)
    # Generous deadline: the whole resolution (k transmissions + searches)
    # must fit inside one deadline equivalence class.
    per_message = medium.transmission_time(message_length) + 8 * medium.slot_time
    deadline = max(100_000, 8 * k * per_message)
    horizon = 4 * deadline
    window = horizon  # one arrival per station in the run
    sources = tuple(
        SourceSpec(
            source_id=i,
            message_classes=(
                _uniform_class(f"burst-{i}", message_length, deadline, window),
            ),
            static_indices=(index,),
        )
        for i, index in enumerate(sorted(placement))
    )
    problem = HRTDMProblem(
        sources=sources, static_q=static_q, static_m=static_m
    )
    config = DDCRConfig(
        time_f=64,
        time_m=4,
        class_width=deadline,  # one wide class: all collide on one leaf
        static_q=static_q,
        static_m=static_m,
        alpha=0,
        theta_factor=1.0,
    )
    simulation = NetworkSimulation.from_scenario(
        Scenario(
            problem=problem,
            medium=medium,
            protocol_factory=lambda src: DDCRProtocol(config),
            check_consistency=True,
        )
    )
    # The leaf collision is the root probe; xi(k, q) includes that root
    # collision slot, so the STs record must equal xi exactly.
    if nondestructive:
        expected = xi_nondestructive(k, static_q, static_m)
    else:
        expected = xi_exact(k, static_q, static_m)
    return AdversarialScenario(
        simulation=simulation,
        config=config,
        expected_sts_cost=expected,
        expected_participants=k,
        horizon=horizon,
    )


def build_time_spread_scenario(
    class_indices: Sequence[int],
    time_f: int = 64,
    time_m: int = 4,
    medium: MediumProfile | None = None,
    message_length: int = 1000,
    class_width: int | None = None,
) -> AdversarialScenario:
    """Stations whose deadlines land in the given time-tree classes.

    All arrive at time 0 and collide; the TTs then isolates one station per
    distinct class.  With distinct classes no STs is needed, so the TTs
    wasted-slot count is directly comparable to ``xi(k, F)`` over the time
    tree (equal when the classes came from ``worst_case_placement``).

    Deadlines are placed mid-class and ``class_width`` is sized so the
    ``reft`` resets that follow each in-search success (section 3.2) cannot
    drift a message across a class boundary before it transmits — the
    placement the analysis assumed therefore survives the whole search.
    """
    if len(class_indices) < 2:
        raise ValueError("need at least two stations")
    if len(set(class_indices)) != len(class_indices):
        raise ValueError(
            "classes must be distinct (use the static scenario for ties)"
        )
    if max(class_indices) >= time_f:
        raise ValueError("class index beyond the time tree horizon")
    medium = medium if medium is not None else ideal_medium(slot_time=64)
    if class_width is None:
        k = len(class_indices)
        per_message = (
            medium.transmission_time(message_length) + 8 * medium.slot_time
        )
        drift_budget = k * per_message + time_f * medium.slot_time
        class_width = 4 * drift_budget
    horizon = (max(class_indices) + 2) * class_width
    window = horizon
    sources = []
    static_q = 1
    while static_q < len(class_indices):
        static_q *= 2
    for i, cls_index in enumerate(class_indices):
        # Deadline placing the message in class `cls_index` at reft ~ slot 1:
        # chosen mid-class to be robust to the root-collision slot offset.
        deadline = cls_index * class_width + class_width // 2
        sources.append(
            SourceSpec(
                source_id=i,
                message_classes=(
                    _uniform_class(
                        f"spread-{i}", message_length, deadline, window
                    ),
                ),
                static_indices=(i,),
            )
        )
    problem = HRTDMProblem(
        sources=tuple(sources), static_q=static_q, static_m=2
    )
    config = DDCRConfig(
        time_f=time_f,
        time_m=time_m,
        class_width=class_width,
        static_q=static_q,
        static_m=2,
        alpha=0,
        theta_factor=1.0,
    )
    simulation = NetworkSimulation.from_scenario(
        Scenario(
            problem=problem,
            medium=medium,
            protocol_factory=lambda src: DDCRProtocol(config),
            check_consistency=True,
        )
    )
    k = len(class_indices)
    expected = xi_exact(k, time_f, time_m)
    return AdversarialScenario(
        simulation=simulation,
        config=config,
        expected_sts_cost=None,
        expected_participants=k,
        horizon=horizon,
    )


def expected_tts_cost(class_indices: Sequence[int], time_f: int, time_m: int) -> int:
    """Exact TTs slot cost for isolating the given distinct classes.

    Delegates to the reference search semantics so benches can assert
    equality for arbitrary (not only worst-case) placements.
    """
    from repro.core.search_cost import simulate_search

    return simulate_search(class_indices, time_f, time_m).cost


__all__.append("expected_tts_cost")
