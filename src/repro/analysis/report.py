"""Plain-text reporting: tables, series, CSV and ASCII plots.

The experiment harness prints the same rows/series the paper's figures
show; these helpers keep that output consistent and dependency-free.
"""

from __future__ import annotations

import io
from collections.abc import Sequence

__all__ = [
    "format_table",
    "to_csv",
    "ascii_plot",
    "format_series",
    "render_timeline",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table.

    >>> print(format_table(["k", "xi"], [[2, 11], [4, 17]]))
     k | xi
    ---+---
     2 | 11
     4 | 17
    """
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header_line = " | ".join(
        cell.rjust(width) for cell, width in zip(cells[0], widths)
    )
    out.write(" " + header_line + "\n")
    out.write("-" + "-+-".join("-" * width for width in widths) + "\n")
    for row in cells[1:]:
        out.write(
            " "
            + " | ".join(cell.rjust(width) for cell, width in zip(row, widths))
            + "\n"
        )
    return out.getvalue().rstrip("\n")


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def to_csv(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Minimal CSV writer (no quoting needs arise for our numeric tables)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(",".join(_fmt(value) for value in row))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[float]
) -> str:
    """One named series as `name: (x, y) (x, y) ...` for log output."""
    pairs = " ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


#: Timeline glyphs by slot state.
_TIMELINE_GLYPHS = {
    "silence": ".",
    "collision": "X",
    "corrupted": "!",
    "success": None,  # replaced by the transmitting station's digit
}


def render_timeline(trace, width: int = 96, start: int = 0) -> str:
    """Render a channel trace as a per-slot activity strip.

    One character per channel round, reading left to right in time:
    ``.`` silence, ``X`` collision, ``!`` noise-corrupted slot, and a
    digit/letter identifying the transmitting station on a success
    (station id modulo 36).  Requires a trace produced by
    :class:`~repro.net.channel.BroadcastChannel` with tracing enabled.

    >>> # '0X12.' reads: station 0 sent, collision, stations 1 then 2
    >>> # sent after resolution, then one idle slot.
    """
    symbols: list[str] = []
    alphabet = "0123456789abcdefghijklmnopqrstuvwxyz"
    for record in trace.records("slot"):
        if record.time < start:
            continue
        state = record["state"]
        if state == "success":
            source = record["source"]
            symbols.append(alphabet[int(source) % len(alphabet)])
        else:
            symbols.append(_TIMELINE_GLYPHS.get(str(state), "?"))
        if len(symbols) >= width * 8:
            break
    if not symbols:
        return "(empty timeline)"
    lines = [
        "".join(symbols[offset : offset + width])
        for offset in range(0, len(symbols), width)
    ]
    legend = ". silence   X collision   ! corrupted   digit/letter = sender"
    return "\n".join([legend] + lines)


def ascii_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
) -> str:
    """A rough character plot of one or more series (paper-figure shapes).

    Each series gets its own glyph; axes are annotated with min/max.  Only
    meant to make bench output human-checkable at a glance.
    """
    glyphs = "*o+x#@%&"
    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    if not all_x:
        return "(empty plot)"
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1
    y_span = (y_hi - y_lo) or 1
    grid = [[" "] * width for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, y in zip(xs, ys):
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph
    lines = ["".join(row) for row in grid]
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}"
        for i, name in enumerate(series.keys())
    )
    header = f"y: [{_fmt(y_lo)}, {_fmt(y_hi)}]  x: [{_fmt(x_lo)}, {_fmt(x_hi)}]"
    return "\n".join([header, legend] + lines)
