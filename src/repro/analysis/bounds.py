"""Sim-vs-analysis bound checking.

Connects the protocol simulator's observables to the paper's analytic
quantities:

* every STs run's slot cost must be <= ``xi(k, q)`` where k is the number
  of messages it transmitted (the paper's accounting: the entry time-leaf
  collision is the static root probe) — and <= ``xi(2, q)``-style bounds
  per Problem P1;
* every TTs run's slot cost must be <= ``xi(F, F)``-grade worst cases and,
  for runs without nested STs, <= ``xi(k, F)`` with k its success count
  (+1 tolerance when a lone message was isolated at the root, since
  ``xi(1, t) = 0`` only covers the no-collision entry);
* every delivered message's latency must be <= its class's ``B_DDCR``
  bound whenever the instance satisfies the feasibility conditions.
"""

from __future__ import annotations

import dataclasses

from repro.core.feasibility import FeasibilityReport, TreeParameters, check_feasibility
from repro.core.search_cost import exact_cost_table
from repro.model.problem import HRTDMProblem
from repro.net.network import RunResult
from repro.net.phy import MediumProfile
from repro.protocols.ddcr.protocol import DDCRProtocol

__all__ = [
    "SearchBoundViolation",
    "check_search_costs",
    "LatencyCheck",
    "check_latency_bounds",
]


@dataclasses.dataclass(frozen=True, slots=True)
class SearchBoundViolation:
    """One search run that exceeded its analytic bound."""

    station_id: int
    kind: str
    started_at: int
    observed: int
    bound: int
    isolated: int


def check_search_costs(
    result: RunResult, config_time=None
) -> list[SearchBoundViolation]:
    """Verify every recorded tree-search cost against Problem P1's xi.

    STs runs isolating k messages are bounded by ``xi(max(k, 2), q)``; TTs
    runs are bounded by ``xi(k', F)`` where k' counts the leaves the run
    touched (successes + nested STs entries), again floored at 2 because
    any collision-triggered run paid the root probe.  Returns all
    violations (empty list == the P1 bounds hold over the whole run).
    """
    violations: list[SearchBoundViolation] = []
    for station in result.stations:
        mac = station.mac
        if not isinstance(mac, DDCRProtocol):
            continue
        q = mac.config.static_q
        static_costs = exact_cost_table(mac.config.static_m, q)
        f = mac.config.time_f
        time_costs = exact_cost_table(mac.config.time_m, f)
        for sts in mac.sts_records:
            k = min(max(sts.successes, 2), q)
            bound = static_costs[k]
            # More STs members than successes cannot happen (every member
            # transmits >= 1), so xi(k, q) with k = successes is the exact
            # worst case for this run.
            if sts.wasted_slots > bound:
                violations.append(
                    SearchBoundViolation(
                        station_id=station.station_id,
                        kind="sts",
                        started_at=sts.started_at,
                        observed=sts.wasted_slots,
                        bound=bound,
                        isolated=sts.successes,
                    )
                )
        for tts in mac.tts_records:
            leaves_touched = tts.successes + tts.nested_sts_runs
            if leaves_touched == 0:
                # Empty search: a collision-triggered one costs at most the
                # m root children; a fresh one costs the root probe.
                bound = (
                    mac.config.time_m if tts.triggered_by_collision else 1
                )
            else:
                # A multi-occupied leaf (nested STs entry) probes like two
                # co-located leaves at maximal depth plus one extra
                # leaf-level empty slot (its resolution slot is accounted
                # to the STs record), so each contributes 2 to the
                # effective leaf count and +1 to the bound.  Dynamic
                # joiners are covered by static equivalence: the DFS is
                # left-to-right and the f*+1 clamp only admits positions
                # at or past the frontier, so the run's probe sequence
                # equals that of a static placement at the final
                # positions.  tests/analysis verify this bound
                # exhaustively on small trees.
                k_eff = tts.successes + 2 * tts.nested_sts_runs
                k = min(max(k_eff, 2), f)
                bound = time_costs[k] + tts.nested_sts_runs
            if tts.wasted_slots > bound:
                violations.append(
                    SearchBoundViolation(
                        station_id=station.station_id,
                        kind="tts",
                        started_at=tts.started_at,
                        observed=tts.wasted_slots,
                        bound=bound,
                        isolated=leaves_touched,
                    )
                )
    return violations


@dataclasses.dataclass(frozen=True, slots=True)
class LatencyCheck:
    """Observed worst latency per class against its B_DDCR bound."""

    class_name: str
    observed_max: int
    bound: float
    samples: int

    @property
    def holds(self) -> bool:
        return self.observed_max <= self.bound

    @property
    def tightness(self) -> float:
        """observed / bound — how much of the analytic budget was used."""
        return self.observed_max / self.bound if self.bound else 0.0


def check_latency_bounds(
    result: RunResult,
    problem: HRTDMProblem,
    medium: MediumProfile,
    trees: TreeParameters,
) -> tuple[FeasibilityReport, list[LatencyCheck]]:
    """Compare observed per-class worst latencies against B_DDCR.

    Returns the feasibility report (so callers know whether the guarantee
    was supposed to hold) plus one :class:`LatencyCheck` per class that
    delivered at least one message.
    """
    report = check_feasibility(problem, medium, trees)
    worst: dict[str, int] = {}
    counts: dict[str, int] = {}
    for record in result.completions:
        if record.dropped:
            continue
        name = record.message.msg_class.name
        worst[name] = max(worst.get(name, 0), record.latency)
        counts[name] = counts.get(name, 0) + 1
    checks = [
        LatencyCheck(
            class_name=name,
            observed_max=worst[name],
            bound=report.by_class(name).bound,
            samples=counts[name],
        )
        for name in sorted(worst)
    ]
    return report, checks
