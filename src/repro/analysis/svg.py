"""Minimal SVG line charts (stdlib only) for regenerating paper figures.

The experiment CLI's ``--svg`` option uses this to write Fig. 1 / Fig. 2
as actual vector figures.  Deliberately small: line series over numeric
axes with ticks, labels, a legend and an optional staircase mode (exact
xi curves are step functions in k).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence
from xml.sax.saxutils import escape

__all__ = ["Series", "line_chart"]

_COLORS = ("#1b6ca8", "#c1403d", "#3a7d44", "#8a5a00", "#6b4fa0", "#444444")


@dataclasses.dataclass(frozen=True, slots=True)
class Series:
    """One plotted series."""

    name: str
    xs: Sequence[float]
    ys: Sequence[float]
    staircase: bool = False

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.name!r}: {len(self.xs)} xs vs {len(self.ys)} ys"
            )
        if not self.xs:
            raise ValueError(f"series {self.name!r} is empty")


def _ticks(lo: float, hi: float, count: int = 6) -> list[float]:
    """Round-ish tick positions covering [lo, hi]."""
    if hi == lo:
        return [lo]
    raw = (hi - lo) / max(1, count - 1)
    magnitude = 10 ** len(str(int(raw))) / 10 if raw >= 1 else 1
    step = max(1.0, round(raw / magnitude) * magnitude)
    first = int(lo // step) * step
    ticks = []
    value = first
    while value <= hi + step / 2:
        if value >= lo - step / 2:
            ticks.append(value)
        value += step
    return ticks or [lo, hi]


def _fmt(value: float) -> str:
    return f"{value:g}"


def line_chart(
    series: Sequence[Series],
    title: str,
    x_label: str,
    y_label: str,
    width: int = 720,
    height: int = 440,
) -> str:
    """Render the series as a complete SVG document string."""
    if not series:
        raise ValueError("need at least one series")
    margin_left, margin_right = 64, 24
    margin_top, margin_bottom = 48, 56
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom
    x_lo = min(min(s.xs) for s in series)
    x_hi = max(max(s.xs) for s in series)
    y_lo = min(0.0, min(min(s.ys) for s in series))
    y_hi = max(max(s.ys) for s in series)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def px(x: float) -> float:
        return margin_left + (x - x_lo) / x_span * plot_w

    def py(y: float) -> float:
        return margin_top + plot_h - (y - y_lo) / y_span * plot_h

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="24" text-anchor="middle" '
        f'font-size="15" font-weight="bold">{escape(title)}</text>',
    ]
    # Axes and ticks.
    axis_color = "#333333"
    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top + plot_h}" '
        f'x2="{margin_left + plot_w}" y2="{margin_top + plot_h}" '
        f'stroke="{axis_color}"/>'
    )
    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top}" x2="{margin_left}" '
        f'y2="{margin_top + plot_h}" stroke="{axis_color}"/>'
    )
    for tick in _ticks(x_lo, x_hi):
        x = px(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{margin_top + plot_h}" x2="{x:.1f}" '
            f'y2="{margin_top + plot_h + 5}" stroke="{axis_color}"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{margin_top + plot_h + 20}" '
            f'text-anchor="middle">{_fmt(tick)}</text>'
        )
    for tick in _ticks(y_lo, y_hi):
        y = py(tick)
        parts.append(
            f'<line x1="{margin_left - 5}" y1="{y:.1f}" x2="{margin_left}" '
            f'y2="{y:.1f}" stroke="{axis_color}"/>'
        )
        parts.append(
            f'<text x="{margin_left - 9}" y="{y + 4:.1f}" '
            f'text-anchor="end">{_fmt(tick)}</text>'
        )
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" '
            f'x2="{margin_left + plot_w}" y2="{y:.1f}" stroke="#dddddd" '
            f'stroke-dasharray="3,4"/>'
        )
    parts.append(
        f'<text x="{margin_left + plot_w / 2}" y="{height - 12}" '
        f'text-anchor="middle">{escape(x_label)}</text>'
    )
    parts.append(
        f'<text x="16" y="{margin_top + plot_h / 2}" text-anchor="middle" '
        f'transform="rotate(-90 16 {margin_top + plot_h / 2})">'
        f"{escape(y_label)}</text>"
    )
    # Series.
    for index, one in enumerate(series):
        color = _COLORS[index % len(_COLORS)]
        points: list[str] = []
        previous_y: float | None = None
        for x, y in zip(one.xs, one.ys):
            if one.staircase and previous_y is not None:
                points.append(f"{px(x):.1f},{py(previous_y):.1f}")
            points.append(f"{px(x):.1f},{py(y):.1f}")
            previous_y = y
        parts.append(
            f'<polyline points="{" ".join(points)}" fill="none" '
            f'stroke="{color}" stroke-width="1.8"/>'
        )
        legend_y = margin_top + 8 + index * 18
        legend_x = margin_left + plot_w - 150
        parts.append(
            f'<line x1="{legend_x}" y1="{legend_y}" x2="{legend_x + 24}" '
            f'y2="{legend_y}" stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{legend_x + 30}" y="{legend_y + 4}">'
            f"{escape(one.name)}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)
