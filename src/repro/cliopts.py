"""Shared argparse parents: one spelling for the flags every CLI takes.

``repro.experiments``, ``repro.tools.bench``, ``repro.tools.check`` and
``repro.experiments sweep`` all accept the same execution knobs.  Each
CLI historically declared its own copies, which let spellings, defaults
and help strings drift; these parent parsers are the single source of
truth — build a CLI with ``parents=[execution_options(), ...]`` and the
flags stay identical everywhere.
"""

from __future__ import annotations

import argparse

from repro.net.engine import ENGINES

__all__ = ["cache_options", "execution_options", "positive_int"]


def positive_int(text: str) -> int:
    """Argparse type for strictly positive integer flags."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def execution_options() -> argparse.ArgumentParser:
    """``--jobs / --seed / --engine / --telemetry`` parent parser."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution")
    group.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run up to N tasks in parallel worker processes (default: 1)",
    )
    group.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="override the root seed of seeded simulation runs",
    )
    group.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="simulation engine (default: auto, or $REPRO_ENGINE); "
        "engines are result-identical, so this only affects speed",
    )
    group.add_argument(
        "--telemetry",
        metavar="FILE.jsonl",
        default=None,
        help="write one telemetry manifest per run as JSON Lines "
        "(inspect with `python -m repro.tools.obs summarize FILE`)",
    )
    return parent


def cache_options() -> argparse.ArgumentParser:
    """``--cache-dir / --no-cache / --force`` parent parser."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("result cache")
    group.add_argument(
        "--cache-dir",
        default=".repro-cache",
        metavar="DIR",
        help="result cache directory (default: %(default)s)",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache entirely",
    )
    group.add_argument(
        "--force",
        action="store_true",
        help="recompute even when a cached result exists",
    )
    return parent


def validate_jobs(parser: argparse.ArgumentParser, jobs: int) -> None:
    if jobs < 1:
        parser.error(f"--jobs must be >= 1, got {jobs}")
