"""CLI: tune CSMA/DDCR tree parameters for an HRTDM instance.

The feasibility conditions depend on the protocol configuration — the
time tree's (F, m), the class width c, and (via the problem) the static
tree.  This tool searches a candidate grid for the configuration that
maximises the binding class's slack, i.e. the most robust provably-correct
dimensioning:

    python -m repro.tools.tune instance.json
    python -m repro.tools.tune instance.json --medium atm-bus

Reports the top configurations and the slack landscape; exit status 2 when
*no* candidate is feasible.
"""

from __future__ import annotations

import argparse
import dataclasses
import math
import sys

from repro.analysis.report import format_table
from repro.core.feasibility import TreeParameters, check_feasibility
from repro.model.problem import HRTDMProblem
from repro.model.serialize import load_problem
from repro.net.phy import MediumProfile
from repro.tools.check import MEDIA

__all__ = ["TuneOutcome", "tune", "main"]

_MS = 1_000_000

#: Candidate time trees: (F, m) with F a power of m.
CANDIDATE_TREES: tuple[tuple[int, int], ...] = (
    (16, 2),
    (16, 4),
    (64, 2),
    (64, 4),
    (64, 8),
    (256, 2),
    (256, 4),
    (1024, 4),
)

#: Class-width factors: c = factor * max_deadline / F (clamped to >= slot).
CANDIDATE_WIDTH_FACTORS: tuple[float, ...] = (1.0, 2.0, 4.0)


@dataclasses.dataclass(frozen=True)
class TuneOutcome:
    """One evaluated configuration."""

    time_f: int
    time_m: int
    class_width: int
    feasible: bool
    worst_slack: float
    binding_class: str

    @property
    def horizon(self) -> int:
        return self.time_f * self.class_width


def tune(
    problem: HRTDMProblem, medium: MediumProfile
) -> list[TuneOutcome]:
    """Evaluate the candidate grid, best (most slack) first.

    The class width enters the FCs only through the protocol's runtime
    behaviour, not the bound formulas, but it determines the scheduling
    horizon c*F which must cover the deadlines — candidates whose horizon
    falls short of the largest deadline are marked infeasible here even
    when B_DDCR alone would pass (the protocol would depend on compressed
    time for every message).
    """
    max_deadline = max(cls.deadline for cls in problem.all_classes())
    outcomes: list[TuneOutcome] = []
    seen: set[tuple[int, int, int]] = set()
    for time_f, time_m in CANDIDATE_TREES:
        trees = TreeParameters(
            time_f=time_f,
            time_m=time_m,
            static_q=problem.static_q,
            static_m=problem.static_m,
        )
        report = check_feasibility(problem, medium, trees)
        for factor in CANDIDATE_WIDTH_FACTORS:
            class_width = max(
                medium.slot_time,
                math.ceil(factor * max_deadline / time_f),
            )
            key = (time_f, time_m, class_width)
            if key in seen:
                continue
            seen.add(key)
            covers = class_width * time_f >= max_deadline
            outcomes.append(
                TuneOutcome(
                    time_f=time_f,
                    time_m=time_m,
                    class_width=class_width,
                    feasible=report.feasible and covers,
                    worst_slack=report.worst.slack,
                    binding_class=report.worst.class_name,
                )
            )
    outcomes.sort(
        key=lambda o: (not o.feasible, -o.worst_slack, o.horizon)
    )
    return outcomes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.tune",
        description="Search CSMA/DDCR tree parameters maximising FC slack.",
    )
    parser.add_argument("instance", help="JSON instance file")
    parser.add_argument(
        "--medium",
        choices=sorted(MEDIA),
        default="gigabit-ethernet",
    )
    parser.add_argument(
        "--top", type=int, default=8, help="configurations to print"
    )
    args = parser.parse_args(argv)
    try:
        problem = load_problem(args.instance)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    outcomes = tune(problem, MEDIA[args.medium])
    rows = [
        [
            outcome.time_f,
            outcome.time_m,
            outcome.class_width,
            round(outcome.horizon / _MS, 3),
            "yes" if outcome.feasible else "no",
            round(outcome.worst_slack / _MS, 3),
            outcome.binding_class,
        ]
        for outcome in outcomes[: args.top]
    ]
    print(
        format_table(
            ["F", "m", "c (bits)", "horizon (ms)", "feasible",
             "slack (ms)", "binding class"],
            rows,
            title=f"Top configurations on {args.medium}",
        )
    )
    best = outcomes[0]
    if not best.feasible:
        print("\nno candidate configuration is feasible")
        return 2
    print(
        f"\nrecommended: F={best.time_f}, m={best.time_m}, "
        f"c={best.class_width} bits "
        f"(horizon {best.horizon / _MS:.2f} ms, "
        f"slack {best.worst_slack / _MS:.2f} ms on "
        f"{best.binding_class})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
