"""Render and compare telemetry manifests (``python -m repro.tools.obs``).

Usage::

    python -m repro.tools.obs summarize run.jsonl
    python -m repro.tools.obs diff baseline.jsonl current.jsonl
    python -m repro.tools.obs diff base.jsonl cur.jsonl --fail-over 25
    python -m repro.tools.obs tail logdir/metrics.jsonl
    python -m repro.tools.obs top logdir/metrics.prom

``summarize`` renders each :class:`~repro.obs.manifest.RunTelemetry`
document in a manifest file as text: provenance header (including any
engine fallback the run took), counters and gauges, histogram quantiles
(p50/p90/p99 via the conservative upper-edge estimate), and the span
call tree with wall-clock timings.

``diff`` pairs documents by ``run_id`` across two manifest files and
reports counter deltas, histogram quantile shifts and span-time ratios.
With ``--fail-over PCT`` it exits 2 when any matched span slowed down by
more than PCT percent (spans shorter than ``--min-seconds`` in the
baseline are ignored as timing noise) — the building block the perf-trend
gate and ad-hoc before/after comparisons share.

``tail`` and ``top`` read the live artifacts a serve run with
``--export-every`` keeps fresh (:mod:`repro.obs.export`): ``tail``
renders the JSONL delta stream one line per export tick (tolerating a
torn final line, since the writer may be mid-append), ``top`` renders
the Prometheus snapshot file as a sorted table.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Iterator

from repro.obs.export import iter_jsonl_tail, parse_prometheus
from repro.obs.manifest import RunTelemetry, read_manifests

__all__ = [
    "build_parser",
    "diff_manifests",
    "main",
    "render_delta_record",
    "render_top",
    "snapshot_quantile",
    "summarize_manifest",
]

#: Quantiles every rendering reports, as (label, q) pairs.
QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
)

#: Baseline spans shorter than this are too noisy to gate on.
DEFAULT_MIN_SECONDS = 0.001


def snapshot_quantile(snap: dict, q: float) -> float | None:
    """Upper-edge quantile estimate from a histogram snapshot dict.

    Mirrors :meth:`repro.obs.instruments.Histogram.quantile`, but works
    on the serialised form found in manifests (no live instrument) —
    including the edge cases: out-of-range ``q`` raises ``ValueError``,
    empty returns ``None``, ``q=0``/``q=1`` return the exact min/max.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    count = snap["count"]
    if count == 0:
        return None
    if q == 0.0:
        return snap["min"]
    if q == 1.0:
        return snap["max"]
    edges = snap["edges"]
    rank = q * (count - 1)
    seen = 0
    for index, bucket in enumerate(snap["counts"]):
        seen += bucket
        if bucket and seen > rank:
            if index >= len(edges):
                return snap["max"]
            return edges[index]
    return snap["max"]


def _format_value(value: float | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return str(int(value))


def _span_lines(span: dict, depth: int = 0) -> Iterator[str]:
    indent = "  " * depth
    seconds = span.get("seconds")
    timing = f"  {seconds:9.4f}s" if seconds is not None else ""
    yield f"    {indent}{span['name']}  x{span['calls']}{timing}"
    for child in span.get("children", ()):
        yield from _span_lines(child, depth + 1)


def summarize_manifest(doc: RunTelemetry) -> str:
    """Multi-line text rendering of one manifest document."""
    lines = [
        f"run {doc.run_id}  [{doc.source}]"
        f"  engine={doc.engine or 'auto'}"
        f"  seed={doc.seed if doc.seed is not None else '-'}"
        f"  rev={doc.git_rev}"
        f"  faults={doc.fault_plan or '-'}"
        f"  wall={doc.wall_seconds:.3f}s"
    ]
    if doc.engine_fallback is not None:
        # Execution-provenance note: the run did not execute on the
        # engine it asked for (batch kernel ineligible, numpy missing...)
        # — worth its own loud line, since quietly slower runs are
        # exactly what perf triage goes hunting for.
        lines.append(f"  engine fallback: {doc.engine_fallback}")
    if doc.counters:
        lines.append("  counters:")
        for name, value in sorted(doc.counters.items()):
            lines.append(f"    {name:<40} {value:>12}")
    if doc.gauges:
        lines.append("  gauges:")
        for name, value in sorted(doc.gauges.items()):
            lines.append(f"    {name:<40} {_format_value(value):>12}")
    if doc.histograms:
        lines.append("  histograms:")
        for name, snap in sorted(doc.histograms.items()):
            quantiles = "  ".join(
                f"{label}={_format_value(snapshot_quantile(snap, q))}"
                for label, q in QUANTILES
            )
            mean = (
                snap["total"] / snap["count"] if snap["count"] else None
            )
            lines.append(
                f"    {name:<40} n={snap['count']:<9} "
                f"mean={_format_value(mean)}  {quantiles}  "
                f"max={_format_value(snap['max'])}"
            )
    if doc.spans:
        lines.append("  spans:")
        for span in doc.spans:
            lines.extend(_span_lines(span))
    return "\n".join(lines)


def _flatten_spans(
    spans: list[dict], prefix: str = ""
) -> dict[str, dict]:
    """Span forest -> ``{"run/spec/execute": span_dict, ...}``."""
    flat: dict[str, dict] = {}
    for span in spans:
        path = f"{prefix}{span['name']}"
        flat[path] = span
        flat.update(_flatten_spans(span.get("children", ()), f"{path}/"))
    return flat


def diff_manifests(
    baseline: RunTelemetry,
    current: RunTelemetry,
    fail_over: float | None = None,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> tuple[str, list[str]]:
    """Compare two documents; returns (report text, span regressions).

    Regressions are matched spans whose wall time grew by more than
    ``fail_over`` percent (empty when ``fail_over`` is ``None``); the
    caller decides what an exit code owes them.
    """
    lines = [f"run {baseline.run_id}:"]
    changed = False
    if baseline.engine_fallback != current.engine_fallback:
        changed = True
        lines.append(
            f"  engine fallback: "
            f"{baseline.engine_fallback or '-'} -> "
            f"{current.engine_fallback or '-'}"
        )
    names = sorted(set(baseline.counters) | set(current.counters))
    for name in names:
        a = baseline.counters.get(name, 0)
        b = current.counters.get(name, 0)
        if a != b:
            changed = True
            lines.append(f"  counter {name:<38} {a:>12} -> {b:<12} ({b - a:+d})")
    for name in sorted(set(baseline.gauges) | set(current.gauges)):
        a = baseline.gauges.get(name, 0)
        b = current.gauges.get(name, 0)
        if a != b:
            changed = True
            lines.append(
                f"  gauge   {name:<38} "
                f"{_format_value(a):>12} -> {_format_value(b)}"
            )
    for name in sorted(set(baseline.histograms) | set(current.histograms)):
        snap_a = baseline.histograms.get(name)
        snap_b = current.histograms.get(name)
        if snap_a is None or snap_b is None:
            changed = True
            lines.append(
                f"  hist    {name:<38} "
                f"{'missing' if snap_a is None else 'present'} -> "
                f"{'missing' if snap_b is None else 'present'}"
            )
            continue
        shifts = []
        for label, q in QUANTILES:
            qa = snapshot_quantile(snap_a, q)
            qb = snapshot_quantile(snap_b, q)
            if qa != qb:
                shifts.append(
                    f"{label} {_format_value(qa)} -> {_format_value(qb)}"
                )
        if snap_a["count"] != snap_b["count"]:
            shifts.append(f"n {snap_a['count']} -> {snap_b['count']}")
        if shifts:
            changed = True
            lines.append(f"  hist    {name:<38} {', '.join(shifts)}")
    regressions: list[str] = []
    spans_a = _flatten_spans(baseline.spans)
    spans_b = _flatten_spans(current.spans)
    for path in sorted(set(spans_a) & set(spans_b)):
        sec_a = spans_a[path].get("seconds")
        sec_b = spans_b[path].get("seconds")
        if sec_a is None or sec_b is None or sec_a < min_seconds:
            continue
        ratio = sec_b / sec_a
        lines.append(
            f"  span    {path:<38} {sec_a:9.4f}s -> {sec_b:9.4f}s "
            f"(x{ratio:.2f})"
        )
        if fail_over is not None and ratio > 1.0 + fail_over / 100.0:
            regressions.append(
                f"{baseline.run_id}: span {path} regressed "
                f"{(ratio - 1.0) * 100.0:.1f}% "
                f"({sec_a:.4f}s -> {sec_b:.4f}s, limit {fail_over:.0f}%)"
            )
    if not changed and len(lines) == 1:
        lines.append("  no differences")
    return "\n".join(lines), regressions


def render_delta_record(record: dict) -> str:
    """One ``obs tail`` line for one delta-stream record."""
    parts = [f"tick {record.get('tick', '?')}"]
    for name, (delta, total) in sorted(
        record.get("counters", {}).items()
    ):
        parts.append(f"{name} +{delta}={total}")
    for name, value in sorted(record.get("gauges", {}).items()):
        parts.append(f"{name}={_format_value(value)}")
    for name, summary in sorted(record.get("histograms", {}).items()):
        quantiles = "  ".join(
            f"{label}={_format_value(summary[label])}"
            for label in ("p50", "p99")
            if label in summary
        )
        parts.append(
            f"{name} n={summary.get('count')} "
            f"(+{summary.get('delta')})  {quantiles}".rstrip()
        )
    return "  ".join(parts)


def render_top(metrics: dict[str, dict]) -> list[str]:
    """``obs top`` table lines for one parsed Prometheus snapshot."""
    lines: list[str] = []
    for name in sorted(metrics):
        entry = metrics[name]
        if entry.get("type") == "histogram":
            count = entry.get("count")
            total = entry.get("sum")
            mean = (
                total / count
                if count and total is not None
                else None
            )
            lines.append(
                f"{name:<48} histogram  n={_format_value(count)}  "
                f"sum={_format_value(total)}  "
                f"mean={_format_value(mean)}"
            )
        else:
            lines.append(
                f"{name:<48} {entry.get('type', 'untyped'):<9}  "
                f"{_format_value(entry.get('value'))}"
            )
    return lines


def _cmd_tail(args: argparse.Namespace) -> int:
    try:
        records = list(iter_jsonl_tail(args.stream))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.last is not None:
        records = records[-args.last:]
    for record in records:
        print(render_delta_record(record))
    print(f"{len(records)} export record(s) in {args.stream}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    try:
        text = open(args.prom_file, encoding="utf-8").read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    metrics = parse_prometheus(text)
    for line in render_top(metrics):
        print(line)
    print(f"{len(metrics)} metric(s) in {args.prom_file}")
    return 0


def _pair_by_run_id(
    baseline: list[RunTelemetry], current: list[RunTelemetry]
) -> list[tuple[RunTelemetry, RunTelemetry]]:
    """First-occurrence pairing by run_id, in baseline order."""
    by_id = {}
    for doc in current:
        by_id.setdefault(doc.run_id, doc)
    pairs = []
    seen = set()
    for doc in baseline:
        if doc.run_id in seen:
            continue
        seen.add(doc.run_id)
        other = by_id.get(doc.run_id)
        if other is not None:
            pairs.append((doc, other))
    return pairs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.obs",
        description="Render and compare telemetry manifests.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    summarize = commands.add_parser(
        "summarize", help="render a manifest file as text"
    )
    summarize.add_argument("path", help="JSONL manifest file")
    diff = commands.add_parser(
        "diff", help="compare two manifest files run-by-run"
    )
    diff.add_argument("baseline", help="baseline JSONL manifest file")
    diff.add_argument("current", help="current JSONL manifest file")
    diff.add_argument(
        "--fail-over",
        type=float,
        default=None,
        metavar="PCT",
        help=(
            "exit 2 when any matched span's wall time regressed by more "
            "than PCT percent"
        ),
    )
    diff.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        metavar="S",
        help=(
            "ignore spans shorter than S seconds in the baseline "
            "(timing noise; default: %(default)s)"
        ),
    )
    tail = commands.add_parser(
        "tail", help="render a live metrics delta stream (metrics.jsonl)"
    )
    tail.add_argument("stream", help="JSONL delta-stream file")
    tail.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only the newest N export records (default: all)",
    )
    top = commands.add_parser(
        "top", help="render a Prometheus snapshot file (metrics.prom)"
    )
    top.add_argument("prom_file", help="Prometheus text-exposition file")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "tail":
        return _cmd_tail(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "summarize":
        try:
            documents = read_manifests(args.path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for doc in documents:
            print(summarize_manifest(doc))
            print()
        print(f"{len(documents)} manifest(s) in {args.path}")
        return 0
    # diff
    try:
        baseline = read_manifests(args.baseline)
        current = read_manifests(args.current)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    pairs = _pair_by_run_id(baseline, current)
    if not pairs:
        print("no runs in common between the two manifests", file=sys.stderr)
        return 1
    all_regressions: list[str] = []
    for doc_a, doc_b in pairs:
        report, regressions = diff_manifests(
            doc_a,
            doc_b,
            fail_over=args.fail_over,
            min_seconds=args.min_seconds,
        )
        print(report)
        all_regressions.extend(regressions)
    unmatched = {d.run_id for d in baseline} ^ {d.run_id for d in current}
    if unmatched:
        print(f"unmatched run ids: {', '.join(sorted(unmatched))}")
    if all_regressions:
        for regression in all_regressions:
            print(f"REGRESSION: {regression}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
