"""Operator-facing command-line tools."""
