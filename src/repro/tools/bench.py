"""CLI: micro-benchmark the library's hot primitives.

Measures throughput (operations per second) of the same primitives the
pytest-benchmark suite under ``benchmarks/`` tracks — the xi DP table, the
divide-and-conquer recursion, the closed form, the reference search, one
feasibility-bound evaluation, and raw channel simulation slot rate on each
engine — and writes a machine-readable report::

    python -m repro.tools.bench                    # writes BENCH_micro.json
    python -m repro.tools.bench --smoke            # one quick pass per bench
    python -m repro.tools.bench --only channel_slot_rate_16
    python -m repro.tools.bench --output /tmp/bench.json

The report records the git revision and the engine each bench ran on, so
successive runs are comparable across commits (``BENCH_micro.json`` at the
repo root is the conventional landing spot; it is overwritten, not
appended).  Every write also appends one JSONL line to
``BENCH_history.jsonl`` next to the report (``--history`` overrides,
``--no-history`` skips), which the ``check --ci`` perf-trend gate reads:
it compares the current run against the median of the last N same-mode
history entries, so a gradual hot-path slowdown fails CI even when each
individual commit looks like noise.

``--smoke`` is the CI-sized variant (one repetition, smaller simulation
horizon); ``python -m repro.tools.check --ci`` runs it inline as a
perf-smoke step so throughput regressions surface next to correctness.

Timing: every bench runs one untimed warm-up pass, then ``repeats``
measured passes; the report carries both the best (min) and median
sample, and records the repeat count actually used.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import json
import pathlib
import platform
import statistics
import subprocess
import sys
import time
import typing
from collections.abc import Callable

from repro.cliopts import execution_options
from repro.net.engine import default_engine, use_engine

__all__ = [
    "BENCHES",
    "BenchResult",
    "append_history",
    "history_entry",
    "load_history",
    "run_benches",
    "main",
]

_MS = 1_000_000


@dataclasses.dataclass(frozen=True)
class BenchResult:
    """One bench's outcome: best-of-N and median-of-N throughput.

    ``seconds``/``ops_per_sec`` are the best (minimum-time) sample —
    the least-noise estimate of what the code can do; the median pair
    is the robust estimate trend gates should compare.
    """

    name: str
    engine: str | None
    unit: str
    ops: float
    seconds: float
    ops_per_sec: float
    repeats: int
    median_seconds: float = 0.0
    median_ops_per_sec: float = 0.0

    def describe(self) -> str:
        engine = f" [{self.engine}]" if self.engine else ""
        line = (
            f"{self.name:<28}{engine:<11} "
            f"{self.ops_per_sec:>14,.0f} {self.unit}/s"
        )
        if self.repeats > 1:
            line += (
                f"  (median {self.median_ops_per_sec:,.0f}, "
                f"n={self.repeats})"
            )
        return line


#: The xi-table shape matrix: (m, n) with t = m**n leaves — two ~1024-leaf
#: shapes with different branching plus a ternary 729-leaf one, all above
#: the persistence threshold so the disk bench exercises real store hits.
_XI_SHAPES: tuple[tuple[int, int], ...] = ((2, 10), (3, 6), (4, 5))

_XI_DISK_DIR: "str | None" = None


def _xi_disk_store():
    """A process-lifetime temp-dir store for the warm-disk bench."""
    import atexit
    import shutil
    import tempfile

    from repro.core.xi_store import XiTableStore

    global _XI_DISK_DIR
    if _XI_DISK_DIR is None:
        _XI_DISK_DIR = tempfile.mkdtemp(prefix="repro-bench-xi-")
        atexit.register(shutil.rmtree, _XI_DISK_DIR, ignore_errors=True)
    return XiTableStore(_XI_DISK_DIR)


def _bench_xi_dp_table_cold(smoke: bool, seed: int = 0) -> tuple[float, str]:
    """Ground-truth DP over Eq. 1, every cache defeated.

    Clears the in-memory LRU and disables the persistent store, so each
    pass pays the full O(m t^2) DP for every shape — the rate a brand-new
    machine with a cleared ``.repro-cache`` would see."""
    from repro.core.search_cost import _cost_tuple
    from repro.core.xi_store import use_xi_store

    _cost_tuple.cache_clear()
    with use_xi_store(None):
        for m, n in _XI_SHAPES:
            table = _cost_tuple(m, n)
            assert table[2] > 0
    return float(len(_XI_SHAPES)), "tables"


def _bench_xi_dp_table_warm_mem(smoke: bool, seed: int = 0) -> tuple[float, str]:
    """The same shapes served from the in-memory LRU (steady-state rate)."""
    from repro.core.search_cost import _cost_tuple
    from repro.core.xi_store import use_xi_store

    loops = 50 if smoke else 300
    with use_xi_store(None):
        for _ in range(loops):
            for m, n in _XI_SHAPES:
                table = _cost_tuple(m, n)
        assert table[2] > 0
    return float(loops * len(_XI_SHAPES)), "tables"


def _bench_xi_dp_table_warm_disk(smoke: bool, seed: int = 0) -> tuple[float, str]:
    """The same shapes reloaded from the persistent store.

    Clears the LRU each pass so every lookup goes to disk — the rate a
    fresh process (sweep-shard worker, CLI invocation) sees once the
    machine's store is primed.  The untimed warm-up pass does the
    priming: its lookups miss, compute, and write."""
    from repro.core.search_cost import _cost_tuple
    from repro.core.xi_store import use_xi_store

    _cost_tuple.cache_clear()
    with use_xi_store(_xi_disk_store()):
        for m, n in _XI_SHAPES:
            table = _cost_tuple(m, n)
            assert table[2] > 0
    return float(len(_XI_SHAPES)), "tables"


#: Lazy (problems, medium, trees) for the feasibility-grid benches, built
#: once so the timed passes measure evaluation only, not instance setup.
_FEAS_GRID_CACHE: "dict[bool, tuple] | None" = None


def _feas_grid_workload(smoke: bool):
    from repro.core.feasibility import TreeParameters
    from repro.model.workloads import uniform_problem
    from repro.net.phy import GIGABIT_ETHERNET

    global _FEAS_GRID_CACHE
    if _FEAS_GRID_CACHE is None:
        _FEAS_GRID_CACHE = {}
    if smoke not in _FEAS_GRID_CACHE:
        scales = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
        deadlines = (2 * _MS, 4 * _MS, 8 * _MS) if smoke else (
            2 * _MS, 4 * _MS, 8 * _MS, 16 * _MS, 32 * _MS, 64 * _MS
        )
        problems = [
            uniform_problem(
                z=128, length=8_000, deadline=deadline, a=1, w=4 * _MS,
                scale=scale,
            )
            for deadline in deadlines
            for scale in scales
        ]
        trees = TreeParameters(
            time_f=64, time_m=4,
            static_q=problems[0].static_q, static_m=problems[0].static_m,
        )
        _FEAS_GRID_CACHE[smoke] = (problems, GIGABIT_ETHERNET, trees)
    return _FEAS_GRID_CACHE[smoke]


def _bench_feasibility_grid(smoke: bool, seed: int = 0) -> tuple[float, str]:
    """Vectorized FC evaluation of a deadline x scale grid (128 sources)."""
    from repro.core.feas_grid import check_feasibility_batch

    problems, medium, trees = _feas_grid_workload(smoke)
    reports = check_feasibility_batch(problems, medium, trees)
    assert all(report.classes for report in reports)
    return float(len(reports)), "reports"


def _bench_feasibility_grid_scalar(
    smoke: bool, seed: int = 0
) -> tuple[float, str]:
    """The same grid through scalar ``check_feasibility`` — the baseline
    the vectorized bench is measured against."""
    from repro.core.feasibility import check_feasibility

    problems, medium, trees = _feas_grid_workload(smoke)
    reports = [
        check_feasibility(problem, medium, trees) for problem in problems
    ]
    assert all(report.classes for report in reports)
    return float(len(reports)), "reports"


def _bench_divide_conquer_table(
    smoke: bool, seed: int = 0
) -> tuple[float, str]:
    """Eq. 2-4 route for the same 1024-leaf shape."""
    from repro.core.divide_conquer import _dc_tuple, divide_conquer_table

    _dc_tuple.cache_clear()
    table = divide_conquer_table(4, 1024)
    assert table[2] == 19
    return 1.0, "tables"


def _bench_closed_form_grid(smoke: bool, seed: int = 0) -> tuple[float, str]:
    """Eq. 10 evaluated over every k of a 4096-leaf binary tree."""
    from repro.core.closed_form import xi_closed_form

    t = 512 if smoke else 4096
    values = [xi_closed_form(k, t, 2) for k in range(t + 1)]
    assert values[2] > 0
    return float(t + 1), "evals"


def _bench_simulate_search(smoke: bool, seed: int = 0) -> tuple[float, str]:
    """Reference search semantics on a worst-case 64-of-256 placement."""
    from repro.core.search_cost import simulate_search, worst_case_placement

    placement = worst_case_placement(64, 256, 4)
    outcome = simulate_search(placement, 256, 4)
    assert outcome.cost > 0
    return float(outcome.total_slots), "slots"


def _bench_latency_bound(smoke: bool, seed: int = 0) -> tuple[float, str]:
    """One B_DDCR evaluation on a 16-source instance."""
    from repro.core.feasibility import TreeParameters, latency_bound
    from repro.model.workloads import uniform_problem
    from repro.net.phy import GIGABIT_ETHERNET

    problem = uniform_problem(z=16, deadline=10 * _MS, a=2, w=4 * _MS)
    trees = TreeParameters(
        time_f=64, time_m=4,
        static_q=problem.static_q, static_m=problem.static_m,
    )
    source = problem.sources[0]
    target = source.message_classes[0]
    bound = latency_bound(target, source, problem, GIGABIT_ETHERNET, trees)
    assert bound.bound > 0
    return 1.0, "bounds"


def _channel_slot_rate(
    stations: int,
    engine: str,
    smoke: bool,
    monitors: bool = False,
    telemetry: bool = False,
    tracer: bool = False,
    seed: int = 0,
) -> tuple[float, str]:
    """DDCR simulation throughput, in channel rounds per second."""
    import contextlib

    from repro.model.workloads import uniform_problem
    from repro.net.network import NetworkSimulation, Scenario
    from repro.net.phy import ideal_medium
    from repro.protocols.ddcr import DDCRConfig, DDCRProtocol

    problem = uniform_problem(
        z=stations, length=1_000, deadline=400_000, a=1, w=200_000
    )
    config = DDCRConfig(
        time_f=16, time_m=2, class_width=65_536,
        static_q=problem.static_q, static_m=problem.static_m,
    )
    registry = None
    if telemetry:
        from repro.obs.instruments import Telemetry

        registry = Telemetry()
    scope = contextlib.nullcontext()
    recorder = None
    if tracer:
        # The channel picks the flight recorder up ambiently at
        # construction (NetworkSimulation has no tracer parameter), so
        # scope it around build+run — the same way a traced serve
        # session's counter-check arms it.
        from repro.obs.context import use_tracer
        from repro.obs.tracer import FlightRecorder

        recorder = FlightRecorder()
        scope = use_tracer(recorder)
    with scope:
        simulation = NetworkSimulation.from_scenario(
            Scenario(
                problem=problem,
                medium=ideal_medium(slot_time=64),
                protocol_factory=lambda s: DDCRProtocol(config),
                root_seed=seed,
                engine=engine,
                monitors=monitors,
                telemetry=registry,
            )
        )
        result = simulation.run(200_000 if smoke else 1_000_000)
    assert result.delivered > 0
    if monitors:
        assert result.invariants is not None and result.invariants.ok
    if telemetry:
        assert result.telemetry is not None
        assert result.telemetry.counters["slots/success"] > 0
    if tracer:
        assert recorder is not None and recorder.emitted > 0
    return float(result.stats.rounds), "rounds"


def _make_slot_rate_bench(
    stations: int, engine: str
) -> "Callable[[bool, int], tuple[float, str]]":
    return lambda smoke, seed=0: _channel_slot_rate(
        stations, engine, smoke, seed=seed
    )


#: Lazy warm admission service (128 classes full-size, 32 smoke) plus a
#: monotone request-seq counter, so the timed passes measure decisions
#: only, not bootstrap.  Keyed by smoke like ``_FEAS_GRID_CACHE``.
_SERVE_CACHE: "dict[bool, list] | None" = None


def _serve_problem(smoke: bool):
    from repro.model.workloads import uniform_problem

    # Comfortably feasible at z classes so churn rejoins always re-admit
    # (a reject would shrink the set and change what later passes time).
    return uniform_problem(
        z=32 if smoke else 128, length=8_000, deadline=96 * _MS, a=1,
        w=48 * _MS,
    )


def _serve_bootstrap(problem, next_seq: int = 0):
    """A service with every class of ``problem`` admitted through the
    normal join path; returns ``(service, next_seq)``."""
    from repro.serve.model import Request
    from repro.serve.service import AdmissionService, ServeConfig

    service = AdmissionService(ServeConfig(static_q=problem.static_q))
    for source in problem.sources:
        for msg in source.message_classes:
            decision = service.handle(Request(
                seq=next_seq, kind="join", source_id=source.source_id,
                name=msg.name, nu=source.nu, length=msg.length,
                deadline=msg.deadline, a=msg.bound.a, w=msg.bound.w,
            ))
            assert decision.verdict == "admit", decision.reason
            next_seq += 1
    return service, next_seq


def _serve_workload(smoke: bool):
    global _SERVE_CACHE
    if _SERVE_CACHE is None:
        _SERVE_CACHE = {}
    if smoke not in _SERVE_CACHE:
        problem = _serve_problem(smoke)
        service, next_seq = _serve_bootstrap(problem)
        _SERVE_CACHE[smoke] = [problem, service, next_seq]
    return _SERVE_CACHE[smoke]


def _bench_admission_decisions(
    smoke: bool, seed: int = 0
) -> tuple[float, str]:
    """Steady-state admit/reject throughput at the 128-class point.

    Mass-conserving churn against the prebuilt warm service: half the
    sources leave and immediately rejoin (full remove + add + feasibility
    consult each), a quarter renegotiate their bound in place — so every
    pass starts and ends at the identical 128-class state and passes are
    comparable."""
    from repro.serve.model import Request

    state = _serve_workload(smoke)
    problem, service, next_seq = state
    sources = problem.sources
    half = len(sources) // 2
    decisions = 0
    for source in sources[:half]:
        msg = source.message_classes[0]
        for request in (
            Request(seq=next_seq, kind="leave",
                    source_id=source.source_id, name=msg.name),
            Request(seq=next_seq + 1, kind="join",
                    source_id=source.source_id, name=msg.name, nu=source.nu,
                    length=msg.length, deadline=msg.deadline,
                    a=msg.bound.a, w=msg.bound.w),
        ):
            assert service.handle(request).applied
            next_seq += 1
            decisions += 1
    for source in sources[half:half + half // 2]:
        msg = source.message_classes[0]
        request = Request(seq=next_seq, kind="rescale",
                          source_id=source.source_id, name=msg.name,
                          a=msg.bound.a, w=msg.bound.w)
        assert service.handle(request).verdict == "admit"
        next_seq += 1
        decisions += 1
    state[2] = next_seq
    return float(decisions), "decisions"


def _bench_admission_bootstrap_cold(
    smoke: bool, seed: int = 0
) -> tuple[float, str]:
    """Cold tier: a fresh service admitting the whole 128-class roster.

    Each pass rebuilds the service from nothing and pays the per-join
    incremental feasibility consult at every intermediate size — the rate
    an operator sees bringing a city segment up from empty."""
    problem = _serve_problem(smoke)
    service, next_seq = _serve_bootstrap(problem)
    assert service.class_count == len(problem.sources)
    return float(next_seq), "decisions"


def _bench_invariant_overhead(smoke: bool, seed: int = 0) -> tuple[float, str]:
    """The 16-station fastloop workload with the standard monitor suite
    armed; compare against ``channel_slot_rate_16_fastloop`` (the same
    workload, monitors off) for the per-round cost of online invariant
    checking."""
    return _channel_slot_rate(16, "fastloop", smoke, monitors=True, seed=seed)


def _bench_telemetry_overhead(smoke: bool, seed: int = 0) -> tuple[float, str]:
    """The 16-station fastloop workload with a live telemetry registry
    (slot counters plus per-class latency histograms recording every
    round); compare against ``channel_slot_rate_16_fastloop`` for the
    per-round cost of enabled telemetry.  The disabled case needs no
    bench of its own: ``channel_slot_rate_16_fastloop`` *is* the
    NULL_TELEMETRY path."""
    return _channel_slot_rate(16, "fastloop", smoke, telemetry=True, seed=seed)


def _bench_tracer_overhead(smoke: bool, seed: int = 0) -> tuple[float, str]:
    """The 16-station fastloop workload with an armed flight recorder
    (one ``channel/slot`` event appended to the bounded ring every
    round); compare against ``channel_slot_rate_16_fastloop`` for the
    per-round cost of enabled tracing.  As with telemetry, the disabled
    case *is* the baseline bench — the NULL_TRACER hoisted gate."""
    return _channel_slot_rate(16, "fastloop", smoke, tracer=True, seed=seed)


def _bench_fabric_end_to_end(smoke: bool, seed: int = 0) -> tuple[float, str]:
    """Staged fabric throughput: a 4-segment bridged DDCR chain, 64
    local stations per segment, in channel rounds per second summed
    over the segments.  Measures the whole staged pipeline — per-segment
    runs (batch kernel eligible), bridge journaling and journey
    matching — so regressions anywhere in the fabric path surface here."""
    from repro.experiments.harness import build_chain_topology
    from repro.net.fabric import Fabric
    from repro.net.phy import ideal_medium

    topology, _ = build_chain_topology(
        segments=4,
        z=64,
        medium=ideal_medium(slot_time=64),
        deadline=2_000_000,
        a=1,
        w=1_000_000,
        forwarding_latency=2_048,
        root_seed=seed,
    )
    result = Fabric(topology).run(1_000_000 if smoke else 4_000_000)
    assert result.delivered(), "no journey traversed the chain"
    rounds = sum(seg.stats.rounds for seg in result.segments.values())
    return float(rounds), "rounds"


#: name -> (engine or None, bench callable).  A bench callable performs one
#: measured operation batch — ``(smoke, seed)`` in, ``(ops_done, unit)``
#: out; analytic benches ignore the seed.
BENCHES: dict[
    str, tuple[str | None, Callable[[bool, int], tuple[float, str]]]
] = {
    # Cold vs warm on the same shape matrix: the spread is the payoff of
    # the cache tiers (warm_mem = LRU hit, warm_disk = persistent-store
    # reload in a fresh process).
    "xi_dp_table_cold": (None, _bench_xi_dp_table_cold),
    "xi_dp_table_warm_mem": (None, _bench_xi_dp_table_warm_mem),
    "xi_dp_table_warm_disk": (None, _bench_xi_dp_table_warm_disk),
    "divide_conquer_table": (None, _bench_divide_conquer_table),
    "closed_form_grid": (None, _bench_closed_form_grid),
    "simulate_search": (None, _bench_simulate_search),
    "latency_bound": (None, _bench_latency_bound),
    "feasibility_grid": (None, _bench_feasibility_grid),
    "feasibility_grid_scalar": (None, _bench_feasibility_grid_scalar),
    # Admission service: cold bootstrap vs steady-state churn on the same
    # 128-class operating point (the serve layer's headline rate).
    "admission_bootstrap_cold": (None, _bench_admission_bootstrap_cold),
    "admission_decisions_per_sec": (None, _bench_admission_decisions),
    # The scaling story in one grid: per-station Python call overhead
    # makes des/fastloop degrade linearly in z (fastloop loses its edge
    # by z=16 already), while the batch kernel's struct-of-arrays slot
    # stays near-constant — the 64/256 sizes exist to keep that claim
    # measured, not asserted.
    **{
        f"channel_slot_rate_{stations}_{engine}": (
            engine,
            _make_slot_rate_bench(stations, engine),
        )
        for stations in (4, 16, 64, 256)
        for engine in ("des", "fastloop", "batch")
    },
    "invariant_overhead": ("fastloop", _bench_invariant_overhead),
    "telemetry_overhead": ("fastloop", _bench_telemetry_overhead),
    "tracer_overhead": ("fastloop", _bench_tracer_overhead),
    # End-to-end fabric throughput: the staged multi-segment pipeline
    # (4 bridged segments x 64 stations) including bridge bookkeeping.
    "fabric_end_to_end": (None, _bench_fabric_end_to_end),
}


def run_benches(
    names: list[str] | None = None,
    smoke: bool = False,
    repeats: int | None = None,
    seed: int = 0,
    telemetry_sink: "list | None" = None,
) -> list[BenchResult]:
    """Run the selected benches; best-of-``repeats`` throughput each.

    ``seed`` feeds the simulation benches' ``root_seed`` (analytic
    benches ignore it).  When ``telemetry_sink`` is a list, every bench
    runs under a fresh ambient telemetry registry and one
    :class:`~repro.obs.manifest.RunTelemetry` manifest per bench is
    appended to it — note the armed instruments then contribute to the
    measured time.
    """
    selected = list(BENCHES) if not names else names
    unknown = [name for name in selected if name not in BENCHES]
    if unknown:
        raise KeyError(
            f"unknown bench(es): {', '.join(unknown)} "
            f"(known: {', '.join(BENCHES)})"
        )
    if repeats is None:
        repeats = 1 if smoke else 3
    results: list[BenchResult] = []
    for name in selected:
        engine, bench = BENCHES[name]
        registry = None
        scope: typing.ContextManager = contextlib.nullcontext()
        if telemetry_sink is not None:
            from repro.obs.context import use_telemetry
            from repro.obs.instruments import Telemetry

            registry = Telemetry()
            scope = use_telemetry(registry)
        with use_engine(engine), scope:
            bench(smoke, seed)  # warm-up: fill caches, import lazily
            samples: list[float] = []
            ops = 0.0
            unit = "ops"
            for _ in range(repeats):
                started = time.perf_counter()
                ops, unit = bench(smoke, seed)
                samples.append(time.perf_counter() - started)
        best_seconds = min(samples)
        if registry is not None and telemetry_sink is not None:
            from repro.obs.manifest import RunTelemetry

            telemetry_sink.append(
                RunTelemetry.from_registry(
                    registry,
                    run_id=f"bench/{name}",
                    engine=engine,
                    seed=seed,
                    source="bench",
                    wall_seconds=sum(samples),
                )
            )
        median_seconds = statistics.median(samples)
        results.append(
            BenchResult(
                name=name,
                engine=engine,
                unit=unit,
                ops=ops,
                seconds=best_seconds,
                ops_per_sec=ops / best_seconds if best_seconds > 0 else 0.0,
                repeats=repeats,
                median_seconds=median_seconds,
                median_ops_per_sec=(
                    ops / median_seconds if median_seconds > 0 else 0.0
                ),
            )
        )
    return results


def _git_rev() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown"
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else "unknown"


def _default_output() -> pathlib.Path:
    """``BENCH_micro.json`` at the repo root (fallback: current directory)."""
    root = pathlib.Path(__file__).resolve().parents[3]
    if (root / "src" / "repro").is_dir():
        return root / "BENCH_micro.json"
    return pathlib.Path.cwd() / "BENCH_micro.json"


def report_payload(
    results: list[BenchResult], smoke: bool
) -> dict[str, object]:
    """The JSON document ``BENCH_micro.json`` holds."""
    return {
        "schema": 1,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "default_engine": default_engine(),
        "smoke": smoke,
        "benches": [dataclasses.asdict(result) for result in results],
    }


def history_entry(results: list[BenchResult], smoke: bool) -> dict[str, object]:
    """One JSONL history line: provenance plus per-bench throughput.

    ``benches`` maps name to the *median* ops/sec — the robust sample the
    perf-trend gate medians again across entries — with the best sample
    kept alongside for inspection.
    """
    return {
        "schema": 1,
        "time": time.time(),
        "git_rev": _git_rev(),
        "smoke": smoke,
        "benches": {
            result.name: {
                "ops_per_sec": result.median_ops_per_sec or result.ops_per_sec,
                "best_ops_per_sec": result.ops_per_sec,
                "repeats": result.repeats,
            }
            for result in results
        },
    }


def append_history(
    path: str | pathlib.Path, entry: dict[str, object]
) -> None:
    """Append one run's entry to the JSONL history file."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def load_history(path: str | pathlib.Path) -> list[dict]:
    """All history entries, oldest first; missing file -> empty, and
    unparsable lines are skipped (a truncated append must not brick CI)."""
    entries: list[dict] = []
    try:
        handle = open(path, encoding="utf-8")
    except OSError:
        return entries
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                entries.append(entry)
    return entries


def default_history_path() -> pathlib.Path:
    """``BENCH_history.jsonl`` next to the default report location."""
    return _default_output().parent / "BENCH_history.jsonl"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.bench",
        description="Micro-benchmark the library's hot primitives.",
        parents=[execution_options()],
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="run only this bench (repeatable); default: all",
    )
    parser.add_argument(
        "--list", action="store_true", help="list bench names and exit"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized pass: one repetition, smaller workloads",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="N",
        help="repetitions per bench (default: 3, or 1 with --smoke)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="report path (default: BENCH_micro.json at the repo root)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print results only; do not write the report file",
    )
    parser.add_argument(
        "--history",
        metavar="FILE",
        default=None,
        help=(
            "JSONL history file each run appends to (default: "
            "BENCH_history.jsonl next to the report)"
        ),
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to the history file",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name, (engine, _) in BENCHES.items():
            suffix = f"  (engine: {engine})" if engine else ""
            print(f"{name}{suffix}")
        return 0
    if args.repeats is not None and args.repeats < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")
    if args.jobs > 1:
        # Shared flag, bench-specific semantics: concurrent benches
        # would time each other's scheduler noise.
        print(
            "benches are timing-sensitive and always run serially; "
            "ignoring --jobs",
            file=sys.stderr,
        )
    telemetry_sink: list | None = (
        [] if args.telemetry is not None else None
    )
    try:
        with use_engine(args.engine):
            results = run_benches(
                names=args.only,
                smoke=args.smoke,
                repeats=args.repeats,
                seed=args.seed if args.seed is not None else 0,
                telemetry_sink=telemetry_sink,
            )
    except KeyError as error:
        parser.error(str(error.args[0]))
    for result in results:
        print(result.describe())
    if telemetry_sink is not None:
        from repro.obs.manifest import write_manifests

        written = write_manifests(args.telemetry, telemetry_sink)
        print(
            f"wrote {written} telemetry manifest(s) to {args.telemetry}",
            file=sys.stderr,
        )
    if not args.no_write:
        output = (
            pathlib.Path(args.output)
            if args.output is not None
            else _default_output()
        )
        output.write_text(
            json.dumps(report_payload(results, args.smoke), indent=2) + "\n"
        )
        print(f"wrote {output}", file=sys.stderr)
        if telemetry_sink is not None and not args.no_history:
            # Armed instruments skew throughput; keep such runs out of
            # the history the perf-trend gate medians over.
            print(
                "telemetry-armed run: not appending to bench history",
                file=sys.stderr,
            )
        elif not args.no_history:
            history = (
                pathlib.Path(args.history)
                if args.history is not None
                else output.parent / "BENCH_history.jsonl"
            )
            append_history(history, history_entry(results, args.smoke))
            print(f"appended to {history}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
