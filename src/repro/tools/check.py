"""CLI: check an HRTDM instance's feasibility conditions.

The operator workflow the paper envisions (section 2.2: "By computing the
FCs, it is possible to tell whether or not any quantified instantiation of
the HRTDM problem is feasible with our solution"):

    python -m repro.tools.check instance.json
    python -m repro.tools.check instance.json --medium classic-ethernet
    python -m repro.tools.check instance.json --time-f 256 --time-m 4
    python -m repro.tools.check instance.json --simulate 40

Exit status 0 when feasible, 2 when not (1 on usage errors), so the tool
composes with CI pipelines that gate configuration changes.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.metrics import summarize
from repro.analysis.report import format_table
from repro.core.feasibility import TreeParameters, check_feasibility
from repro.model.serialize import load_problem
from repro.net.phy import (
    ATM_BUS,
    CLASSIC_ETHERNET,
    GIGABIT_ETHERNET,
    MediumProfile,
)

MEDIA: dict[str, MediumProfile] = {
    profile.name: profile
    for profile in (GIGABIT_ETHERNET, CLASSIC_ETHERNET, ATM_BUS)
}

_MS = 1_000_000


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.check",
        description="Evaluate HRTDM feasibility conditions (B_DDCR <= d).",
    )
    parser.add_argument("instance", help="JSON instance file")
    parser.add_argument(
        "--medium",
        choices=sorted(MEDIA),
        default=GIGABIT_ETHERNET.name,
        help="broadcast medium profile",
    )
    parser.add_argument(
        "--time-f", type=int, default=64, help="time tree leaves F"
    )
    parser.add_argument(
        "--time-m", type=int, default=4, help="time tree branching degree"
    )
    parser.add_argument(
        "--simulate",
        type=float,
        default=0.0,
        metavar="MS",
        help="also run CSMA/DDCR under peak load for MS milliseconds",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    medium = MEDIA[args.medium]
    try:
        problem = load_problem(args.instance)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    trees = TreeParameters(
        time_f=args.time_f,
        time_m=args.time_m,
        static_q=problem.static_q,
        static_m=problem.static_m,
    )
    report = check_feasibility(problem, medium, trees)
    print(problem.describe())
    print()
    print(
        format_table(
            ["source", "class", "d (ms)", "B_DDCR (ms)", "slack (ms)", "ok"],
            [
                [
                    fc.source_id,
                    fc.class_name,
                    round(fc.deadline / _MS, 3),
                    round(fc.bound / _MS, 3),
                    round(fc.slack / _MS, 3),
                    "yes" if fc.feasible else "NO",
                ]
                for fc in report.classes
            ],
            title=f"Feasibility on {medium.name} (F={args.time_f}, "
            f"m={args.time_m})",
        )
    )
    verdict = "FEASIBLE" if report.feasible else "INFEASIBLE"
    print(f"\nverdict: {verdict}")
    if args.simulate > 0:
        from repro.experiments.harness import (
            build_simulation,
            ddcr_factory,
            default_ddcr_config,
        )

        config = default_ddcr_config(
            problem, medium, time_f=args.time_f, time_m=args.time_m
        )
        result = build_simulation(
            problem, medium, ddcr_factory(config)
        ).run(round(args.simulate * _MS))
        metrics = summarize(result)
        print(
            f"simulation ({args.simulate} ms peak load): "
            f"delivered={metrics.delivered} misses={metrics.misses} "
            f"utilization={metrics.utilization:.3f}"
        )
    return 0 if report.feasible else 2


if __name__ == "__main__":
    sys.exit(main())
