"""CLI: check an HRTDM instance's feasibility conditions.

The operator workflow the paper envisions (section 2.2: "By computing the
FCs, it is possible to tell whether or not any quantified instantiation of
the HRTDM problem is feasible with our solution"):

    python -m repro.tools.check instance.json
    python -m repro.tools.check instance.json --medium classic-ethernet
    python -m repro.tools.check instance.json --time-f 256 --time-m 4
    python -m repro.tools.check instance.json --simulate 40

Exit status 0 when feasible, 2 when not (1 on usage errors), so the tool
composes with CI pipelines that gate configuration changes.

``--ci`` is the repo's fast-path health check instead of an instance::

    python -m repro.tools.check --ci --jobs 4

It imports every module under ``repro`` (catching syntax/import rot),
resolves the full experiment suite through the parallel runtime — cached
results replay from ``.repro-cache`` so a no-change run is near-instant —
then runs an invariants-smoke step (one faulted scenario per protocol
with online invariant monitors, :mod:`repro.sim.invariants`; any
violation fails CI; ``--no-invariants`` skips it — each scenario is also
re-run on the ``batch`` engine and its results must match the default
engine's exactly; ``--no-batch`` skips the batch re-runs), a feas-smoke
step (the FC frontier grid evaluated scalar vs vectorized vs
engine-incremental and digest-compared, :mod:`repro.core.feas_grid` /
:mod:`repro.core.feas_engine`; ``--no-feas`` skips it), an obs-smoke step
(one run with telemetry collection on, then a ``repro.tools.obs``
``summarize`` + ``diff`` round-trip over the manifest; ``--no-obs``
skips it), a sweep-smoke step (a 4-point campaign cold-run then resumed
on the warm cache, asserting zero resubmissions and a byte-identical
aggregate, :mod:`repro.sweep`; ``--no-sweep`` skips it), a serve-smoke
step (a short admission trace served with counter-checks, replayed
byte-identically, and re-checked with zero executor resubmissions,
:mod:`repro.serve`; ``--no-serve`` skips it), an obs2-smoke step (a
*traced* serve session: flight-recorder dump valid JSONL with connected
causal parents, Prometheus snapshot + JSONL delta stream consumable and
consistent, and a deliberately unmeetable SLO breaching as exactly one
structured ``slo-breach`` incident with a black-box trace attached,
:mod:`repro.obs`; ``--no-obs2`` skips it), a fabric-smoke step (a
3-segment bridged DDCR chain run through :class:`repro.net.fabric.
Fabric`: invariants — including the bridge-conservation monitors —
must stay clean and the composed end-to-end bound must dominate the
observed worst journey latency; ``--no-fabric`` skips it), and finishes
with a perf-smoke step: one quick pass of the micro benchmarks
(:mod:`repro.tools.bench` ``--smoke``), printing throughput so
regressions surface next to correctness (``--no-perf`` skips it).  The
perf step feeds a *perf-trend gate*: the current run is compared
against the median of the last N entries in ``BENCH_history.jsonl``
(``--history`` overrides the file, ``--no-perf-trend`` skips the gate),
and each run is appended to the history afterwards.  Exit 0 when
everything imports, every experiment's checks pass, every invariant
holds, the obs round-trip succeeds, the sweep resume is clean and no
bench fell below the trend threshold; 2 otherwise.  Absolute perf
numbers stay informational — only a *relative* drop against this
machine's own history fails CI.

The common execution flags (``--jobs``, ``--seed``, ``--engine``,
``--telemetry``) and cache flags (``--cache-dir``, ``--no-cache``,
``--force``) are shared parent parsers (:mod:`repro.cliopts`), spelled
identically across every repro CLI.
"""

from __future__ import annotations

import argparse
import importlib
import os
import pkgutil
import statistics
import sys
import tempfile

from repro.analysis.metrics import summarize
from repro.analysis.report import format_table
from repro.cliopts import cache_options, execution_options, validate_jobs
from repro.core.feas_grid import check_feasibility_batch
from repro.core.feasibility import TreeParameters
from repro.model.serialize import load_problem
from repro.net.engine import use_engine
from repro.net.phy import (
    ATM_BUS,
    CLASSIC_ETHERNET,
    GIGABIT_ETHERNET,
    MediumProfile,
)

MEDIA: dict[str, MediumProfile] = {
    profile.name: profile
    for profile in (GIGABIT_ETHERNET, CLASSIC_ETHERNET, ATM_BUS)
}

_MS = 1_000_000


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.check",
        description="Evaluate HRTDM feasibility conditions (B_DDCR <= d).",
        parents=[execution_options(), cache_options()],
    )
    parser.add_argument(
        "instance", nargs="?", default=None, help="JSON instance file"
    )
    parser.add_argument(
        "--ci",
        action="store_true",
        help="repo health fast-path: import all modules, run the suite",
    )
    parser.add_argument(
        "--no-perf",
        action="store_true",
        help="skip the --ci perf-smoke micro-benchmark step",
    )
    parser.add_argument(
        "--no-sweep",
        action="store_true",
        help="skip the --ci sweep-smoke (campaign resume) step",
    )
    parser.add_argument(
        "--no-invariants",
        action="store_true",
        help="skip the --ci invariants-smoke (faulted scenarios) step",
    )
    parser.add_argument(
        "--no-obs",
        action="store_true",
        help="skip the --ci obs-smoke (telemetry round-trip) step",
    )
    parser.add_argument(
        "--no-feas",
        action="store_true",
        help="skip the --ci feas-smoke (feasibility kernel parity) step",
    )
    parser.add_argument(
        "--no-serve",
        action="store_true",
        help="skip the --ci serve-smoke (admission service) step",
    )
    parser.add_argument(
        "--no-fabric",
        action="store_true",
        help="skip the --ci fabric-smoke (multi-segment bound) step",
    )
    parser.add_argument(
        "--no-obs2",
        action="store_true",
        help=(
            "skip the --ci obs2-smoke (flight recorder / export / SLO "
            "breach) step"
        ),
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help=(
            "skip the --ci batch-engine coverage (invariants-smoke "
            "re-runs and the *_batch perf benches)"
        ),
    )
    parser.add_argument(
        "--no-perf-trend",
        action="store_true",
        help="run the perf smoke but skip the history trend gate",
    )
    parser.add_argument(
        "--history",
        metavar="FILE",
        default=None,
        help=(
            "bench history file for the perf-trend gate (default: "
            "BENCH_history.jsonl at the repo root)"
        ),
    )
    parser.add_argument(
        "--trend-window",
        type=int,
        default=5,
        metavar="N",
        help="history entries the trend gate medians over (default: %(default)s)",
    )
    parser.add_argument(
        "--trend-threshold",
        type=float,
        default=30.0,
        metavar="PCT",
        help=(
            "fail when a bench drops more than PCT%% below its history "
            "median (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--medium",
        choices=sorted(MEDIA),
        default=GIGABIT_ETHERNET.name,
        help="broadcast medium profile",
    )
    parser.add_argument(
        "--time-f", type=int, default=64, help="time tree leaves F"
    )
    parser.add_argument(
        "--time-m", type=int, default=4, help="time tree branching degree"
    )
    parser.add_argument(
        "--simulate",
        type=float,
        default=0.0,
        metavar="MS",
        help="also run CSMA/DDCR under peak load for MS milliseconds",
    )
    return parser


def _import_all_modules() -> list[str]:
    """Import every module under ``repro``; returns the failures."""
    import repro

    failures: list[str] = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        try:
            importlib.import_module(info.name)
        except Exception as error:  # noqa: BLE001 - report, don't die
            failures.append(f"{info.name}: {error}")
    return failures


#: Invariants-smoke geometry: long enough for several full collision
#: resolutions and a crash/restart cycle, short enough to stay sub-second.
_SMOKE_HORIZON = 250_000


def _run_invariants_smoke(batch: bool = True) -> list[str]:
    """One faulted scenario per protocol with online invariant monitors.

    Every scenario stays inside the feasibility bounds (crashes heal well
    before deadlines, noise bursts are transient, drift only skews carrier
    sense), so the monitors must stay silent: any violation is a genuine
    protocol/fault-interaction regression and fails CI.  Returns failure
    lines (empty = all invariants held).

    With ``batch`` (the default) every scenario is re-run on the batch
    engine and its statistics, completions and invariant report must match
    the default engine's exactly — the faulted scenarios exercise the
    structural fallback path, the clean monitored DDCR scenario the kernel
    itself.
    """
    from repro.experiments.harness import (
        csma_cd_factory,
        dcr_factory,
        ddcr_factory,
        default_ddcr_config,
        tdma_factory,
    )
    from repro.faults.models import (
        ClockDrift,
        FaultPlan,
        GilbertElliottNoise,
        StationCrash,
    )
    from repro.model.workloads import uniform_problem
    from repro.net.network import NetworkSimulation, Scenario
    from repro.net.phy import ideal_medium
    from repro.sim.invariants import (
        DeadlineMonitor,
        MonitorSuite,
        MutualExclusionMonitor,
    )

    problem = uniform_problem(
        z=5, length=1_000, deadline=400_000, a=1, w=200_000
    )
    medium = ideal_medium(slot_time=64)
    config = default_ddcr_config(problem, medium, time_f=16, time_m=2)
    burst_noise = GilbertElliottNoise(
        p_enter_bad=0.002, p_exit_bad=0.05, bad_rate=0.5
    )
    crash = StationCrash(0, at=40_000, restart_at=120_000)
    # BEB offers no deadline guarantee and TDMA idles by design in foreign
    # slots, so those scenarios check the invariants their protocols
    # actually promise; DDCR and DCR run the full auto-armed suite.
    scenarios = [
        (
            "ddcr+burst-noise+crash",
            ddcr_factory(config),
            FaultPlan((burst_noise, crash)),
            None,
        ),
        (
            "csma-cd+burst-noise",
            csma_cd_factory(),
            FaultPlan((burst_noise,)),
            lambda: MonitorSuite([MutualExclusionMonitor()]),
        ),
        (
            "dcr+clock-drift",
            dcr_factory(problem),
            FaultPlan((ClockDrift(0, skew_per_slot=4.0),)),
            None,
        ),
        (
            "tdma+crash",
            tdma_factory(problem),
            FaultPlan((crash,)),
            lambda: MonitorSuite(
                [MutualExclusionMonitor(), DeadlineMonitor()]
            ),
        ),
        # Fault-free but monitored: the one scenario the batch kernel
        # actually executes (armed injectors structurally fall back), so
        # the batch re-run below covers the kernel, not just the fallback.
        (
            "ddcr-clean+monitors",
            ddcr_factory(config),
            None,
            True,
        ),
    ]

    def execute(factory, plan, monitors, engine=None):
        simulation = NetworkSimulation.from_scenario(
            Scenario(
                problem=problem,
                medium=medium,
                protocol_factory=factory,
                # Monitor suites are stateful, so scenarios supply them
                # as factories — each engine run gets its own fresh
                # suite.
                faults=plan,
                monitors=monitors() if callable(monitors) else monitors,
                engine=engine,
            )
        )
        return simulation.run(_SMOKE_HORIZON)

    def digest(result) -> bytes:
        import pickle

        return pickle.dumps(
            (
                result.stats,
                [
                    (r.message.seq, r.completion, r.started, r.dropped)
                    for r in result.completions
                ],
                result.invariants.summary(),
            )
        )

    failures: list[str] = []
    batch_matches = 0
    for name, factory, plan, monitors in scenarios:
        result = execute(factory, plan, monitors)
        report = result.invariants
        assert report is not None  # every scenario arms monitors
        if report.ok:
            print(f"invariants-smoke: {name}: {report.summary()}")
        else:
            failures.append(f"{name}: {report.summary()}")
            print(
                f"invariants-smoke: {name}: FAILED\n{report.summary()}",
                file=sys.stderr,
            )
        if batch:
            batch_result = execute(factory, plan, monitors, engine="batch")
            if digest(batch_result) != digest(result):
                failures.append(
                    f"{name}: batch engine diverged from the default engine"
                )
                print(
                    f"invariants-smoke: {name}: batch engine DIVERGED",
                    file=sys.stderr,
                )
            else:
                batch_matches += 1
    if batch and batch_matches == len(scenarios):
        print(
            f"invariants-smoke: batch engine matched the default engine "
            f"on {batch_matches}/{len(scenarios)} scenario(s)"
        )
    return failures


def _run_feas_smoke() -> list[str]:
    """Feasibility-kernel parity: scalar vs vectorized vs incremental.

    Evaluates an FC-frontier-shaped grid (deadline x scale on the uniform
    workload) three ways — the scalar oracle, :func:`feasibility_grid` on
    the default *and* the pure-Python backend, and a
    :class:`FeasibilityEngine` driven incrementally through
    ``rescale_density`` — and digest-compares the full reports, mirroring
    the batch-engine invariants smoke.  A final mutation check removes a
    class through the engine's delta path and compares against a fresh
    scalar report on the reduced instance.  Returns failure lines.
    """
    import pickle

    from repro.core.feas_engine import FeasibilityEngine
    from repro.core.feas_grid import _PythonFeasOps, feasibility_grid
    from repro.core.feasibility import check_feasibility
    from repro.experiments.harness import default_ddcr_config
    from repro.model.problem import HRTDMProblem
    from repro.model.workloads import uniform_problem

    medium = GIGABIT_ETHERNET
    deadlines = tuple(ms * _MS for ms in (2, 8, 32))
    scales = (0.5, 2.0, 8.0, 32.0)

    def factory(deadline: int, scale: float) -> HRTDMProblem:
        return uniform_problem(
            z=8, length=8_000, deadline=deadline, a=1, w=4 * _MS, scale=scale
        )

    config = default_ddcr_config(factory(deadlines[0], 1.0), medium)
    trees = config.tree_parameters()

    def digest(reports) -> tuple[bytes, ...]:
        # Reports are pickled one by one: a whole-list pickle memoizes
        # string objects the engine *reuses* across its reports, so equal
        # values would digest differently from the scalar path's.
        return tuple(pickle.dumps(report) for report in reports)

    scalar = [
        check_feasibility(factory(d, s), medium, trees)
        for d in deadlines
        for s in scales
    ]
    reference = digest(scalar)
    failures: list[str] = []
    axes = {"deadline": deadlines, "scale": scales}
    for label, backend in (("default", None), ("python", _PythonFeasOps())):
        grid = feasibility_grid(factory, axes, medium, trees, backend=backend)
        if digest(grid.reports) != reference:
            failures.append(
                f"feasibility_grid[{label}] diverged from the scalar oracle"
            )
    engine_reports = []
    for deadline in deadlines:
        engine = FeasibilityEngine.from_problem(
            factory(deadline, 1.0), medium, trees
        )
        for scale in scales:
            engine.rescale_density(scale)
            engine_reports.append(engine.report())
    if digest(engine_reports) != reference:
        failures.append(
            "FeasibilityEngine (incremental rescale) diverged from the "
            "scalar oracle"
        )
    # Mutation parity: drop one class through the O(C) delta path (the
    # uniform sources are single-class, so its source goes with it) and
    # compare against a fresh scalar report on the reduced instance.
    base = factory(deadlines[0], 2.0)
    engine = FeasibilityEngine.from_problem(base, medium, trees)
    victim = base.sources[0]
    engine.remove_class(victim.source_id, victim.message_classes[0].name)
    reduced = HRTDMProblem(
        sources=base.sources[1:],
        static_q=base.static_q,
        static_m=base.static_m,
    )
    if digest([engine.report()]) != digest(
        [check_feasibility(reduced, medium, trees)]
    ):
        failures.append(
            "FeasibilityEngine remove_class diverged from the scalar oracle"
        )
    if not failures:
        points = len(deadlines) * len(scales)
        print(
            f"feas-smoke: scalar, vectorized (2 backends) and incremental "
            f"paths agree on {points} grid points + 1 mutation"
        )
    return failures


def _run_fabric_smoke() -> list[str]:
    """A 3-segment bridged chain: invariants clean, bound dominates.

    Builds the standard fabric chain topology (3 DDCR segments joined
    by store-and-forward bridges, bridge-conservation monitors armed),
    runs it, and requires: every monitor clean, no bridge losses,
    journeys traversing the whole chain, and the composed end-to-end
    bound (sum of per-hop B_DDCR plus forwarding latencies) at or above
    the worst observed journey latency.  Returns failure lines.
    """
    from repro.experiments.harness import build_chain_topology
    from repro.net.fabric import Fabric

    topology, trees = build_chain_topology(segments=3, z=4, monitors=True)
    fabric = Fabric(topology)
    (route_bound,) = fabric.route_bounds(trees)
    failures: list[str] = []
    if not route_bound.feasible:
        failures.append("fabric chain workload must be FC-feasible")
    result = fabric.run(40 * _MS)
    if not result.invariants_ok:
        broken = [
            f"{name}: {violation}"
            for name, seg in result.segments.items()
            if seg.invariants is not None and not seg.invariants.ok
            for violation in seg.invariants.violations[:2]
        ]
        failures.append("fabric invariants violated (" + "; ".join(broken) + ")")
    dropped = sum(report.dropped for report in result.bridges)
    if dropped:
        failures.append(f"bridges dropped {dropped} relayed frame(s)")
    delivered = result.delivered()
    if not delivered:
        failures.append("no journey traversed the chain before the horizon")
    worst = result.worst_latency(route_bound.route)
    if worst is not None and worst > route_bound.bound:
        failures.append(
            f"observed end-to-end latency {worst} exceeds the composed "
            f"bound {route_bound.bound:.0f}"
        )
    if not failures:
        print(
            f"fabric-smoke: 3-segment chain ok — {len(delivered)} "
            f"journey(s) delivered, worst {worst} <= composed bound "
            f"{route_bound.bound:,.0f}, invariants clean"
        )
    return failures


def _run_obs_smoke(cache_dir: str) -> list[str]:
    """One telemetry-collecting run plus a summarize/diff round-trip.

    Resolves FIG1 through the cache-aware executor with telemetry on
    (a warm cache yields the minimal cache-hit manifest — the round-trip
    exercises the same schema either way), writes the manifest JSONL,
    renders it with ``repro.tools.obs summarize`` and diffs it against
    itself (which must exit 0).  Returns failure lines.
    """
    from repro.obs.manifest import write_manifests
    from repro.runtime import ParallelExecutor, ResultCache, RunSpec
    from repro.tools import obs

    failures: list[str] = []
    executor = ParallelExecutor(
        cache=ResultCache(cache_dir), collect_telemetry=True
    )
    records = executor.run([RunSpec.make("FIG1")])
    manifests = [r.telemetry for r in records if r.telemetry is not None]
    if not manifests:
        return ["obs-smoke: executor produced no telemetry manifest"]
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "obs-smoke.jsonl")
        write_manifests(path, manifests)
        if obs.main(["summarize", path]) != 0:
            failures.append("obs-smoke: summarize failed")
        if obs.main(["diff", path, path, "--fail-over", "50"]) != 0:
            failures.append("obs-smoke: self-diff did not exit 0")
    if not failures:
        print(
            f"obs-smoke: telemetry round-trip ok "
            f"({manifests[0].run_id}, source={manifests[0].source})"
        )
    return failures


def _run_sweep_smoke(cache_dir: str, jobs: int) -> list[str]:
    """A 4-point campaign cold-run, then resumed on the warm cache.

    Exercises the sweep contract end to end: grid expansion, sharded
    execution, journal checkpointing, and the resume guarantee — the
    resumed run must resubmit **zero** specs (everything replays from
    the journal + result cache) and rebuild a byte-identical aggregate
    document.  Returns failure lines (empty = contract held).
    """
    from repro.runtime import ResultCache
    from repro.sweep import Campaign, run_campaign

    # FIG1 needs t to be a power of m, so the shapes are a zipped axis.
    campaign = Campaign.make(
        "ci-sweep-smoke",
        experiment="FIG1",
        zipped={"m": (2, 2, 3, 3), "t": (8, 16, 9, 27)},
        batch_size=2,
        description="CI smoke: FIG1 search-cost tables across tree shapes",
    )
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "sweep-smoke.journal.jsonl")
        cold = run_campaign(
            campaign,
            jobs=jobs,
            cache=ResultCache(cache_dir),
            journal_path=journal,
        )
        if not cold.ok:
            failures.append("sweep-smoke: campaign checks failed")
        resumed = run_campaign(
            campaign,
            jobs=jobs,
            cache=ResultCache(cache_dir),
            journal_path=journal,
            resume=True,
        )
        if resumed.submissions != 0:
            failures.append(
                f"sweep-smoke: resume resubmitted "
                f"{resumed.submissions} spec(s)"
            )
        if resumed.replayed_shards != resumed.total_shards:
            failures.append(
                f"sweep-smoke: resume replayed only "
                f"{resumed.replayed_shards}/{resumed.total_shards} shard(s)"
            )
        if resumed.aggregate_json() != cold.aggregate_json():
            failures.append(
                "sweep-smoke: resumed aggregate differs from the cold run"
            )
    if not failures:
        print(
            f"sweep-smoke: {campaign.grid.size}-point campaign resumed "
            "byte-identically (0 resubmissions)"
        )
    return failures


def _run_serve_smoke(cache_dir: str, jobs: int, use_cache: bool = True) -> list[str]:
    """A short admission trace served, counter-checked and replayed.

    Exercises the serve contract end to end: a cold run with periodic
    counter-checks (scalar oracle + SERVE-CHECK simulation through the
    cache-aware executor) must raise **zero** incidents; a replay of the
    persisted event log must reproduce every decision byte for byte; and
    a re-counter-check through a fresh executor sharing the cache must
    resubmit **zero** specs.  Without the result cache the simulation leg
    is skipped (oracle + replay still run).  Returns failure lines.
    """
    from repro.runtime import ParallelExecutor, ResultCache
    from repro.serve import (
        AdmissionService,
        ServeConfig,
        TraceConfig,
        generate_trace,
        replay_event_log,
    )

    failures: list[str] = []
    trace = generate_trace(
        TraceConfig(events=48, stations=10, seed=11, template="city")
    )
    config = ServeConfig(static_q=64, check_every=16)
    with tempfile.TemporaryDirectory() as tmp:
        log_dir = os.path.join(tmp, "serve-log")
        executor = (
            ParallelExecutor(jobs=jobs, cache=ResultCache(cache_dir))
            if use_cache
            else None
        )
        with AdmissionService(
            config, executor=executor, log_dir=log_dir
        ) as service:
            decisions = service.run_trace(trace)
            service.counter_check()
            if service.incidents:
                failures.append(
                    f"serve-smoke: cold run raised "
                    f"{len(service.incidents)} incident(s): "
                    f"{service.incidents[0].detail}"
                )
            admitted = service.class_count
        replayed = replay_event_log(log_dir)
        mismatches = [
            incident
            for incident in replayed.incidents
            if incident.kind == "replay-mismatch"
        ]
        if mismatches:
            failures.append(
                f"serve-smoke: replay diverged on "
                f"{len(mismatches)} decision(s): {mismatches[0].detail}"
            )
        if replayed.class_count != admitted:
            failures.append(
                f"serve-smoke: replay admitted {replayed.class_count} "
                f"class(es), cold run {admitted}"
            )
        if use_cache:
            recheck = ParallelExecutor(jobs=jobs, cache=ResultCache(cache_dir))
            replayed.executor = recheck
            replayed.counter_check()
            if recheck.submissions != 0:
                failures.append(
                    f"serve-smoke: replay counter-check resubmitted "
                    f"{recheck.submissions} spec(s)"
                )
            if replayed.incidents != mismatches:
                failures.append(
                    "serve-smoke: replay counter-check raised incident(s)"
                )
    if not failures:
        sim = "counter-checked" if use_cache else "oracle-checked (no cache)"
        print(
            f"serve-smoke: {len(trace)}-event trace served, {sim} and "
            f"replayed byte-identically ({admitted} class(es) admitted, "
            "0 incidents)"
        )
    return failures


def _run_obs2_smoke(cache_dir: str, use_cache: bool = True) -> list[str]:
    """A traced serve session exercising the v2 ops plane end to end.

    Serves a short trace with the flight recorder, streaming exporter
    and a deliberately unmeetable SLO armed, then asserts the three
    contracts: (1) the flight-recorder dump is valid JSONL whose causal
    parents all resolve inside the dumped window (or point below it,
    i.e. at ring-evicted ancestors); (2) the Prometheus snapshot and the
    JSONL delta stream are consumable and consistent with the request
    count; (3) the forced latency SLO (threshold 0 us — every sample is
    bad by construction) breaches exactly once (multi-window burn-rate
    breaches latch) and lands as a structured ``slo-breach`` incident
    with a black-box trace attached.  Returns failure lines.
    """
    from repro.obs.export import iter_jsonl_tail, parse_prometheus
    from repro.obs.instruments import Telemetry
    from repro.obs.slo import Objective, SloEngine
    from repro.obs.tracer import FlightRecorder, load_trace
    from repro.runtime import ParallelExecutor, ResultCache
    from repro.serve import (
        AdmissionService,
        ServeConfig,
        TraceConfig,
        generate_trace,
    )

    failures: list[str] = []
    trace = generate_trace(
        TraceConfig(events=48, stations=10, seed=11, template="city")
    )
    recorder = FlightRecorder(capacity=2048)
    telemetry = Telemetry()
    slos = SloEngine([
        Objective(
            name="forced-latency",
            kind="latency",
            instrument="serve/decision_latency_us",
            threshold=0.0,
            q=0.99,
            short_window=4,
            long_window=8,
        ),
    ])
    config = ServeConfig(static_q=64, check_every=16, sim_horizon=500_000)
    with tempfile.TemporaryDirectory() as tmp:
        log_dir = os.path.join(tmp, "obs2-log")
        from repro.obs.export import StreamExporter

        exporter = StreamExporter(
            telemetry,
            os.path.join(tmp, "metrics.prom"),
            os.path.join(tmp, "metrics.jsonl"),
            every=4,
        )
        # force=True: a cache *replay* of the counter-check leg cannot
        # emit the channel/slot trace events this smoke asserts on, so
        # the leg must execute live on warm caches too (it still writes
        # through, keeping the cache interplay exercised).
        executor = (
            ParallelExecutor(cache=ResultCache(cache_dir), force=True)
            if use_cache
            else None
        )
        with AdmissionService(
            config,
            telemetry=telemetry,
            executor=executor,
            log_dir=log_dir,
            tracer=recorder,
            exporter=exporter,
            slos=slos,
        ) as service:
            service.run_trace(trace)
            service.counter_check()
            breaches = [
                i for i in service.incidents if i.kind == "slo-breach"
            ]
            others = [
                i for i in service.incidents if i.kind != "slo-breach"
            ]
            if len(breaches) != 1:
                failures.append(
                    f"obs2-smoke: forced SLO produced "
                    f"{len(breaches)} slo-breach incident(s), wanted "
                    f"exactly 1 (breaches latch)"
                )
            elif breaches[0].trace is None or not breaches[0].trace:
                failures.append(
                    "obs2-smoke: slo-breach incident carries no "
                    "black-box trace"
                )
            if others:
                failures.append(
                    f"obs2-smoke: unexpected incident(s): "
                    f"{[i.kind for i in others]}"
                )
        # (1) Flight-recorder dump: valid JSONL, connected parents.
        dump = os.path.join(tmp, "flightrec.jsonl")
        recorder.dump_jsonl(dump)
        events = load_trace(dump)
        if not events:
            failures.append("obs2-smoke: flight-recorder dump is empty")
        else:
            ids = {event.id for event in events}
            first = min(ids)
            dangling = [
                event.id
                for event in events
                if event.parent is not None
                and event.parent not in ids
                and event.parent >= first
            ]
            if dangling:
                failures.append(
                    f"obs2-smoke: {len(dangling)} event(s) have parents "
                    f"inside the dumped window that are missing from it"
                )
            kinds = {event.kind for event in events}
            wanted = {"serve/request", "serve/decision"}
            if use_cache:
                wanted.add("channel/slot")
            missing = wanted - kinds
            if missing:
                failures.append(
                    f"obs2-smoke: dump lacks {sorted(missing)} event(s)"
                )
        # (2) Export artifacts: snapshot + delta stream consistency.
        metrics = parse_prometheus(
            open(exporter.prom_path, encoding="utf-8").read()
        )
        requests = metrics.get("repro_serve_requests", {}).get("value")
        if requests != len(trace):
            failures.append(
                f"obs2-smoke: Prometheus snapshot reports "
                f"{requests} requests, served {len(trace)}"
            )
        records = list(iter_jsonl_tail(exporter.stream_path))
        if not records:
            failures.append("obs2-smoke: delta stream is empty")
        ticks = [record.get("tick") for record in records]
        if ticks != sorted(ticks):
            failures.append("obs2-smoke: delta-stream ticks not monotone")
    if not failures:
        print(
            f"obs2-smoke: traced serve session ok ({len(events)} trace "
            f"event(s) dumped, {len(records)} export record(s), "
            "1 latched slo-breach with black box)"
        )
    return failures


def _run_perf_smoke(batch: bool = True) -> "list | None":
    """One quick micro-benchmark pass; returns results (None = skipped)."""
    from repro.tools.bench import BENCHES, run_benches

    names = (
        None if batch
        else [name for name in BENCHES if not name.endswith("_batch")]
    )
    try:
        results = run_benches(names=names, smoke=True)
    except Exception as error:  # noqa: BLE001 - perf is advisory
        print(f"perf-smoke: skipped ({error})", file=sys.stderr)
        return None
    for result in results:
        print(f"perf-smoke: {result.describe()}")
    return results


def _run_perf_trend(
    results: list,
    history_path: "str | os.PathLike[str]",
    window: int,
    threshold: float,
) -> list[str]:
    """Gate current bench results against the history median.

    Compares each bench's median ops/sec against the median of the last
    ``window`` same-mode (smoke) history entries that measured it; a drop
    of more than ``threshold`` percent is a regression.  The current run
    is appended to the history *after* the comparison, so a regressed run
    cannot vote itself into its own baseline.  Returns failure lines.
    """
    from repro.tools.bench import append_history, history_entry, load_history

    smoke_entries = [
        entry for entry in load_history(history_path) if entry.get("smoke")
    ][-window:]
    failures: list[str] = []
    if len(smoke_entries) < 2:
        print(
            f"perf-trend: not enough history "
            f"({len(smoke_entries)} smoke entr(y/ies) in {history_path}); "
            "gate skipped, current run recorded"
        )
    else:
        for result in results:
            samples = [
                entry["benches"][result.name]["ops_per_sec"]
                for entry in smoke_entries
                if result.name in entry.get("benches", {})
            ]
            if len(samples) < 2:
                continue
            baseline = statistics.median(samples)
            current = result.median_ops_per_sec or result.ops_per_sec
            if baseline <= 0:
                continue
            drop = (1.0 - current / baseline) * 100.0
            if drop > threshold:
                failures.append(
                    f"{result.name}: {current:,.0f} ops/s is "
                    f"{drop:.1f}% below the history median "
                    f"{baseline:,.0f} (limit {threshold:.0f}%, "
                    f"n={len(samples)})"
                )
        verdict = "FAILED" if failures else "ok"
        print(
            f"perf-trend: {verdict} "
            f"({len(results)} bench(es) vs median of "
            f"{len(smoke_entries)} run(s))"
        )
    append_history(history_path, history_entry(results, smoke=True))
    return failures


def run_ci(
    jobs: int,
    cache_dir: str,
    perf: bool = True,
    invariants: bool = True,
    obs: bool = True,
    feas: bool = True,
    sweep: bool = True,
    serve: bool = True,
    obs2: bool = True,
    fabric: bool = True,
    batch: bool = True,
    perf_trend: bool = True,
    history: "str | None" = None,
    trend_window: int = 5,
    trend_threshold: float = 30.0,
    seed: "int | None" = None,
    force: bool = False,
    no_cache: bool = False,
    telemetry: "str | None" = None,
) -> int:
    """``--ci`` fast path: imports + suite + smokes + perf trend gate."""
    from repro.experiments.registry import EXPERIMENTS
    from repro.runtime import ParallelExecutor, ResultCache, RunSpec

    import_failures = _import_all_modules()
    if import_failures:
        for failure in import_failures:
            print(f"import error: {failure}", file=sys.stderr)
        return 2
    print("imports: all repro modules import cleanly")

    def progress(record, index, total):
        print(f"[{index + 1:>2}/{total}] {record.describe()}", flush=True)

    executor = ParallelExecutor(
        jobs=jobs,
        cache=None if no_cache else ResultCache(cache_dir),
        force=force,
        progress=progress,
        collect_telemetry=telemetry is not None,
    )
    records = executor.run(
        [
            RunSpec.make(
                experiment_id,
                root_seed=(
                    seed
                    if seed is not None
                    and EXPERIMENTS[experiment_id].seed_param is not None
                    else None
                ),
            )
            for experiment_id in EXPERIMENTS
        ]
    )
    failed = [
        record.spec.experiment_id
        for record in records
        if not record.result.all_checks_pass
    ]
    cached = sum(1 for record in records if record.cached)
    print(
        f"suite: {len(records)} experiment(s), "
        f"{len(records) - cached} executed, {cached} from cache"
    )
    if telemetry is not None:
        from repro.obs.manifest import write_manifests

        manifests = [
            record.telemetry
            for record in records
            if record.telemetry is not None
        ]
        written = write_manifests(telemetry, manifests)
        print(f"suite: wrote {written} telemetry manifest(s) to {telemetry}")
    violation_failures: list[str] = []
    if invariants:
        violation_failures = _run_invariants_smoke(batch=batch)
    feas_failures: list[str] = []
    if feas:
        feas_failures = _run_feas_smoke()
    obs_failures: list[str] = []
    if obs:
        obs_failures = _run_obs_smoke(cache_dir)
    sweep_failures: list[str] = []
    if sweep and no_cache:
        print("sweep-smoke: skipped (needs the result cache)")
    elif sweep:
        sweep_failures = _run_sweep_smoke(cache_dir, jobs)
    serve_failures: list[str] = []
    if serve:
        serve_failures = _run_serve_smoke(
            cache_dir, jobs, use_cache=not no_cache
        )
    obs2_failures: list[str] = []
    if obs2:
        obs2_failures = _run_obs2_smoke(cache_dir, use_cache=not no_cache)
    fabric_failures: list[str] = []
    if fabric:
        fabric_failures = _run_fabric_smoke()
    trend_failures: list[str] = []
    if perf:
        results = _run_perf_smoke(batch=batch)
        if results is not None and perf_trend:
            from repro.tools.bench import default_history_path

            history_path = (
                history if history is not None else default_history_path()
            )
            trend_failures = _run_perf_trend(
                results, history_path, trend_window, trend_threshold
            )
    if failed:
        print(f"FAILED checks: {', '.join(failed)}", file=sys.stderr)
    if violation_failures:
        print(
            f"FAILED invariants: {', '.join(violation_failures)}",
            file=sys.stderr,
        )
    for failure in feas_failures:
        print(f"FAILED feas: {failure}", file=sys.stderr)
    for failure in obs_failures:
        print(f"FAILED obs: {failure}", file=sys.stderr)
    for failure in sweep_failures:
        print(f"FAILED sweep: {failure}", file=sys.stderr)
    for failure in serve_failures:
        print(f"FAILED serve: {failure}", file=sys.stderr)
    for failure in obs2_failures:
        print(f"FAILED obs2: {failure}", file=sys.stderr)
    for failure in fabric_failures:
        print(f"FAILED fabric: {failure}", file=sys.stderr)
    for failure in trend_failures:
        print(f"FAILED perf-trend: {failure}", file=sys.stderr)
    if (
        failed
        or violation_failures
        or feas_failures
        or obs_failures
        or sweep_failures
        or serve_failures
        or obs2_failures
        or fabric_failures
        or trend_failures
    ):
        return 2
    print("verdict: OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    validate_jobs(parser, args.jobs)
    if args.ci:
        with use_engine(args.engine):
            return run_ci(
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                perf=not args.no_perf,
                invariants=not args.no_invariants,
                obs=not args.no_obs,
                feas=not args.no_feas,
                sweep=not args.no_sweep,
                serve=not args.no_serve,
                obs2=not args.no_obs2,
                fabric=not args.no_fabric,
                batch=not args.no_batch,
                perf_trend=not args.no_perf_trend,
                history=args.history,
                trend_window=args.trend_window,
                trend_threshold=args.trend_threshold,
                seed=args.seed,
                force=args.force,
                no_cache=args.no_cache,
                telemetry=args.telemetry,
            )
    if args.instance is None:
        parser.error("an instance file is required unless --ci is given")
    medium = MEDIA[args.medium]
    try:
        problem = load_problem(args.instance)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    trees = TreeParameters(
        time_f=args.time_f,
        time_m=args.time_m,
        static_q=problem.static_q,
        static_m=problem.static_m,
    )
    # The vectorized path; value-identical to scalar check_feasibility
    # (the `check --ci` feas-smoke digest-compares them).
    (report,) = check_feasibility_batch([problem], medium, trees)
    print(problem.describe())
    print()
    print(
        format_table(
            ["source", "class", "d (ms)", "B_DDCR (ms)", "slack (ms)", "ok"],
            [
                [
                    fc.source_id,
                    fc.class_name,
                    round(fc.deadline / _MS, 3),
                    round(fc.bound / _MS, 3),
                    round(fc.slack / _MS, 3),
                    "yes" if fc.feasible else "NO",
                ]
                for fc in report.classes
            ],
            title=f"Feasibility on {medium.name} (F={args.time_f}, "
            f"m={args.time_m})",
        )
    )
    verdict = "FEASIBLE" if report.feasible else "INFEASIBLE"
    print(f"\nverdict: {verdict}")
    if args.simulate > 0:
        from repro.experiments.harness import (
            build_simulation,
            ddcr_factory,
            default_ddcr_config,
        )

        config = default_ddcr_config(
            problem, medium, time_f=args.time_f, time_m=args.time_m
        )
        with use_engine(args.engine):
            result = build_simulation(
                problem, medium, ddcr_factory(config)
            ).run(round(args.simulate * _MS))
        metrics = summarize(result)
        print(
            f"simulation ({args.simulate} ms peak load): "
            f"delivered={metrics.delivered} misses={metrics.misses} "
            f"utilization={metrics.utilization:.3f}"
        )
    return 0 if report.feasible else 2


if __name__ == "__main__":
    sys.exit(main())
