"""Experiment runtime: declarative specs, result cache, parallel executor.

This package is the substrate every experiment execution flows through
(CLI, benchmarks, CI fast-path):

* :class:`~repro.runtime.spec.RunSpec` — a hashable description of one
  run (experiment id + parameters + root seed + code-version salt);
* :class:`~repro.runtime.cache.ResultCache` — content-addressed on-disk
  results keyed by the spec hash;
* :class:`~repro.runtime.executor.ParallelExecutor` — cache-aware fan-out
  over worker processes with deterministic result ordering.
"""

from repro.runtime.cache import CacheEntry, CacheStats, ResultCache
from repro.runtime.executor import ParallelExecutor, RunRecord, execute_spec
from repro.runtime.spec import RunSpec, code_version, freeze_params

__all__ = [
    "CacheEntry",
    "CacheStats",
    "ResultCache",
    "ParallelExecutor",
    "RunRecord",
    "execute_spec",
    "RunSpec",
    "code_version",
    "freeze_params",
]
