"""Content-addressed on-disk cache for experiment results.

Entries live under a cache directory (default ``.repro-cache/``), one
pickle file per :class:`~repro.runtime.spec.RunSpec` hash:

    .repro-cache/
        ab/abcdef....pkl      # sharded by the hash's first two hex chars

Each file stores the spec's full canonical key next to the result, so a
hit is only served when the stored key matches byte-for-byte (a hash
collision, however unlikely, degrades to a miss).  Any unreadable,
truncated or otherwise corrupted entry is treated as a miss and evicted —
the runtime then recomputes and overwrites it.  Writes go through a
temporary file plus :func:`os.replace` so concurrent workers never observe
a half-written entry.

An entry may also carry the run's telemetry manifest (the
:meth:`~repro.obs.manifest.RunTelemetry.to_dict` document) when the
executor collected one.  Telemetry is a pure function of the run, so
replaying it from the cache is exactly as valid as replaying the result
— this is what lets a resumed sweep campaign rebuild its telemetry
roll-ups byte-identically without re-simulating (:mod:`repro.sweep`).
Entries written without telemetry stay readable (the field is simply
``None``).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import tempfile
import time
import typing

from repro.runtime.spec import RunSpec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.base import ExperimentResult

import pathlib

__all__ = ["CacheEntry", "ResultCache", "CacheStats"]


@dataclasses.dataclass
class CacheEntry:
    """One deserialised cache hit: the result plus stored sidecars."""

    result: "ExperimentResult"
    #: Wall-clock seconds the original computation took.
    duration: float = 0.0
    #: The run's telemetry manifest document
    #: (:meth:`repro.obs.manifest.RunTelemetry.to_dict`), or ``None``
    #: when the original run did not collect telemetry.
    telemetry: dict | None = None


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting over this cache handle's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writes: int = 0

    def summary(self) -> str:
        """One human-readable line, as surfaced after CLI invocations."""
        line = (
            f"cache: {self.hits} hits / {self.misses} misses / "
            f"{self.writes} writes"
        )
        if self.evictions:
            line += f" / {self.evictions} evictions"
        return line


class ResultCache:
    """Pickle-backed result store keyed by RunSpec content hash."""

    def __init__(self, directory: str | os.PathLike[str] = ".repro-cache"):
        self.directory = pathlib.Path(directory)
        self.stats = CacheStats()

    def path_for(self, spec: RunSpec) -> pathlib.Path:
        digest = spec.spec_hash()
        return self.directory / digest[:2] / f"{digest}.pkl"

    def get(self, spec: RunSpec) -> "ExperimentResult | None":
        """The cached result for ``spec``, or ``None`` on any miss."""
        entry = self.get_entry(spec)
        return entry.result if entry is not None else None

    def get_entry(self, spec: RunSpec) -> CacheEntry | None:
        """The full cached entry for ``spec``, or ``None`` on any miss.

        Corruption (bad pickle, wrong payload shape, stale key) never
        raises: the entry is evicted and the caller recomputes.
        """
        path = self.path_for(spec)
        try:
            payload = pickle.loads(path.read_bytes())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            self._evict(path)
            self.stats.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("key") != spec.canonical_key()
            or "result" not in payload
        ):
            self._evict(path)
            self.stats.misses += 1
            return None
        telemetry = payload.get("telemetry")
        self.stats.hits += 1
        return CacheEntry(
            result=payload["result"],
            duration=payload.get("duration", 0.0),
            telemetry=telemetry if isinstance(telemetry, dict) else None,
        )

    def put(
        self,
        spec: RunSpec,
        result: "ExperimentResult",
        duration: float = 0.0,
        telemetry: dict | None = None,
    ) -> pathlib.Path:
        """Atomically store ``result`` under the spec's content address."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": spec.canonical_key(),
            "result": result,
            "duration": duration,
            "telemetry": telemetry,
            "stored_at": time.time(),
        }
        handle, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as tmp:
                pickle.dump(payload, tmp, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    def _evict(self, path: pathlib.Path) -> None:
        try:
            path.unlink()
            self.stats.evictions += 1
        except OSError:
            pass

    def clear(self) -> int:
        """Remove every entry; returns the number of files deleted."""
        removed = 0
        if not self.directory.exists():
            return 0
        for path in self.directory.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
