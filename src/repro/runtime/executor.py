"""Fan independent RunSpecs out over worker processes, cache-aware.

The executor is the single path every experiment run takes — the CLI, the
benchmark suite and the CI fast-path all resolve results through it:

* cache lookup first (unless forced), so warm suites cost no simulation;
* misses execute on a :class:`concurrent.futures.ProcessPoolExecutor`
  when ``jobs > 1``, serially otherwise, with automatic serial fallback
  when a pool cannot be created (restricted environments);
* results come back in **input order** regardless of completion order,
  so parallel runs are byte-identical to sequential ones;
* every run yields a :class:`RunRecord` carrying wall-clock timing and
  provenance (cached / serial / pool), surfaced by the CLI as progress.

``ParallelExecutor.submissions`` counts specs that actually executed
(i.e. cache misses); a warm-cache suite must leave it at zero.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import sys
import time
import typing
from collections.abc import Callable, Sequence

from repro.obs.context import current_tracer, use_telemetry
from repro.obs.instruments import Telemetry
from repro.obs.manifest import RunTelemetry, fault_plan_hash, git_rev
from repro.runtime.cache import ResultCache
from repro.runtime.spec import RunSpec

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.base import ExperimentResult

__all__ = ["ParallelExecutor", "RunRecord", "execute_spec"]

#: Where a record's result came from.
SOURCE_CACHE = "cache"
SOURCE_SERIAL = "serial"
SOURCE_POOL = "pool"


@dataclasses.dataclass
class RunRecord:
    """One resolved spec: the result plus timing/provenance metadata."""

    spec: RunSpec
    result: "ExperimentResult"
    duration: float
    source: str
    #: Per-run telemetry manifest (:mod:`repro.obs`); collected when the
    #: executor was built with ``collect_telemetry=True``, else ``None``.
    #: Cache hits replay the manifest stored with the entry when the
    #: original run collected one, and fall back to a minimal manifest
    #: (provenance + the lookup span) otherwise.
    telemetry: RunTelemetry | None = None

    @property
    def cached(self) -> bool:
        return self.source == SOURCE_CACHE

    def describe(self) -> str:
        """One progress line: id, outcome, timing, provenance."""
        checks = "ok" if self.result.all_checks_pass else "FAILED CHECKS"
        return (
            f"{self.spec.experiment_id:<12} {checks:<13} "
            f"{self.duration:8.3f}s  [{self.source}]"
        )


def execute_spec(
    spec: RunSpec, collect_telemetry: bool = False
) -> "tuple[ExperimentResult, float, RunTelemetry | None]":
    """Run one spec to completion; top-level so worker processes can
    pickle it.  Returns the result, its wall-clock duration, and — when
    ``collect_telemetry`` is set — a :class:`RunTelemetry` manifest.

    Telemetry collection scopes a fresh registry as ambient for the
    whole execution (:func:`repro.obs.context.use_telemetry`), so every
    simulation the experiment builds records into one document; the
    registry adds ``spec/resolve`` / ``spec/execute`` spans around the
    runner (:func:`repro.experiments.registry.run_spec`).
    """
    from repro.experiments.registry import run_spec

    started = time.perf_counter()
    # The ambient flight recorder (if any) gets one span per execution;
    # simulations built inside pick the same recorder up at construction,
    # so their slot events parent under this span.  NULL_TRACER's span is
    # a no-op, and this is per-spec (not per-slot), so no gate is hoisted.
    tracer = current_tracer()
    if not collect_telemetry:
        with tracer.span(
            "executor/execute", spec=spec.experiment_id, engine=spec.engine
        ):
            result = run_spec(spec)
        return result, time.perf_counter() - started, None
    telemetry = Telemetry()
    with use_telemetry(telemetry), telemetry.span("run"), tracer.span(
        "executor/execute", spec=spec.experiment_id, engine=spec.engine
    ):
        result = run_spec(spec)
    duration = time.perf_counter() - started
    manifest = RunTelemetry.from_registry(
        telemetry,
        run_id=spec.experiment_id,
        engine=spec.engine,
        seed=spec.root_seed,
        faults=spec.faults,
        source=SOURCE_SERIAL,
        wall_seconds=duration,
    )
    return result, duration, manifest


def _worker_init(extra_path: str) -> None:
    """Make ``repro`` importable in spawned workers (fork inherits it)."""
    if extra_path not in sys.path:
        sys.path.insert(0, extra_path)


class ParallelExecutor:
    """Resolve RunSpecs through the cache, fanning misses out to workers."""

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        force: bool = False,
        progress: Callable[[RunRecord, int, int], None] | None = None,
        collect_telemetry: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.force = force
        self.progress = progress
        #: When set, every record carries a :class:`RunTelemetry` manifest
        #: (cache hits get a minimal provenance-only document).
        self.collect_telemetry = collect_telemetry
        #: Specs actually executed (cache misses) over this executor's life.
        self.submissions = 0

    def run(self, specs: Sequence[RunSpec]) -> list[RunRecord]:
        """Resolve every spec; records come back in input order."""
        specs = list(specs)
        total = len(specs)
        records: list[RunRecord | None] = [None] * total
        pending: list[tuple[int, RunSpec]] = []
        tracer = current_tracer()
        for index, spec in enumerate(specs):
            cached = None
            lookup_started = time.perf_counter()
            if self.cache is not None and not self.force:
                cached = self.cache.get_entry(spec)
            lookup_seconds = time.perf_counter() - lookup_started
            if cached is not None:
                if tracer.enabled:
                    tracer.emit(
                        "executor/cache_hit", spec=spec.experiment_id
                    )
                manifest = None
                if self.collect_telemetry:
                    if cached.telemetry is not None:
                        # The original run collected telemetry: replay the
                        # stored document.  Only provenance is rewritten
                        # (source/wall time are excluded from the content
                        # projection), so a cache hit reproduces the cold
                        # run's instruments byte-identically — what lets
                        # resumed sweep campaigns rebuild their roll-ups
                        # without re-simulating.
                        manifest = RunTelemetry.from_dict(cached.telemetry)
                        manifest.source = SOURCE_CACHE
                        manifest.wall_seconds = lookup_seconds
                    else:
                        manifest = self._cache_hit_manifest(
                            spec, lookup_seconds
                        )
                record = RunRecord(
                    spec=spec,
                    result=cached.result,
                    duration=0.0,
                    source=SOURCE_CACHE,
                    telemetry=manifest,
                )
                records[index] = record
                self._report(record, index, total)
            else:
                pending.append((index, spec))
        self.submissions += len(pending)
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                executed = self._run_pool(pending, total)
            else:
                executed = self._run_serial(pending, total)
            for index, record in executed:
                records[index] = record
        assert all(record is not None for record in records)
        return typing.cast("list[RunRecord]", records)

    # -- execution strategies ----------------------------------------------

    def _run_serial(
        self, pending: list[tuple[int, RunSpec]], total: int
    ) -> list[tuple[int, RunRecord]]:
        out: list[tuple[int, RunRecord]] = []
        for index, spec in pending:
            result, duration, manifest = execute_spec(
                spec, self.collect_telemetry
            )
            out.append(
                (
                    index,
                    self._finish(
                        spec, result, duration, SOURCE_SERIAL, index, total,
                        manifest,
                    ),
                )
            )
        return out

    def _run_pool(
        self, pending: list[tuple[int, RunSpec]], total: int
    ) -> list[tuple[int, RunRecord]]:
        package_parent = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(pending)),
                initializer=_worker_init,
                initargs=(package_parent,),
            )
        except (OSError, ValueError, NotImplementedError):
            # Restricted environments (no /dev/shm, no fork): stay correct.
            return self._run_serial(pending, total)
        out: list[tuple[int, RunRecord]] = []
        try:
            with pool:
                futures = {
                    pool.submit(
                        execute_spec, spec, self.collect_telemetry
                    ): (index, spec)
                    for index, spec in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    index, spec = futures[future]
                    result, duration, manifest = future.result()
                    out.append(
                        (
                            index,
                            self._finish(
                                spec, result, duration, SOURCE_POOL, index,
                                total, manifest,
                            ),
                        )
                    )
        except concurrent.futures.process.BrokenProcessPool:
            # A worker died (OOM, signal). Redo the whole batch serially
            # rather than guessing which futures completed.
            return self._run_serial(pending, total)
        return out

    # -- bookkeeping --------------------------------------------------------

    def _cache_hit_manifest(
        self, spec: RunSpec, lookup_seconds: float
    ) -> RunTelemetry:
        """A minimal manifest for a cache hit with no stored telemetry.

        The only span is the cache lookup itself — the original run
        collected nothing — so diffing a cold manifest against a warm
        one shows the full simulation time collapsing into
        ``cache/lookup``.
        """
        return RunTelemetry(
            run_id=spec.experiment_id,
            engine=spec.engine,
            seed=spec.root_seed,
            git_rev=git_rev(),
            fault_plan=fault_plan_hash(spec.faults),
            source=SOURCE_CACHE,
            wall_seconds=lookup_seconds,
            spans=[
                {
                    "name": "cache/lookup",
                    "calls": 1,
                    "seconds": lookup_seconds,
                }
            ],
        )

    def _finish(
        self,
        spec: RunSpec,
        result: "ExperimentResult",
        duration: float,
        source: str,
        index: int,
        total: int,
        manifest: RunTelemetry | None = None,
    ) -> RunRecord:
        if manifest is not None:
            manifest.source = source
        if self.cache is not None:
            self.cache.put(
                spec,
                result,
                duration,
                telemetry=manifest.to_dict() if manifest is not None else None,
            )
        record = RunRecord(
            spec=spec,
            result=result,
            duration=duration,
            source=source,
            telemetry=manifest,
        )
        self._report(record, index, total)
        return record

    def _report(self, record: RunRecord, index: int, total: int) -> None:
        if self.progress is not None:
            self.progress(record, index, total)
