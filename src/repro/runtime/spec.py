"""Declarative run specifications with content-addressed identity.

A :class:`RunSpec` names one experiment execution: the experiment id, the
keyword parameters passed to its runner, an optional root seed, and a
code-version salt.  Two specs with the same canonical key denote the same
computation, so the spec's hash can key an on-disk result cache
(:mod:`repro.runtime.cache`) and deduplicate work across processes.

The salt defaults to :func:`code_version` — a digest over every ``*.py``
source file in the ``repro`` package — so editing any source file
invalidates previously cached results without manual version bumps.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import pathlib

__all__ = ["RunSpec", "code_version", "freeze_params"]

#: Bump when the cache payload layout changes incompatibly.
CACHE_FORMAT_VERSION = 2


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``repro`` source file, as a cache-busting salt.

    Deterministic for a given source tree: files are hashed in sorted
    relative-path order, with the path mixed in so renames also miss.
    """
    package_root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def freeze_params(value: object) -> object:
    """Recursively convert ``value`` into a hashable canonical form.

    Mappings become sorted ``(key, value)`` tuples, sequences and sets
    become tuples, scalars pass through.  Anything else (functions,
    dataclass instances, media profiles...) is rejected: specs must stay
    picklable and content-hashable.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return tuple(
            (str(key), freeze_params(item))
            for key, item in sorted(value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(freeze_params(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(freeze_params(item) for item in sorted(value))
    raise TypeError(
        f"unsupported spec parameter type {type(value).__name__!r}; "
        "RunSpec parameters must be None/bool/int/float/str or "
        "nestings of dict/list/tuple/set over those"
    )


def _jsonable(value: object) -> object:
    """Frozen canonical form -> JSON-encodable structure."""
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value


def _canonical_faults(faults: object) -> str | None:
    """Normalise a fault-plan argument to canonical JSON (or ``None``).

    Empty plans normalise to ``None``: they are proven byte-identical to
    fault-free runs, so the two must share one content hash.
    """
    if faults is None:
        return None
    from repro.faults.models import FaultPlan

    if isinstance(faults, str):
        plan = FaultPlan.loads(faults)
    elif isinstance(faults, FaultPlan):
        plan = faults
    elif isinstance(faults, dict):
        plan = FaultPlan.from_dict(faults)
    else:
        raise TypeError(
            "faults must be a FaultPlan, a plan dict, a JSON string or "
            f"None, got {type(faults).__name__}"
        )
    if plan.is_empty:
        return None
    return plan.dumps()


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One experiment execution, identified by content.

    ``params`` is a sorted tuple of ``(name, frozen_value)`` pairs (use
    :meth:`make` rather than building it by hand).  ``root_seed`` is
    ``None`` to keep the experiment's own default seed — the seed path the
    original sequential suite used — or an int to override it.  ``salt``
    is ``None`` for "current code version".

    ``faults`` is a fault plan in its canonical JSON form
    (:meth:`repro.faults.models.FaultPlan.dumps`), or ``None`` for a
    fault-free run.  Faults change the *result* — unlike the engine —
    so they participate in :meth:`canonical_key`, :meth:`spec_hash` and
    equality; an empty plan is normalised to ``None`` at :meth:`make`
    time (it is proven byte-identical to a fault-free run).

    ``engine`` selects the simulation engine the run executes on (see
    :mod:`repro.net.engine`); ``None`` keeps the process default.  Both
    engines produce byte-identical results, so the engine is *execution
    strategy*, not content: it is deliberately excluded from
    :meth:`canonical_key` (and hence :meth:`spec_hash` and spec equality),
    keeping cache entries valid across engine choices.
    """

    experiment_id: str
    params: tuple[tuple[str, object], ...] = ()
    root_seed: int | None = None
    salt: str | None = None
    faults: str | None = None
    engine: str | None = dataclasses.field(default=None, compare=False)

    @classmethod
    def make(
        cls,
        experiment_id: str,
        *,
        root_seed: int | None = None,
        salt: str | None = None,
        faults: object = None,
        engine: str | None = None,
        **params: object,
    ) -> "RunSpec":
        """Build a spec, canonicalising parameters.

        ``faults`` accepts a :class:`~repro.faults.models.FaultPlan`, a
        plan dict, or a JSON string; all are validated and canonicalised
        through the plan's own serialisation.
        """
        if engine is not None:
            from repro.net.engine import resolve_engine

            resolve_engine(engine)  # validate eagerly
        frozen = tuple(
            (name, freeze_params(value))
            for name, value in sorted(params.items())
        )
        return cls(
            experiment_id=experiment_id,
            params=frozen,
            root_seed=root_seed,
            salt=salt,
            faults=_canonical_faults(faults),
            engine=engine,
        )

    def fault_plan(self):
        """The spec's :class:`~repro.faults.models.FaultPlan`, or ``None``."""
        if self.faults is None:
            return None
        from repro.faults.models import FaultPlan

        return FaultPlan.loads(self.faults)

    def kwargs(self) -> dict[str, object]:
        """The keyword arguments this spec passes to the runner."""
        return dict(self.params)

    def canonical_key(self) -> str:
        """Stable serialisation of everything that defines the result.

        ``engine`` is intentionally absent: engines are proven
        result-equivalent, so a cached result satisfies a spec regardless
        of the engine either run asked for.
        """
        payload = {
            "format": CACHE_FORMAT_VERSION,
            "experiment": self.experiment_id,
            "params": [
                [name, _jsonable(value)] for name, value in self.params
            ],
            "root_seed": self.root_seed,
            "salt": self.salt if self.salt is not None else code_version(),
            "faults": self.faults,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """Content address: sha256 of the canonical key."""
        return hashlib.sha256(self.canonical_key().encode()).hexdigest()

    def describe(self) -> str:
        """Short human-readable label (CLI progress lines)."""
        parts = [self.experiment_id]
        if self.params:
            rendered = ", ".join(
                f"{name}={value!r}" for name, value in self.params
            )
            parts.append(f"({rendered})")
        if self.root_seed is not None:
            parts.append(f"seed={self.root_seed}")
        if self.faults is not None:
            parts.append("[faulted]")
        return " ".join(parts)
