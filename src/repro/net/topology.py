"""Multi-segment broadcast topologies: segments, bridges, routes.

The paper's protocol lives on one broadcast domain (section 3.1's
single shared medium).  Real deployments chain several such domains —
a backbone bus bridged to floor busses, say — so this module adds the
*declarative* half of that story: a :class:`Topology` is a frozen value
naming the segments (each a complete HRTDM instance on its own medium)
and the store-and-forward :class:`BridgeSpec` s joining them.  The
*executable* half is :class:`repro.net.fabric.Fabric`, which runs the
segments and moves frames across bridges.

Bridge semantics
----------------
A bridge listens on its ``source`` segment (broadcast: it hears every
success), filters by ``class_map`` keys, and re-injects each heard
message on its ``target`` segment after ``forwarding_latency`` slots,
re-classed to the mapped *relay class* — a class owned by the bridge's
station on the target segment's HRTDM instance.  Relay classes are
fed exclusively by the bridge (the topology rejects explicit arrival
processes for them), so the target segment's feasibility analysis of
the relay class *is* the analysis of the forwarded traffic.

The bridge graph must be feed-forward (acyclic): a frame never returns
to a segment that already broadcast it, so store-and-forward floods
terminate and the fabric can run segments in topological order.

Constraints chosen for analyzability (checked at construction):

* within one target segment, each relay class is fed by at most one
  bridge (otherwise two journals would interleave on one class and
  per-class FIFO across the bridge would be unverifiable);
* each (segment, class) pair is forwarded by at most one bridge out of
  that segment (routes are chains, not multicast trees — one composed
  bound per forwarded class).

Together these make every forwarded class's journey a unique
:class:`~repro.model.route.Route`, and end-to-end deadline analysis a
sum of per-hop ``B_DDCR`` bounds plus bridge latencies
(:func:`repro.core.composition.compose_route_bound`).
"""

from __future__ import annotations

import dataclasses
import typing
from collections.abc import Mapping

from repro.model.route import Hop, Route
from repro.net.engine import resolve_engine
from repro.net.scenario import ProtocolFactory

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.models import FaultPlan
    from repro.model.arrival import ArrivalProcess
    from repro.model.problem import HRTDMProblem
    from repro.net.phy import MediumProfile
    from repro.obs.instruments import Telemetry
    from repro.sim.invariants import MonitorSuite

__all__ = ["BridgeSpec", "SegmentSpec", "Topology", "TopologyError"]


class TopologyError(ValueError):
    """An inconsistent topology (bad reference, cycle, ambiguous relay)."""


@dataclasses.dataclass(frozen=True)
class SegmentSpec:
    """One broadcast segment: a complete HRTDM instance on its own medium.

    The fields mirror the per-segment subset of
    :class:`~repro.net.scenario.Scenario`; run-wide concerns (seed,
    tracing, faults, monitors, telemetry) live on :class:`Topology`.
    ``engine`` overrides the topology-level engine for this segment
    only (e.g. a non-DDCR segment that the batch kernel cannot run).
    """

    name: str
    problem: "HRTDMProblem"
    medium: "MediumProfile"
    protocol_factory: ProtocolFactory
    arrivals: Mapping[str, "ArrivalProcess"] | None = None
    noise_rate: float = 0.0
    noise_seed: int = 0
    engine: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("segment needs a non-empty name")
        if self.engine is not None:
            resolve_engine(self.engine)  # validate eagerly
        if self.arrivals is not None:
            object.__setattr__(self, "arrivals", dict(self.arrivals))

    def class_names(self) -> frozenset[str]:
        return frozenset(c.name for c in self.problem.all_classes())


@dataclasses.dataclass(frozen=True)
class BridgeSpec:
    """A store-and-forward bridge from one segment onto another.

    ``station_id`` names the bridge's station on the *target* segment —
    an ordinary source of the target's HRTDM instance whose classes
    include every ``class_map`` value (the relay classes).  The bridge
    queues heard frames for ``forwarding_latency`` slots, then offers
    them through that station under the target segment's MAC; the queue
    holds at most ``queue_capacity`` frames (exceeding it is reported
    by the bridge-conservation invariant monitor, not silently
    dropped — at feasible loads the composed bound keeps occupancy
    below any sane capacity, and past it you want a violation, not
    quiet loss).
    """

    source: str
    target: str
    station_id: int
    class_map: Mapping[str, str]
    forwarding_latency: int = 0
    queue_capacity: int = 64

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise TopologyError("bridge needs source and target segments")
        if self.source == self.target:
            raise TopologyError(
                f"bridge cannot forward {self.source!r} onto itself "
                "(broadcast already delivered the frame there)"
            )
        if not self.class_map:
            raise TopologyError(
                f"bridge {self.name} forwards no classes (empty class_map)"
            )
        if self.forwarding_latency < 0:
            raise TopologyError(
                f"bridge {self.name}: forwarding latency must be >= 0"
            )
        if self.queue_capacity < 1:
            raise TopologyError(
                f"bridge {self.name}: queue capacity must be >= 1"
            )
        object.__setattr__(self, "class_map", dict(self.class_map))

    @property
    def name(self) -> str:
        return f"{self.source}->{self.target}"

    @property
    def relay_classes(self) -> frozenset[str]:
        """The target-segment classes this bridge injects into."""
        return frozenset(self.class_map.values())


@dataclasses.dataclass(frozen=True)
class Topology:
    """A frozen multi-segment configuration: the fabric's input value.

    Segment-local knobs live on each :class:`SegmentSpec`; everything
    here below ``bridges`` is run-wide and means exactly what it means
    on :class:`~repro.net.scenario.Scenario`.  Construction validates
    all cross-references and derives the topological segment order, so
    a :class:`~repro.net.fabric.Fabric` built from a Topology never
    discovers a structural problem mid-run.
    """

    segments: tuple[SegmentSpec, ...]
    bridges: tuple[BridgeSpec, ...] = ()
    trace: bool = False
    check_consistency: bool = False
    root_seed: int = 0
    engine: str | None = None
    faults: "FaultPlan | None" = None
    monitors: "bool | MonitorSuite | None" = None
    telemetry: "Telemetry | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "segments", tuple(self.segments))
        object.__setattr__(self, "bridges", tuple(self.bridges))
        if not self.segments:
            raise TopologyError("topology needs at least one segment")
        if self.engine is not None:
            resolve_engine(self.engine)  # validate eagerly
        names = [seg.name for seg in self.segments]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise TopologyError(f"duplicate segment names: {dupes}")
        self._validate_bridges()
        # Derived, cached on the frozen instance (order is pure data).
        object.__setattr__(self, "_order", self._topological_order())

    # -- lookups -----------------------------------------------------

    def segment(self, name: str) -> SegmentSpec:
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(f"no segment named {name!r}")

    def bridges_from(self, name: str) -> tuple[BridgeSpec, ...]:
        return tuple(b for b in self.bridges if b.source == name)

    def bridges_into(self, name: str) -> tuple[BridgeSpec, ...]:
        return tuple(b for b in self.bridges if b.target == name)

    def relay_classes(self, name: str) -> frozenset[str]:
        """Classes of segment ``name`` fed by bridges, not local traffic."""
        out: set[str] = set()
        for bridge in self.bridges_into(name):
            out |= bridge.relay_classes
        return frozenset(out)

    def segment_order(self) -> tuple[str, ...]:
        """Segment names in feed-forward (topological) order.

        Ties keep declaration order, so the staged execution sequence
        — hence any derived seeding — is deterministic.
        """
        return self._order  # type: ignore[attr-defined]

    # -- validation ----------------------------------------------------

    def _validate_bridges(self) -> None:
        names = {seg.name for seg in self.segments}
        forwarded: set[tuple[str, str]] = set()
        fed: set[tuple[str, str]] = set()
        for bridge in self.bridges:
            for end, label in ((bridge.source, "source"),
                               (bridge.target, "target")):
                if end not in names:
                    raise TopologyError(
                        f"bridge {bridge.name}: {label} segment "
                        f"{end!r} is not in the topology"
                    )
            source_seg = self.segment(bridge.source)
            target_seg = self.segment(bridge.target)
            try:
                station = target_seg.problem.source_by_id(bridge.station_id)
            except (KeyError, ValueError):
                raise TopologyError(
                    f"bridge {bridge.name}: target segment has no "
                    f"station {bridge.station_id}"
                ) from None
            station_classes = {c.name for c in station.message_classes}
            source_classes = source_seg.class_names()
            for heard, relay in bridge.class_map.items():
                if heard not in source_classes:
                    raise TopologyError(
                        f"bridge {bridge.name}: forwards unknown class "
                        f"{heard!r} of segment {bridge.source!r}"
                    )
                if relay not in station_classes:
                    raise TopologyError(
                        f"bridge {bridge.name}: relay class {relay!r} is "
                        f"not owned by station {bridge.station_id} on "
                        f"segment {bridge.target!r}"
                    )
                key = (bridge.source, heard)
                if key in forwarded:
                    raise TopologyError(
                        f"class {heard!r} of segment {bridge.source!r} is "
                        "forwarded by more than one bridge (routes must "
                        "be chains)"
                    )
                forwarded.add(key)
                relay_key = (bridge.target, relay)
                if relay_key in fed:
                    raise TopologyError(
                        f"relay class {relay!r} on segment "
                        f"{bridge.target!r} is fed by more than one "
                        "bridge (per-class FIFO would be ambiguous)"
                    )
                fed.add(relay_key)
            if target_seg.arrivals:
                clash = bridge.relay_classes & set(target_seg.arrivals)
                if clash:
                    raise TopologyError(
                        f"bridge {bridge.name}: relay classes "
                        f"{sorted(clash)} also have explicit arrival "
                        "processes on the target segment (relay classes "
                        "are fed exclusively by their bridge)"
                    )

    def _topological_order(self) -> tuple[str, ...]:
        names = [seg.name for seg in self.segments]
        indegree = {name: 0 for name in names}
        for bridge in self.bridges:
            indegree[bridge.target] += 1
        # Kahn's algorithm, always emitting the first ready segment in
        # declaration order — the result depends only on the topology,
        # never on bridge declaration order.
        remaining = list(names)
        order: list[str] = []
        while remaining:
            name = next((n for n in remaining if indegree[n] == 0), None)
            if name is None:
                break
            remaining.remove(name)
            order.append(name)
            for bridge in self.bridges_from(name):
                indegree[bridge.target] -= 1
        if len(order) != len(names):
            cyclic = sorted(n for n in names if n not in order)
            raise TopologyError(
                f"bridge graph is cyclic through segments {cyclic} "
                "(store-and-forward loops would forward forever)"
            )
        return tuple(order)

    # -- routes --------------------------------------------------------

    def route_for(self, segment: str, class_name: str) -> Route:
        """The journey of class ``class_name`` originating on ``segment``.

        Follows the unique bridge chain forward; a class that is never
        forwarded yields a single-hop route.  Raises ``KeyError`` for an
        unknown (segment, class) pair, and rejects relay classes (their
        journeys originate upstream — ask for the origin class instead).
        """
        seg = self.segment(segment)
        if class_name not in seg.class_names():
            raise KeyError(
                f"segment {segment!r} has no class {class_name!r}"
            )
        if class_name in self.relay_classes(segment):
            raise TopologyError(
                f"{class_name!r} is a relay class on {segment!r}; routes "
                "originate at the first broadcast of a message"
            )
        hops = [Hop(segment, class_name)]
        current, cls = segment, class_name
        while True:
            step = None
            for bridge in self.bridges_from(current):
                if cls in bridge.class_map:
                    step = (bridge.target, bridge.class_map[cls])
                    break
            if step is None:
                return Route(tuple(hops))
            current, cls = step
            hops.append(Hop(current, cls))

    def routes(self) -> tuple[Route, ...]:
        """All multi-hop routes, one per forwarded origin class.

        Ordered by (declaration order of origin segment, class name) so
        downstream tables are stable.
        """
        relay: set[tuple[str, str]] = set()
        for bridge in self.bridges:
            relay |= {(bridge.target, r) for r in bridge.relay_classes}
        out: list[Route] = []
        for seg in self.segments:
            forwarded = {
                heard
                for bridge in self.bridges_from(seg.name)
                for heard in bridge.class_map
            }
            for name in sorted(forwarded):
                if (seg.name, name) in relay:
                    continue  # mid-chain: covered by the origin's route
                out.append(self.route_for(seg.name, name))
        return tuple(out)
