"""Frames: what stations place on the broadcast medium.

A frame wraps one :class:`~repro.model.message.MessageInstance` together
with its source station id.  Encapsulation overhead (``l -> l'``) is applied
by the medium profile at transmission time, not stored here.
"""

from __future__ import annotations

import dataclasses

from repro.model.message import MessageInstance

__all__ = ["Frame"]


@dataclasses.dataclass(frozen=True, slots=True)
class Frame:
    """One Data Link PDU in flight.

    ``burst_continue`` is the half-duplex Gigabit Ethernet packet-bursting
    signal (section 5): the transmitter keeps the carrier after this frame
    and will send another one without relinquishing channel control; every
    station observes the flag and defers.
    """

    station_id: int
    message: MessageInstance
    burst_continue: bool = False

    @property
    def length(self) -> int:
        """DL-PDU bit length ``l(msg)``."""
        return self.message.length

    @property
    def absolute_deadline(self) -> int:
        return self.message.absolute_deadline

    def __repr__(self) -> str:
        return (
            f"<Frame src={self.station_id} cls={self.message.msg_class.name} "
            f"DM={self.message.absolute_deadline}>"
        )
