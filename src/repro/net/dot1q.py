"""IEEE 802.1Q/802.1p bridging: carrying deadlines in priority fields.

Section 5: "IEEE 802.1Q specifies explicit priorities in 802 network
packet headers.  With those real-time applications we consider,
Classes-of-Service are naturally defined via task deadlines D, transformed
into message deadlines d, which can be passed on to the CSMA/DDCR layer
via the standard conformant priority field."

The 802.1p field is only 3 bits, so passing a deadline through it
*quantises* it to one of 8 classes.  This module provides the two mappings
(deadline -> priority code point, priority code point -> representative
deadline) and the quantisation analysis: what the round trip does to
deadline ordering and to CSMA/DDCR's equivalence classes.

The mapping is logarithmic — relative deadlines of real-time traffic span
microseconds to seconds, and a log grid keeps the relative quantisation
error uniform across that range.
"""

from __future__ import annotations

import dataclasses

from repro.model.message import MessageClass

__all__ = ["PriorityMap", "DEFAULT_PRIORITY_MAP"]


@dataclasses.dataclass(frozen=True)
class PriorityMap:
    """A logarithmic deadline <-> 802.1p priority code point mapping.

    ``pcp = 7`` is the most urgent class (shortest deadlines), matching
    802.1p convention where 7 is highest priority.  Band edges are the
    integers ``round(min_deadline * ratio**j)``: pcp ``7 - j`` covers
    deadlines in ``(edge[j-1], edge[j]]``, and everything beyond the last
    edge maps to pcp 0.  Representatives are band upper edges, making the
    round trip idempotent and never *relaxing* a deadline within the grid.
    """

    min_deadline: int
    ratio: float

    def __post_init__(self) -> None:
        if self.min_deadline < 1:
            raise ValueError(
                f"min_deadline must be >= 1, got {self.min_deadline}"
            )
        if self.ratio <= 1.0:
            raise ValueError(f"ratio must be > 1, got {self.ratio}")

    @property
    def edges(self) -> tuple[int, ...]:
        """Band upper edges, ``edges[j] = round(min_deadline * ratio**j)``."""
        return tuple(
            round(self.min_deadline * self.ratio**j) for j in range(8)
        )

    def encode(self, deadline: int) -> int:
        """Deadline (bit-times) -> priority code point in [0, 7]."""
        if deadline < 1:
            raise ValueError(f"deadline must be >= 1, got {deadline}")
        for j, edge in enumerate(self.edges):
            if deadline <= edge:
                return 7 - j
        return 0

    def decode(self, pcp: int) -> int:
        """Priority code point -> the class's *representative* deadline.

        The representative is the upper edge of the class's deadline band
        — the safe value a receiver should assume.  pcp 0 (the unbounded
        class) is represented by the last grid edge: a beyond-grid
        deadline is *tightened*, which is the safe direction for a
        deadline-driven scheduler.
        """
        if not 0 <= pcp <= 7:
            raise ValueError(f"pcp must be in [0, 7], got {pcp}")
        return self.edges[7 - pcp]

    def quantise(self, deadline: int) -> int:
        """The round trip: the deadline CSMA/DDCR sees after the header."""
        return self.decode(self.encode(deadline))

    def preserves_order(self, deadlines: list[int]) -> bool:
        """Does quantisation preserve the (weak) EDF order of these values?

        True iff for every pair, a strictly earlier deadline never maps to
        a strictly later representative — the condition under which the
        802.1p detour cannot *invert* priorities, only merge them.
        """
        pairs = sorted(deadlines)
        quantised = [self.quantise(d) for d in pairs]
        return all(a <= b for a, b in zip(quantised, quantised[1:]))

    def classes_used(self, classes: list[MessageClass]) -> dict[int, list[str]]:
        """Which message classes share each code point (merge report)."""
        result: dict[int, list[str]] = {}
        for cls in classes:
            result.setdefault(self.encode(cls.deadline), []).append(cls.name)
        return result


#: 4.096 us (one GigE slot) up to ~4.3 s in 8 logarithmic classes; the
#: paper notes sub-4.096-us deadline accuracy is uncommon (section 5).
DEFAULT_PRIORITY_MAP = PriorityMap(min_deadline=4_096, ratio=8.0)
