"""The slotted broadcast channel.

Runs as a process on the DES kernel.  Each round it collects transmission
offers from every station, resolves the channel state (silence / success /
collision), advances time by the slot time (control slots) or the frame's
physical transmission time (successes, with carrier extension to the slot
time on destructive media, as in half-duplex Gigabit Ethernet), and feeds
the identical :class:`~repro.protocols.base.SlotObservation` back to every
station — the common-knowledge substrate all protocols rely on.

The channel also keeps slot-level accounting (how many slots of each kind,
payload bits delivered) and emits one trace record per round.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.net.frames import Frame
from repro.net.phy import MediumProfile
from repro.protocols.base import ChannelState, SlotObservation
from repro.sim.engine import Environment
from repro.sim.process import ProcessGenerator
from repro.sim.trace import TraceLog

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.station import Station

__all__ = ["BroadcastChannel", "ChannelStats"]


@dataclasses.dataclass
class ChannelStats:
    """Slot-level accounting over a run."""

    silence_slots: int = 0
    collision_slots: int = 0
    successes: int = 0
    busy_time: int = 0
    idle_time: int = 0
    collision_time: int = 0
    payload_bits: int = 0
    corrupted_slots: int = 0
    jammed_slots: int = 0

    def utilization(self, elapsed: int) -> float:
        """Fraction of elapsed time spent delivering payload bits."""
        if elapsed <= 0:
            return 0.0
        return self.payload_bits / elapsed

    @property
    def rounds(self) -> int:
        return self.silence_slots + self.collision_slots + self.successes


class BroadcastChannel:
    """One shared broadcast medium and its attached stations."""

    def __init__(
        self,
        env: Environment,
        medium: MediumProfile,
        trace: TraceLog | None = None,
        check_consistency: bool = False,
        noise_rate: float = 0.0,
        noise_seed: int = 0,
        noise_rng: random.Random | None = None,
    ) -> None:
        """``noise_rate`` injects *common-mode* slot corruption: with this
        per-slot probability a silence or success is garbled into a
        collision seen identically by every station (the frame, if any, is
        destroyed and must be retransmitted).  Common-mode corruption is
        the failure model under which deterministic broadcast protocols
        retain consistency — every replica digests the same bad slot.

        ``noise_rng`` supplies the corruption stream directly (the
        simulation layer passes a :class:`~repro.sim.rng.SeedSequenceRegistry`
        stream); when absent, one is derived from ``noise_seed``."""
        if not 0.0 <= noise_rate < 1.0:
            raise ValueError(f"noise_rate must be in [0, 1), got {noise_rate}")
        self.env = env
        self.medium = medium
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.check_consistency = check_consistency
        self.noise_rate = noise_rate
        self._noise_rng = (
            noise_rng if noise_rng is not None else random.Random(noise_seed)
        )
        self.stations: list["Station"] = []
        self.stats = ChannelStats()
        self.observations: int = 0
        #: When set, the bus is *jammed* from this time on: every slot is
        #: observed as a collision (broken termination / babbling idiot).
        #: The dual-bus layer uses this to model a bus failure.
        self.jam_from: int | None = None

    def attach(self, station: "Station") -> None:
        if any(s.station_id == station.station_id for s in self.stations):
            raise ValueError(f"duplicate station id {station.station_id}")
        self.stations.append(station)

    def run(self, horizon: int) -> ProcessGenerator:
        """The channel process: round loop until ``horizon`` bit-times.

        Start it with ``env.process(channel.run(horizon))``.
        """
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        if not self.stations:
            raise RuntimeError("channel has no stations attached")
        while self.env.now < horizon:
            now = int(self.env.now)
            for station in self.stations:
                station.deliver_due(now)
            offers = [
                (station, station.mac.offer(now)) for station in self.stations
            ]
            transmitters = [
                (station, message)
                for station, message in offers
                if message is not None
            ]
            jammed = self.jam_from is not None and now >= self.jam_from
            corrupted = jammed or (
                self.noise_rate > 0.0
                and len(transmitters) < 2
                and self._noise_rng.random() < self.noise_rate
            )
            if corrupted:
                # Common-mode corruption: everyone hears a collision; any
                # frame on the wire is destroyed (no completion).
                if jammed:
                    self.stats.jammed_slots += 1
                else:
                    self.stats.corrupted_slots += 1
                self.stats.collision_slots += 1
                duration = self.medium.slot_time
                self.stats.collision_time += duration
                observation = SlotObservation(
                    state=ChannelState.COLLISION,
                    start=now,
                    duration=duration,
                    frame=None,
                    occupied_children=None,
                )
                for station in self.stations:
                    station.mac.observe(observation)
                self.observations += 1
                self.trace.emit(
                    now, "slot", state="corrupted", duration=duration,
                    source=None, msg=None,
                )
                if self.check_consistency:
                    self._assert_lockstep(now)
                yield self.env.timeout(duration)
                continue
            if not transmitters:
                state = ChannelState.SILENCE
                duration = self.medium.slot_time
                frame = None
                self.stats.silence_slots += 1
                self.stats.idle_time += duration
            elif len(transmitters) == 1:
                station, message = transmitters[0]
                frame = Frame(
                    station_id=station.station_id,
                    message=message,
                    burst_continue=station.mac.wants_burst_continuation(now),
                )
                state = ChannelState.SUCCESS
                duration = self.medium.transmission_time(message.length)
                if self.medium.destructive_collisions:
                    # Half-duplex GigE carrier extension: a frame occupies
                    # at least one slot so collisions stay detectable.
                    duration = max(duration, self.medium.slot_time)
                self.stats.successes += 1
                self.stats.busy_time += duration
                self.stats.payload_bits += message.length
            else:
                state = ChannelState.COLLISION
                duration = self.medium.slot_time
                frame = None
                self.stats.collision_slots += 1
                self.stats.collision_time += duration
            occupied = None
            if (
                state is ChannelState.COLLISION
                and not self.medium.destructive_collisions
            ):
                tags = [
                    station.mac.contention_tag(now)
                    for station, _ in transmitters
                ]
                if all(tag is not None for tag in tags):
                    occupied = frozenset(tags)
            observation = SlotObservation(
                state=state,
                start=now,
                duration=duration,
                frame=frame,
                occupied_children=occupied,
            )
            for station in self.stations:
                station.mac.observe(observation)
            self.observations += 1
            self.trace.emit(
                now,
                "slot",
                state=state.value,
                duration=duration,
                source=None if frame is None else frame.station_id,
                msg=None if frame is None else frame.message.msg_class.name,
            )
            if self.check_consistency:
                self._assert_lockstep(now)
            yield self.env.timeout(duration)

    def _assert_lockstep(self, now: int) -> None:
        """All stations running the same protocol class must agree on the
        common-knowledge part of their state."""
        by_type: dict[type, tuple[object, ...]] = {}
        for station in self.stations:
            key = station.mac.public_state()
            mac_type = type(station.mac)
            if mac_type in by_type and by_type[mac_type] != key:
                raise AssertionError(
                    f"t={now}: stations disagree on shared "
                    f"{mac_type.__name__} state:\n"
                    f"  {by_type[mac_type]}\n  {key}"
                )
            by_type[mac_type] = key
