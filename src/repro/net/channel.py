"""The slotted broadcast channel.

Each round the channel collects transmission offers from every station,
resolves the channel state (silence / success / collision), advances time
by the slot time (control slots) or the frame's physical transmission time
(successes, with carrier extension to the slot time on destructive media,
as in half-duplex Gigabit Ethernet), and feeds the identical
:class:`~repro.protocols.base.SlotObservation` back to every station — the
common-knowledge substrate all protocols rely on.

The round semantics live in one place — :class:`_RoundDriver` — and two
engines turn the crank:

* :meth:`BroadcastChannel.run` is the general-DES path: a generator
  process on :class:`~repro.sim.engine.Environment` that yields one
  timeout per round.  It composes with arbitrary foreign processes
  (dual-bus topologies run two channels on one clock this way).
* :meth:`BroadcastChannel.run_fast` is the slot-synchronous fast path: a
  direct Python loop that owns the clock and advances ``env.now`` itself,
  skipping the event heap, the generator suspend/resume and the per-round
  timeout allocation.  The moment any foreign event appears on the queue
  it rejoins the DES mid-run, so it is always safe to select.

Both engines execute the same driver and draw from the same RNG in the
same order, so their results are byte-identical (the differential tests
assert this).  The channel also keeps slot-level accounting (how many
slots of each kind, payload bits delivered) and emits one trace record per
round when tracing is enabled.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.net.frames import Frame
from repro.net.phy import MediumProfile
from repro.protocols.base import ChannelState, SlotObservation
from repro.sim.engine import Environment
from repro.sim.process import ProcessGenerator
from repro.sim.trace import NULL_TRACE, TraceLog

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.station import Station

__all__ = ["BroadcastChannel", "ChannelStats"]

_SILENCE = ChannelState.SILENCE
_SUCCESS = ChannelState.SUCCESS
_COLLISION = ChannelState.COLLISION


@dataclasses.dataclass
class ChannelStats:
    """Slot-level accounting over a run."""

    silence_slots: int = 0
    collision_slots: int = 0
    successes: int = 0
    busy_time: int = 0
    idle_time: int = 0
    collision_time: int = 0
    payload_bits: int = 0
    corrupted_slots: int = 0
    jammed_slots: int = 0

    def utilization(self, elapsed: int) -> float:
        """Fraction of elapsed time spent delivering payload bits."""
        if elapsed <= 0:
            return 0.0
        return self.payload_bits / elapsed

    @property
    def rounds(self) -> int:
        return self.silence_slots + self.collision_slots + self.successes


class _RoundDriver:
    """One channel round, engine-independent, on an allocation diet.

    Built once per run: everything loop-invariant — the slot time, the
    noise gate, whether tracing/consistency checks are on — is hoisted
    into slots here, so the per-round body allocates nothing beyond the
    :class:`SlotObservation` itself (and a Frame on successes).  Mutable
    run state (``jam_from``, the station list object, stats) is still read
    through the channel each round, so mid-run changes keep working.
    """

    __slots__ = (
        "channel",
        "stations",
        "stats",
        "slot_time",
        "transmission_time",
        "destructive",
        "noise_rate",
        "noise_random",
        "trace",
        "trace_on",
        "check",
    )

    def __init__(self, channel: "BroadcastChannel") -> None:
        self.channel = channel
        #: The channel's live station list (not a copy): a station attached
        #: mid-run participates from its next round, as on the DES path.
        self.stations = channel.stations
        self.stats = channel.stats
        medium = channel.medium
        self.slot_time = medium.slot_time
        self.transmission_time = medium.transmission_time
        self.destructive = medium.destructive_collisions
        self.noise_rate = channel.noise_rate
        self.noise_random = channel._noise_rng.random
        self.trace = channel.trace
        self.trace_on = channel.trace.enabled
        self.check = channel.check_consistency

    def round(self, now: int) -> int:
        """Run one channel round starting at ``now``; returns its duration."""
        channel = self.channel
        stations = self.stations
        stats = self.stats
        slot_time = self.slot_time
        for station in stations:
            pending = station._pending_arrivals
            if pending and pending[0][0] <= now:
                station.deliver_due(now)
        transmitters = []
        for station in stations:
            message = station.mac.offer(now)
            if message is not None:
                transmitters.append((station, message))
        jam_from = channel.jam_from
        jammed = jam_from is not None and now >= jam_from
        corrupted = jammed or (
            self.noise_rate > 0.0
            and len(transmitters) < 2
            and self.noise_random() < self.noise_rate
        )
        if corrupted:
            # Common-mode corruption: everyone hears a collision; any
            # frame on the wire is destroyed (no completion).
            if jammed:
                stats.jammed_slots += 1
            else:
                stats.corrupted_slots += 1
            stats.collision_slots += 1
            stats.collision_time += slot_time
            observation = SlotObservation(
                state=_COLLISION,
                start=now,
                duration=slot_time,
                frame=None,
                occupied_children=None,
            )
            for station in stations:
                station.mac.observe(observation)
            channel.observations += 1
            if self.trace_on:
                self.trace.emit(
                    now, "slot", state="corrupted", duration=slot_time,
                    source=None, msg=None,
                )
            if self.check:
                channel._assert_lockstep(now)
            return slot_time
        if not transmitters:
            state = _SILENCE
            duration = slot_time
            frame = None
            stats.silence_slots += 1
            stats.idle_time += slot_time
        elif len(transmitters) == 1:
            station, message = transmitters[0]
            frame = Frame(
                station_id=station.station_id,
                message=message,
                burst_continue=station.mac.wants_burst_continuation(now),
            )
            state = _SUCCESS
            duration = self.transmission_time(message.length)
            if self.destructive and duration < slot_time:
                # Half-duplex GigE carrier extension: a frame occupies
                # at least one slot so collisions stay detectable.
                duration = slot_time
            stats.successes += 1
            stats.busy_time += duration
            stats.payload_bits += message.length
        else:
            state = _COLLISION
            duration = slot_time
            frame = None
            stats.collision_slots += 1
            stats.collision_time += slot_time
        occupied = None
        if state is _COLLISION and not self.destructive:
            tags = [
                station.mac.contention_tag(now)
                for station, _ in transmitters
            ]
            if all(tag is not None for tag in tags):
                occupied = frozenset(tags)
        observation = SlotObservation(
            state=state,
            start=now,
            duration=duration,
            frame=frame,
            occupied_children=occupied,
        )
        for station in stations:
            station.mac.observe(observation)
        channel.observations += 1
        if self.trace_on:
            self.trace.emit(
                now,
                "slot",
                state=state.value,
                duration=duration,
                source=None if frame is None else frame.station_id,
                msg=None if frame is None else frame.message.msg_class.name,
            )
        if self.check:
            channel._assert_lockstep(now)
        return duration


class BroadcastChannel:
    """One shared broadcast medium and its attached stations."""

    def __init__(
        self,
        env: Environment,
        medium: MediumProfile,
        trace: TraceLog | None = None,
        check_consistency: bool = False,
        noise_rate: float = 0.0,
        noise_seed: int = 0,
        noise_rng: random.Random | None = None,
    ) -> None:
        """``noise_rate`` injects *common-mode* slot corruption: with this
        per-slot probability a silence or success is garbled into a
        collision seen identically by every station (the frame, if any, is
        destroyed and must be retransmitted).  Common-mode corruption is
        the failure model under which deterministic broadcast protocols
        retain consistency — every replica digests the same bad slot.

        ``noise_rng`` supplies the corruption stream directly (the
        simulation layer passes a :class:`~repro.sim.rng.SeedSequenceRegistry`
        stream); when absent, one is derived from ``noise_seed``."""
        if not 0.0 <= noise_rate < 1.0:
            raise ValueError(f"noise_rate must be in [0, 1), got {noise_rate}")
        self.env = env
        self.medium = medium
        self.trace = trace if trace is not None else NULL_TRACE
        self.check_consistency = check_consistency
        self.noise_rate = noise_rate
        self._noise_rng = (
            noise_rng if noise_rng is not None else random.Random(noise_seed)
        )
        self.stations: list["Station"] = []
        self.stats = ChannelStats()
        self.observations: int = 0
        #: When set, the bus is *jammed* from this time on: every slot is
        #: observed as a collision (broken termination / babbling idiot).
        #: The dual-bus layer uses this to model a bus failure.
        self.jam_from: int | None = None

    def attach(self, station: "Station") -> None:
        if any(s.station_id == station.station_id for s in self.stations):
            raise ValueError(f"duplicate station id {station.station_id}")
        self.stations.append(station)

    def _check_runnable(self, horizon: int) -> None:
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        if not self.stations:
            raise RuntimeError("channel has no stations attached")

    def run(self, horizon: int) -> ProcessGenerator:
        """The channel process: round loop until ``horizon`` bit-times.

        This is the general-DES engine; start it with
        ``env.process(channel.run(horizon))``.  For the slot-synchronous
        fast path, call :meth:`run_fast` instead.
        """
        self._check_runnable(horizon)
        driver = _RoundDriver(self)
        env = self.env
        while env.now < horizon:
            yield env.timeout(driver.round(int(env.now)))

    def run_fast(self, horizon: int) -> None:
        """Run the round loop to ``horizon`` as a direct loop owning the clock.

        The slot-loop fast path: while this channel is the only
        time-advancing activity (no events on the environment's queue), no
        heap operations, generator suspensions or timeout events happen at
        all — the loop advances ``env.now`` itself after each round.

        Fallback is automatic and exact: if foreign events are pending at
        entry, the whole run happens on the DES; if one appears mid-run
        (a process registered by a trace subscriber, a host extension),
        the loop re-enters the event queue *after the current round's
        slot*, which is precisely where the DES path would interleave it.
        On return, ``env.now == horizon`` exactly as with
        ``env.run(until=horizon)``.
        """
        self._check_runnable(horizon)
        env = self.env
        if env.pending:
            env.process(self.run(horizon))
            env.run(until=horizon)
            return
        driver = _RoundDriver(self)
        round_ = driver.round
        now = env.now
        while now < horizon:
            duration = round_(int(now))
            if env.pending:
                env.process(self._rejoin_des(horizon, duration))
                env.run(until=horizon)
                return
            now += duration
            env.advance_to(now if now < horizon else horizon)

    def _rejoin_des(self, horizon: int, delay: int) -> ProcessGenerator:
        """Resume the round loop on the event heap after ``delay``."""
        yield self.env.timeout(delay)
        yield from self.run(horizon)

    def _assert_lockstep(self, now: int) -> None:
        """All stations running the same protocol class must agree on the
        common-knowledge part of their state."""
        by_type: dict[type, tuple[object, ...]] = {}
        for station in self.stations:
            key = station.mac.public_state()
            mac_type = type(station.mac)
            if mac_type in by_type and by_type[mac_type] != key:
                raise AssertionError(
                    f"t={now}: stations disagree on shared "
                    f"{mac_type.__name__} state:\n"
                    f"  {by_type[mac_type]}\n  {key}"
                )
            by_type[mac_type] = key
