"""The slotted broadcast channel.

Each round the channel collects transmission offers from every station,
resolves the channel state (silence / success / collision), advances time
by the slot time (control slots) or the frame's physical transmission time
(successes, with carrier extension to the slot time on destructive media,
as in half-duplex Gigabit Ethernet), and feeds the identical
:class:`~repro.protocols.base.SlotObservation` back to every station — the
common-knowledge substrate all protocols rely on.

The round semantics live in one place — :class:`_RoundDriver` — and one
entry point turns the crank: :meth:`BroadcastChannel.run` resolves the
engine request (explicit argument, ambient :func:`~repro.net.engine.use_engine`
scope, ``REPRO_ENGINE``, default ``auto``) through
:func:`~repro.net.engine.resolve_engine` — the single place engine
resolution happens — and dispatches to one of three internal tiers:

* the general-DES path: a generator process on
  :class:`~repro.sim.engine.Environment` that yields one timeout per
  round.  It composes with arbitrary foreign processes; multi-channel
  topologies (dual bus, the fabric) obtain the raw generator via
  :meth:`BroadcastChannel.process` and register it themselves.
* the slot-synchronous fast path (``fastloop``/``auto``): a direct Python
  loop that owns the clock and advances ``env.now`` itself, skipping the
  event heap, the generator suspend/resume and the per-round timeout
  allocation.  The moment any foreign event appears on the queue it
  rejoins the DES mid-run, so it is always safe to select.
* the struct-of-arrays batch kernel (:mod:`repro.net.batch`):
  per-station state lives in array columns and one shadow protocol
  replica digests each slot, so the per-slot cost is near-constant in
  the station count.  It is structurally limited to plain single-bus
  CSMA/DDCR runs; anything else auto-falls-back to the fast loop with
  the reason reported (and recorded in run manifests).

The historical per-engine entry points ``run_fast``/``run_batch`` remain
as thin deprecated aliases of ``run(horizon, engine=...)``.

All engines draw from the same RNG in the same order, so their results
are byte-identical (the differential tests assert this, three ways).  The
channel also keeps slot-level accounting (how many slots of each kind,
payload bits delivered) and emits one trace record per round when tracing
is enabled.
"""

from __future__ import annotations

import dataclasses
import random
import typing
import warnings

from repro.net.engine import resolve_engine
from repro.net.frames import Frame
from repro.net.phy import MediumProfile
from repro.obs.context import current_tracer
from repro.obs.instruments import LATENCY_EDGES, NULL_TELEMETRY, Telemetry
from repro.obs.tracer import FlightRecorder
from repro.protocols.base import ChannelState, SlotObservation
from repro.sim.engine import Environment
from repro.sim.process import ProcessGenerator
from repro.sim.trace import NULL_TRACE, TraceLog

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.station import Station

__all__ = ["BroadcastChannel", "ChannelStats"]

_SILENCE = ChannelState.SILENCE
_SUCCESS = ChannelState.SUCCESS
_COLLISION = ChannelState.COLLISION


@dataclasses.dataclass
class ChannelStats:
    """Slot-level accounting over a run."""

    silence_slots: int = 0
    collision_slots: int = 0
    successes: int = 0
    busy_time: int = 0
    idle_time: int = 0
    collision_time: int = 0
    payload_bits: int = 0
    corrupted_slots: int = 0
    jammed_slots: int = 0

    def utilization(self, elapsed: int) -> float:
        """Fraction of elapsed time spent delivering payload bits."""
        if elapsed <= 0:
            return 0.0
        return self.payload_bits / elapsed

    @property
    def rounds(self) -> int:
        return self.silence_slots + self.collision_slots + self.successes


class _RoundDriver:
    """One channel round, engine-independent, on an allocation diet.

    Built once per run: everything loop-invariant — the slot time, the
    armed noise gates, whether tracing/consistency checks/faults/monitors
    are on — is hoisted into slots here, so the fault-free per-round body
    allocates nothing beyond the :class:`SlotObservation` itself (and a
    Frame on successes).  Mutable run state (``jam_from``/``jam_until``,
    the station list object, stats) is still read through the channel
    each round, so mid-run changes keep working.

    Noise flows through one code path: the channel's legacy
    ``noise_rate`` kwarg and any fault-plan noise models all arm gate
    objects (:class:`repro.faults.runtime.BernoulliGate` /
    :class:`~repro.faults.runtime.GilbertElliottGate`) consulted in a
    fixed order on every non-jammed slot, so the RNG draw sequence — and
    hence byte-identity across engines — is a pure function of the run.
    """

    __slots__ = (
        "channel",
        "stations",
        "stats",
        "slot_time",
        "transmission_time",
        "destructive",
        "noise_gates",
        "faults",
        "monitors",
        "trace",
        "trace_on",
        "check",
        "telemetry",
        "telemetry_on",
        "tracer",
        "tracer_on",
        "ctr_silence",
        "ctr_success",
        "ctr_collision",
        "ctr_corrupted",
        "ctr_jammed",
        "ctr_noise_fires",
        "latency_hists",
    )

    def __init__(self, channel: "BroadcastChannel") -> None:
        self.channel = channel
        #: The channel's live station list (not a copy): a station attached
        #: mid-run participates from its next round, as on the DES path.
        self.stations = channel.stations
        self.stats = channel.stats
        medium = channel.medium
        self.slot_time = medium.slot_time
        self.transmission_time = medium.transmission_time
        self.destructive = medium.destructive_collisions
        gates: list = []
        if channel.noise_rate > 0.0:
            from repro.faults.runtime import BernoulliGate

            gates.append(BernoulliGate(channel.noise_rate, channel._noise_rng))
        self.faults = channel.faults
        if self.faults is not None:
            # Fault-plan gates are armed once on the injector and carry
            # their own state, so a mid-run driver rebuild (the fast
            # loop's DES rejoin) resumes them rather than resetting.
            gates.extend(self.faults.noise_gates)
        self.noise_gates = tuple(gates)
        self.monitors = channel.monitors
        self.trace = channel.trace
        self.trace_on = channel.trace.enabled
        self.check = channel.check_consistency
        # Telemetry instruments, hoisted once per driver build.  They are
        # fetched by name from the registry, so a mid-run rebuild (the
        # fast loop's DES rejoin) resumes the same counters.
        telemetry = channel.telemetry
        self.telemetry = telemetry
        self.telemetry_on = telemetry.enabled
        # Flight recorder, hoisted like the telemetry gate: zero per-round
        # cost when disabled (the common case).
        self.tracer = channel.tracer
        self.tracer_on = channel.tracer.enabled
        if self.telemetry_on:
            prefix = channel.telemetry_prefix
            self.ctr_silence = telemetry.counter(f"{prefix}slots/silence")
            self.ctr_success = telemetry.counter(f"{prefix}slots/success")
            self.ctr_collision = telemetry.counter(f"{prefix}slots/collision")
            self.ctr_corrupted = telemetry.counter(f"{prefix}slots/corrupted")
            self.ctr_jammed = telemetry.counter(f"{prefix}slots/jammed")
            if self.noise_gates:
                self.ctr_noise_fires = telemetry.counter(
                    f"{prefix}faults/noise_gate_fires"
                )
            #: message-class name -> per-class latency histogram.
            self.latency_hists: dict[str, object] = {}

    def round(self, now: int) -> int:
        """Run one channel round starting at ``now``; returns its duration."""
        channel = self.channel
        stations = self.stations
        stats = self.stats
        slot_time = self.slot_time
        faults = self.faults
        if faults is None:
            down = None
            extra = None
            for station in stations:
                pending = station._pending_arrivals
                if pending and pending[0][0] <= now:
                    station.deliver_due(now)
            transmitters = []
            for station in stations:
                message = station.mac.offer(now)
                if message is not None:
                    transmitters.append((station, message))
            wire = len(transmitters)
        else:
            faults.begin_round(now)
            down = faults.down or None
            suppressed = faults.suppressed
            extra = faults.extra or None
            for station in stations:
                if down is not None and station.station_id in down:
                    continue  # crashed: arrivals keep pending
                pending = station._pending_arrivals
                if pending and pending[0][0] <= now:
                    station.deliver_due(now)
            transmitters = []
            for station in stations:
                sid = station.station_id
                if down is not None and sid in down:
                    continue
                message = station.mac.offer(now)
                if message is not None:
                    if suppressed and sid in suppressed:
                        # Clock drift: the offer never reached the wire.
                        station.mac.suppress_offer()
                    else:
                        transmitters.append((station, message))
            wire = len(transmitters)
            if extra is not None:
                wire += len(extra)
        jam_from = channel.jam_from
        jammed = jam_from is not None and now >= jam_from and (
            channel.jam_until is None or now < channel.jam_until
        )
        if jammed:
            corrupted = True
        elif self.noise_gates:
            # Every gate is consulted every slot (stateful chains must
            # advance even after the slot is already corrupt).
            corrupted = False
            telemetry_on = self.telemetry_on
            for gate in self.noise_gates:
                if gate(now, wire):
                    corrupted = True
                    if telemetry_on:
                        self.ctr_noise_fires.inc()
        else:
            corrupted = False
        if corrupted:
            # Common-mode corruption: everyone hears a collision; any
            # frame on the wire is destroyed (no completion).
            if jammed:
                stats.jammed_slots += 1
            else:
                stats.corrupted_slots += 1
            stats.collision_slots += 1
            stats.collision_time += slot_time
            if self.telemetry_on:
                self.ctr_collision.inc()
                (self.ctr_jammed if jammed else self.ctr_corrupted).inc()
            observation = SlotObservation(
                state=_COLLISION,
                start=now,
                duration=slot_time,
                frame=None,
                occupied_children=None,
            )
            for station in stations:
                if down is not None and station.station_id in down:
                    continue
                station.mac.observe(observation)
            channel.observations += 1
            if self.monitors is not None:
                self.monitors.on_slot(
                    now, slot_time, _COLLISION, wire, None, True, jammed,
                    stations, down,
                )
            if self.trace_on:
                self.trace.emit(
                    now, "slot", state="corrupted", duration=slot_time,
                    source=None, msg=None,
                )
            if self.tracer_on:
                self.tracer.emit(
                    "channel/slot", t=now, state="corrupted", wire=wire,
                )
            if self.check:
                channel._assert_lockstep(now)
            return slot_time
        if wire == 0:
            state = _SILENCE
            duration = slot_time
            frame = None
            stats.silence_slots += 1
            stats.idle_time += slot_time
        elif wire == 1:
            if transmitters:
                station, message = transmitters[0]
                frame = Frame(
                    station_id=station.station_id,
                    message=message,
                    burst_continue=station.mac.wants_burst_continuation(now),
                )
            else:
                # A lone babble frame: delivered as a foreign success the
                # conforming protocols must digest.
                frame = extra[0]
                message = frame.message
            state = _SUCCESS
            duration = self.transmission_time(message.length)
            if self.destructive and duration < slot_time:
                # Half-duplex GigE carrier extension: a frame occupies
                # at least one slot so collisions stay detectable.
                duration = slot_time
            stats.successes += 1
            stats.busy_time += duration
            stats.payload_bits += message.length
        else:
            state = _COLLISION
            duration = slot_time
            frame = None
            stats.collision_slots += 1
            stats.collision_time += slot_time
        if self.telemetry_on:
            if state is _SILENCE:
                self.ctr_silence.inc()
            elif state is _SUCCESS:
                self.ctr_success.inc()
                # Per-class wire latency: completion (end of this slot)
                # minus arrival, recorded for every delivered frame.
                hist = self.latency_hists.get(message.msg_class.name)
                if hist is None:
                    hist = self.telemetry.histogram(
                        f"{self.channel.telemetry_prefix}latency/"
                        f"{message.msg_class.name}",
                        LATENCY_EDGES,
                    )
                    self.latency_hists[message.msg_class.name] = hist
                hist.record(now + duration - message.arrival)
            else:
                self.ctr_collision.inc()
        occupied = None
        if state is _COLLISION and not self.destructive and extra is None:
            # (A babbler cannot tag itself, so occupancy information is
            # withheld for slots its frames collide in — always safe.)
            tags = [
                station.mac.contention_tag(now)
                for station, _ in transmitters
            ]
            if all(tag is not None for tag in tags):
                occupied = frozenset(tags)
        observation = SlotObservation(
            state=state,
            start=now,
            duration=duration,
            frame=frame,
            occupied_children=occupied,
        )
        for station in stations:
            if down is not None and station.station_id in down:
                continue
            station.mac.observe(observation)
        channel.observations += 1
        if self.monitors is not None:
            self.monitors.on_slot(
                now, duration, state, wire, frame, False, False,
                stations, down,
            )
        if self.trace_on:
            self.trace.emit(
                now,
                "slot",
                state=state.value,
                duration=duration,
                source=None if frame is None else frame.station_id,
                msg=None if frame is None else frame.message.msg_class.name,
            )
        if self.tracer_on:
            if frame is None:
                self.tracer.emit(
                    "channel/slot", t=now, state=state.value,
                    duration=duration,
                )
            else:
                self.tracer.emit(
                    "channel/slot", t=now, state=state.value,
                    duration=duration, source=frame.station_id,
                    msg=frame.message.msg_class.name,
                )
        if self.check:
            channel._assert_lockstep(now)
        return duration


class BroadcastChannel:
    """One shared broadcast medium and its attached stations."""

    def __init__(
        self,
        env: Environment,
        medium: MediumProfile,
        trace: TraceLog | None = None,
        check_consistency: bool = False,
        noise_rate: float = 0.0,
        noise_seed: int = 0,
        noise_rng: random.Random | None = None,
        telemetry: Telemetry | None = None,
        telemetry_prefix: str = "",
        tracer: FlightRecorder | None = None,
    ) -> None:
        """``noise_rate`` injects *common-mode* slot corruption: with this
        per-slot probability a silence or success is garbled into a
        collision seen identically by every station (the frame, if any, is
        destroyed and must be retransmitted).  Common-mode corruption is
        the failure model under which deterministic broadcast protocols
        retain consistency — every replica digests the same bad slot.

        ``noise_rng`` supplies the corruption stream directly (the
        simulation layer passes a :class:`~repro.sim.rng.SeedSequenceRegistry`
        stream); when absent, one is derived from ``noise_seed``.

        Internally ``noise_rate`` arms the same typed gate
        (:class:`repro.faults.runtime.BernoulliGate`) that fault plans
        use, so there is exactly one corruption code path; richer noise
        models (Gilbert–Elliott bursts) arrive via :attr:`faults`.

        ``telemetry`` is an :class:`~repro.obs.instruments.Telemetry`
        registry the round driver records slot-outcome counters and
        per-class latency histograms into (default: the shared
        :data:`~repro.obs.instruments.NULL_TELEMETRY`, zero-cost);
        ``telemetry_prefix`` namespaces instrument names, so a dual-bus
        topology can share one registry with per-bus instruments
        (``bus0/slots/...``).

        ``tracer`` is a :class:`~repro.obs.tracer.FlightRecorder` the
        round driver emits per-slot trace events into (default: the
        ambient :func:`~repro.obs.context.current_tracer`, normally the
        disabled :data:`~repro.obs.tracer.NULL_TRACER`).  Picking up the
        ambient recorder at construction lets the SERVE-CHECK simulation
        parent its slot outcomes under a serve request's trace root
        without threading a parameter through every layer."""
        if not 0.0 <= noise_rate < 1.0:
            raise ValueError(f"noise_rate must be in [0, 1), got {noise_rate}")
        self.env = env
        self.medium = medium
        self.trace = trace if trace is not None else NULL_TRACE
        self.check_consistency = check_consistency
        self.noise_rate = noise_rate
        self._noise_rng = (
            noise_rng if noise_rng is not None else random.Random(noise_seed)
        )
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.telemetry_prefix = telemetry_prefix
        self.tracer = tracer if tracer is not None else current_tracer()
        self.stations: list["Station"] = []
        self.stats = ChannelStats()
        self.observations: int = 0
        #: When set, the bus is *jammed* from this time on: every slot is
        #: observed as a collision (broken termination / babbling idiot).
        #: The dual-bus layer uses this to model a bus failure;
        #: ``jam_until`` optionally ends the jam window (fault plans model
        #: transient jams this way).
        self.jam_from: int | None = None
        self.jam_until: int | None = None
        #: An armed :class:`~repro.faults.runtime.FaultInjector`, or None.
        #: Set by the simulation layer (or tests) after stations attach and
        #: the injector's :meth:`~repro.faults.runtime.FaultInjector.arm`
        #: ran against this channel.
        self.faults = None
        #: A :class:`~repro.sim.invariants.MonitorSuite`, or None.  The
        #: round driver feeds it every slot under either engine.
        self.monitors = None

    def attach(self, station: "Station") -> None:
        if any(s.station_id == station.station_id for s in self.stations):
            raise ValueError(f"duplicate station id {station.station_id}")
        self.stations.append(station)

    def _check_runnable(self, horizon: int) -> None:
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        if not self.stations:
            raise RuntimeError("channel has no stations attached")

    def run(self, horizon: int, engine: str | None = None) -> str | None:
        """Run the round loop to ``horizon`` bit-times; returns a fallback note.

        The one entry point behind which every engine tier sits.
        ``engine`` accepts any name from :data:`~repro.net.engine.ENGINES`;
        ``None`` (default) defers to the ambient
        :func:`~repro.net.engine.use_engine` scope, the ``REPRO_ENGINE``
        environment variable, or ``auto`` — resolution happens in exactly
        one place, :func:`~repro.net.engine.resolve_engine`.

        * ``"des"`` registers the channel's generator process
          (:meth:`process`) on the environment and drives the event heap
          to the horizon.
        * ``"fastloop"`` / ``"auto"`` run the slot-synchronous fast path,
          which rejoins the DES automatically if foreign events appear.
        * ``"batch"`` runs the struct-of-arrays kernel, delegating to the
          fast loop on structurally ineligible runs.

        The return value is ``None`` except when a requested tier
        degraded: the batch kernel's backend note, or the reason a batch
        run delegated to the fast loop (the simulation layer records it
        in the run manifest as ``engine_fallback``).  Results are
        byte-identical across engines either way.

        Multi-channel topologies that need several channels on one clock
        should register each channel's :meth:`process` generator instead
        of calling ``run`` per channel.
        """
        engine_name = resolve_engine(engine)
        if engine_name == "des":
            self._check_runnable(horizon)
            env = self.env
            env.process(self.process(horizon))
            env.run(until=horizon)
            return None
        if engine_name == "batch":
            return self._run_batch(horizon)
        return self._run_fast(horizon)

    def process(self, horizon: int) -> ProcessGenerator:
        """The channel as a raw DES generator: one timeout yield per round.

        The composition seam for multi-channel topologies: start it with
        ``env.process(channel.process(horizon))`` alongside any other
        processes sharing the clock.  ``run(horizon, engine="des")`` is
        the single-channel convenience that registers it and drives the
        environment itself.
        """
        self._check_runnable(horizon)
        driver = _RoundDriver(self)
        env = self.env
        while env.now < horizon:
            yield env.timeout(driver.round(int(env.now)))

    def _run_fast(self, horizon: int) -> None:
        """Run the round loop to ``horizon`` as a direct loop owning the clock.

        The slot-loop fast path: while this channel is the only
        time-advancing activity (no events on the environment's queue), no
        heap operations, generator suspensions or timeout events happen at
        all — the loop advances ``env.now`` itself after each round.

        Fallback is automatic and exact: if foreign events are pending at
        entry, the whole run happens on the DES; if one appears mid-run
        (a process registered by a trace subscriber, a host extension),
        the loop re-enters the event queue *after the current round's
        slot*, which is precisely where the DES path would interleave it.
        On return, ``env.now == horizon`` exactly as with
        ``env.run(until=horizon)``.
        """
        self._check_runnable(horizon)
        env = self.env
        if env.pending:
            env.process(self.process(horizon))
            env.run(until=horizon)
            return
        driver = _RoundDriver(self)
        round_ = driver.round
        now = env.now
        while now < horizon:
            duration = round_(int(now))
            if env.pending:
                env.process(self._rejoin_des(horizon, duration))
                env.run(until=horizon)
                return
            now += duration
            env.advance_to(now if now < horizon else horizon)

    def _run_batch(self, horizon: int) -> str | None:
        """Run to ``horizon`` on the batch kernel; returns a fallback note.

        Structural eligibility is decided up front
        (:func:`repro.net.batch.batch_unavailable_reason`): ineligible runs
        delegate to the fast loop — behavior-identical, just slower —
        and the reason is returned so callers can surface it (the
        simulation layer records it in the run manifest as
        ``engine_fallback``).  Eligible runs return the kernel's backend
        note: ``None`` on the vectorized backend, or why the pure-Python
        one was used (numpy missing).  Either way the result is
        byte-identical to the other engines, and a foreign event appearing
        mid-run rejoins the general DES exactly as the fast loop does.
        """
        self._check_runnable(horizon)
        from repro.net.batch import BatchKernel, batch_unavailable_reason

        reason = batch_unavailable_reason(self)
        if reason is not None:
            self._run_fast(horizon)
            return f"batch engine unavailable ({reason}): ran fastloop"
        kernel = BatchKernel(self)
        kernel.run(horizon)
        return kernel.backend_note

    def run_fast(self, horizon: int) -> None:
        """Deprecated alias of ``run(horizon, engine="fastloop")``."""
        warnings.warn(
            "BroadcastChannel.run_fast() is deprecated; call "
            "run(horizon, engine=\"fastloop\") instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.run(horizon, engine="fastloop")

    def run_batch(self, horizon: int) -> str | None:
        """Deprecated alias of ``run(horizon, engine="batch")``."""
        warnings.warn(
            "BroadcastChannel.run_batch() is deprecated; call "
            "run(horizon, engine=\"batch\") instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run(horizon, engine="batch")

    def _rejoin_des(self, horizon: int, delay: int) -> ProcessGenerator:
        """Resume the round loop on the event heap after ``delay``."""
        yield self.env.timeout(delay)
        yield from self.process(horizon)

    def _assert_lockstep(self, now: int) -> None:
        """All stations running the same protocol class must agree on the
        common-knowledge part of their state.

        Stations that ever crashed are exempt: a fail-stop station misses
        observations while down and rejoins as a newcomer, so its replica
        state legitimately diverges from the survivors' (the mutual
        exclusion and deadline monitors still hold it to account)."""
        desynced = (
            self.faults.desynced if self.faults is not None else ()
        )
        by_type: dict[type, tuple[object, ...]] = {}
        for station in self.stations:
            if desynced and station.station_id in desynced:
                continue
            key = station.mac.public_state()
            mac_type = type(station.mac)
            if mac_type in by_type and by_type[mac_type] != key:
                raise AssertionError(
                    f"t={now}: stations disagree on shared "
                    f"{mac_type.__name__} state:\n"
                    f"  {by_type[mac_type]}\n  {key}"
                )
            by_type[mac_type] = key
