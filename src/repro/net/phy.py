"""Physical medium profiles (sections 3.2 and 5).

A broadcast medium is characterised by:

* slot time ``x`` — long enough that a channel state transition triggered at
  time T is seen by every source before ``T + x/2``;
* nominal throughput ``psi``;
* physical encapsulation: a Data Link PDU of ``l`` bits becomes a Ph-PDU of
  ``l'(l) > l`` bits (preamble, framing, FCS, interframe gap, padding);
* collision semantics — *destructive* on Ethernet-like LANs (a collision
  slot carries nothing) or *non-destructive* on short busses internal to
  ATM switches, where an exclusive-OR at bus level lets the winner of a
  collision slot be deduced (section 3.2's remark on small x).

Profiles are value objects in integer bit-times, so 1 bit-time = 1/psi s.
"""

from __future__ import annotations

import dataclasses

from repro.model.units import (
    GIGABIT_PER_SECOND,
    MEGABIT_PER_SECOND,
    BitTime,
    Throughput,
)

__all__ = [
    "MediumProfile",
    "GIGABIT_ETHERNET",
    "CLASSIC_ETHERNET",
    "ATM_BUS",
    "ideal_medium",
]


@dataclasses.dataclass(frozen=True, slots=True)
class MediumProfile:
    """Value object describing one broadcast medium."""

    name: str
    throughput: Throughput
    slot_time: BitTime
    preamble_bits: int
    framing_bits: int
    min_frame_bits: int
    interframe_gap_bits: int
    destructive_collisions: bool

    def __post_init__(self) -> None:
        if self.slot_time < 1:
            raise ValueError(f"slot time must be >= 1 bit, got {self.slot_time}")
        for field in (
            "preamble_bits",
            "framing_bits",
            "min_frame_bits",
            "interframe_gap_bits",
        ):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be >= 0")

    def encapsulate(self, length_bits: int) -> int:
        """``l'(msg)``: the Ph-PDU bit length of an ``l``-bit DL-PDU.

        Padding to the minimum frame, plus preamble, framing and the
        interframe gap (the gap occupies the channel exactly like bits).
        Always strictly greater than ``length_bits``, as the paper requires.
        """
        if length_bits < 1:
            raise ValueError(f"length must be >= 1, got {length_bits}")
        padded = max(length_bits + self.framing_bits, self.min_frame_bits)
        return padded + self.preamble_bits + self.interframe_gap_bits

    def transmission_time(self, length_bits: int) -> BitTime:
        """Channel occupancy of one successful transmission, in bit-times."""
        return self.encapsulate(length_bits)

    def slot_seconds(self) -> float:
        return self.throughput.to_seconds(self.slot_time)


#: Half-duplex Gigabit Ethernet (IEEE 802.3z): 512-byte slot (carrier
#: extension), 8-byte preamble, 18-byte MAC framing, 64-byte minimum frame,
#: 96-bit interframe gap.
GIGABIT_ETHERNET = MediumProfile(
    name="gigabit-ethernet",
    throughput=Throughput(GIGABIT_PER_SECOND),
    slot_time=4096,
    preamble_bits=64,
    framing_bits=144,
    min_frame_bits=512,
    interframe_gap_bits=96,
    destructive_collisions=True,
)

#: Classic 10 Mb/s Ethernet (IEEE 802.3): 512-bit slot.
CLASSIC_ETHERNET = MediumProfile(
    name="classic-ethernet",
    throughput=Throughput(10 * MEGABIT_PER_SECOND),
    slot_time=512,
    preamble_bits=64,
    framing_bits=144,
    min_frame_bits=512,
    interframe_gap_bits=96,
    destructive_collisions=True,
)

#: Bus internal to an ATM switch: physically tiny span, so x is a few bit
#: times and an exclusive-OR at bus level makes collisions non-destructive
#: (section 3.2).  Cell-sized frames (53 bytes), minimal overhead.
ATM_BUS = MediumProfile(
    name="atm-bus",
    throughput=Throughput(GIGABIT_PER_SECOND),
    slot_time=4,
    preamble_bits=0,
    framing_bits=40,
    min_frame_bits=424,
    interframe_gap_bits=0,
    destructive_collisions=False,
)


def ideal_medium(
    slot_time: BitTime = 1, destructive: bool = True
) -> MediumProfile:
    """A frictionless medium for unit tests and analytic comparisons.

    One-bit slot, 1-bit framing overhead (the paper requires l' > l),
    no padding — analytic formulas then match simulations exactly.
    ``destructive=False`` models an idealised XOR/OR bus (collision slots
    reveal child occupancy to tree protocols).
    """
    return MediumProfile(
        name="ideal" if destructive else "ideal-xor",
        throughput=Throughput(GIGABIT_PER_SECOND),
        slot_time=slot_time,
        preamble_bits=0,
        framing_bits=1,
        min_frame_bits=0,
        interframe_gap_bits=0,
        destructive_collisions=destructive,
    )
