"""Simulation orchestration: problem + medium + protocol -> results.

Builds a :class:`~repro.net.channel.BroadcastChannel` with one station per
HRTDM source, feeds each message class from an arrival process, runs the
channel to a horizon on the DES kernel and returns a :class:`RunResult`
with completions, backlog, channel statistics and (for DDCR) the per-run
tree-search records the bounds analysis consumes.

All randomness in a run flows from one
:class:`~repro.sim.rng.SeedSequenceRegistry` rooted at ``root_seed``:
each (station, class) arrival process and the channel's noise source draw
from their own named streams, so runs are reproducible per root seed and
adding a consumer never perturbs the other streams.  A simulation is
described by plain picklable inputs (problem, medium profile, seeds); the
runtime layer (:mod:`repro.runtime`) exploits this to rebuild and execute
runs inside worker processes from declarative specs.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
import time
import typing
import warnings
from collections.abc import Mapping

from repro.faults.context import current_fault_plan
from repro.faults.models import FaultPlan
from repro.model.arrival import ArrivalProcess, GreedyBurstArrivals
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec
from repro.net.channel import BroadcastChannel, ChannelStats
from repro.net.engine import resolve_engine
from repro.net.phy import MediumProfile
from repro.net.scenario import ProtocolFactory, Scenario
from repro.net.station import CompletionRecord, Station
from repro.obs.context import current_telemetry
from repro.obs.instruments import SEARCH_DEPTH_EDGES, Telemetry
from repro.obs.manifest import RunTelemetry
from repro.sim.engine import Environment
from repro.sim.invariants import InvariantReport, MonitorSuite, standard_suite
from repro.sim.rng import SeedSequenceRegistry
from repro.sim.trace import TraceLog

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.fabric import Fabric
    from repro.net.topology import Topology

__all__ = ["RunResult", "NetworkSimulation", "ProtocolFactory", "Scenario"]


@dataclasses.dataclass
class RunResult:
    """Everything a simulation run produced.

    The aggregate views (:attr:`completions`, :attr:`delivered`,
    :attr:`dropped`) are cached on first access: station records do not
    change once the run has finished, and the metrics layer reads them
    repeatedly.
    """

    horizon: int
    stations: list[Station]
    stats: ChannelStats
    trace: TraceLog
    #: Invariant-monitor report (:mod:`repro.sim.invariants`); ``None``
    #: when the run had no monitors armed.
    invariants: InvariantReport | None = None
    #: Per-run telemetry manifest (:mod:`repro.obs`); set when the
    #: simulation owned an explicit telemetry registry, ``None`` when
    #: telemetry was off or ambient (the scope owner collects it then).
    telemetry: RunTelemetry | None = None

    @functools.cached_property
    def completions(self) -> list[CompletionRecord]:
        """All completions across stations, in completion-time order."""
        records = [
            record
            for station in self.stations
            for record in station.completions
        ]
        records.sort(key=lambda r: r.completion)
        return records

    @functools.cached_property
    def delivered(self) -> int:
        return sum(1 for record in self.completions if not record.dropped)

    @functools.cached_property
    def dropped(self) -> int:
        return sum(1 for record in self.completions if record.dropped)

    def backlog(self) -> list:
        """Messages still queued at the horizon."""
        return [
            message
            for station in self.stations
            for message in station.backlog()
        ]

    def utilization(self) -> float:
        return self.stats.utilization(self.horizon)


class NetworkSimulation:
    """One configured simulation, ready to run.

    ``arrivals`` maps message-class name to an
    :class:`~repro.model.arrival.ArrivalProcess`; classes without an entry
    default to the greedy unimodal-arbitrary adversary saturating their
    declared (a, w) bound — the peak-load assumption of the feasibility
    analysis.

    ``root_seed`` roots the run's :class:`SeedSequenceRegistry`;
    ``noise_seed`` is folded into the noise stream's name so existing
    callers that vary only the noise seed still get distinct corruption
    patterns.

    ``engine`` selects how the channel's round loop is driven (see
    :mod:`repro.net.engine`): ``"des"`` runs it as a process on the
    event-heap kernel, ``"fastloop"``/``"auto"`` as a direct slot loop
    that bypasses the heap and falls back to the DES automatically when
    foreign processes share the environment, and ``"batch"`` on the
    struct-of-arrays kernel (:mod:`repro.net.batch`) with automatic
    fallback to the fast loop on structurally ineligible runs (the
    reason is recorded in the run manifest).  ``None`` (default) defers
    to the process-wide default (``auto`` unless overridden).  Engines
    are result-equivalent: the same run under any engine yields
    byte-identical statistics, completions and traces.

    ``faults`` arms a :class:`~repro.faults.models.FaultPlan` on the
    channel; ``None`` (default) picks up the ambient scoped plan
    (:func:`repro.faults.context.use_fault_plan` — how the experiments
    registry applies a spec's plan), pass an empty plan to force a
    fault-free run.  The injector draws from its own named registry
    stream, so arming faults never perturbs arrival or noise streams.

    ``monitors`` arms online invariant monitors
    (:mod:`repro.sim.invariants`): ``True`` for the standard suite, a
    :class:`~repro.sim.invariants.MonitorSuite` for a custom one,
    ``False`` for none.  The default ``None`` auto-arms the standard
    suite exactly when a fault plan is active, and the resulting
    :class:`~repro.sim.invariants.InvariantReport` lands in
    :attr:`RunResult.invariants` — identical under both engines.

    ``telemetry`` arms instrument collection (:mod:`repro.obs`): pass a
    :class:`~repro.obs.instruments.Telemetry` registry to own the run's
    instruments and receive a :class:`~repro.obs.manifest.RunTelemetry`
    manifest on :attr:`RunResult.telemetry`; the default ``None`` picks
    up the ambient scoped registry
    (:func:`repro.obs.context.use_telemetry` — how the runtime executor
    collects one document per spec execution), which is the shared no-op
    :data:`~repro.obs.instruments.NULL_TELEMETRY` outside any scope.
    Instrument values are a pure function of the run, identical under
    both engines.

    The full configuration also exists as one immutable value:
    :class:`~repro.net.scenario.Scenario`.  The keyword constructor is a
    *deprecated* thin shim that freezes its keywords into a scenario and
    delegates to :meth:`from_scenario` (it warns ``DeprecationWarning``);
    build scenarios directly and derive grid points with
    :meth:`Scenario.replace`, or describe multi-segment networks with a
    :class:`~repro.net.topology.Topology` and :meth:`from_topology`.
    """

    def __init__(
        self,
        problem: HRTDMProblem,
        medium: MediumProfile,
        protocol_factory: ProtocolFactory,
        arrivals: Mapping[str, ArrivalProcess] | None = None,
        trace: bool = False,
        check_consistency: bool = False,
        noise_rate: float = 0.0,
        noise_seed: int = 0,
        root_seed: int = 0,
        engine: str | None = None,
        faults: FaultPlan | None = None,
        monitors: bool | MonitorSuite | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        warnings.warn(
            "the keyword constructor NetworkSimulation(problem, medium, "
            "...) is deprecated; build a Scenario and use "
            "NetworkSimulation.from_scenario(scenario) — or a Topology "
            "and NetworkSimulation.from_topology(topology) for "
            "multi-segment fabrics",
            DeprecationWarning,
            stacklevel=2,
        )
        self._configure(
            Scenario(
                problem=problem,
                medium=medium,
                protocol_factory=protocol_factory,
                arrivals=arrivals,
                trace=trace,
                check_consistency=check_consistency,
                noise_rate=noise_rate,
                noise_seed=noise_seed,
                root_seed=root_seed,
                engine=engine,
                faults=faults,
                monitors=monitors,
                telemetry=telemetry,
            )
        )

    @classmethod
    def from_scenario(cls, scenario: Scenario) -> "NetworkSimulation":
        """Build a simulation from one frozen :class:`Scenario`."""
        simulation = cls.__new__(cls)
        simulation._configure(scenario)
        return simulation

    @staticmethod
    def from_topology(topology: "Topology") -> "Fabric":
        """Build a (possibly multi-segment) fabric from a topology.

        The other half of the unified entry surface: scenarios describe
        one segment, topologies describe one or many.  Returns a
        :class:`~repro.net.fabric.Fabric`; for a single-segment
        topology its results are byte-identical to
        ``from_scenario(...)`` on the equivalent scenario.
        """
        from repro.net.fabric import Fabric

        return Fabric(topology)

    def _configure(self, scenario: Scenario) -> None:
        """Unpack a scenario onto the historical attribute names."""
        self.scenario = scenario
        self.problem = scenario.problem
        self.medium = scenario.medium
        self.protocol_factory = scenario.protocol_factory
        self.arrivals = dict(scenario.arrivals) if scenario.arrivals else {}
        self.trace_enabled = scenario.trace
        self.check_consistency = scenario.check_consistency
        self.noise_rate = scenario.noise_rate
        self.noise_seed = scenario.noise_seed
        self.root_seed = scenario.root_seed
        self.engine = scenario.engine
        self.faults = scenario.faults
        self.monitors = scenario.monitors
        self.telemetry = scenario.telemetry
        self.telemetry_prefix = scenario.telemetry_prefix
        #: Extra invariant monitors appended to whatever ``monitors``
        #: resolves to — the fabric's seam for arming bridge monitors on
        #: a segment run without re-deriving the standard suite.
        self.extra_monitors: tuple = ()

    def _arrival_process(self, class_name: str, source: SourceSpec):
        if class_name in self.arrivals:
            return self.arrivals[class_name]
        bound = source.class_named(class_name).bound
        return GreedyBurstArrivals(bound=bound)

    def run(
        self,
        horizon: int,
        env: Environment | None = None,
        engine: str | None = None,
    ) -> RunResult:
        """Simulate up to ``horizon`` bit-times and gather results.

        A fresh stream registry is built per call, so repeated ``run()``
        invocations of one simulation object are identical.  ``engine``
        overrides the simulation's engine for this run only.
        """
        engine_name = resolve_engine(
            engine if engine is not None else self.engine
        )
        started = time.perf_counter()
        telemetry = (
            self.telemetry if self.telemetry is not None
            else current_telemetry()
        )
        if env is None:
            env = Environment()
        rng = SeedSequenceRegistry(self.root_seed)
        trace = TraceLog(enabled=self.trace_enabled)
        channel = BroadcastChannel(
            env,
            self.medium,
            trace=trace,
            check_consistency=self.check_consistency,
            noise_rate=self.noise_rate,
            noise_rng=rng.stream(f"channel/noise/{self.noise_seed}"),
            telemetry=telemetry,
            telemetry_prefix=self.telemetry_prefix,
        )
        stations: list[Station] = []
        sources_by_station: dict[int, SourceSpec] = {}
        # One run-local instance-id counter shared by all stations: message
        # identity (EDF FIFO tie-break, completion records) is then a pure
        # function of the run, identical across engines and repetitions.
        seq_source = itertools.count()
        for source in self.problem.sources:
            mac = self.protocol_factory(source)
            station = Station(
                station_id=source.source_id,
                mac=mac,
                static_indices=source.static_indices,
                seq_source=seq_source,
            )
            for msg_class in source.message_classes:
                station.load_arrivals(
                    msg_class,
                    self._arrival_process(msg_class.name, source),
                    horizon,
                    rng=rng.stream(
                        f"arrivals/{source.source_id}/{msg_class.name}"
                    ),
                )
            channel.attach(station)
            stations.append(station)
            sources_by_station[source.source_id] = source
        plan = self.faults if self.faults is not None else current_fault_plan()
        injector = None
        if plan is not None and not plan.is_empty:
            # Imported here, not at module top: the injector module needs
            # ``repro.net.frames``, which would cycle back into this
            # package when ``repro.faults`` is imported first.
            from repro.faults.runtime import FaultInjector

            # The injector's own stream: arming faults never perturbs the
            # arrival or noise draws of an existing root seed.
            injector = FaultInjector(plan, rng=rng.stream("faults/injector"))

            def reset_mac(station: Station) -> None:
                fresh = self.protocol_factory(
                    sources_by_station[station.station_id]
                )
                station.mac = fresh
                fresh.attach(station)

            def resolve_class(station: Station, class_name: str | None):
                source = sources_by_station[station.station_id]
                if class_name is None:
                    return source.message_classes[0]
                return source.class_named(class_name)

            injector.arm(
                channel, reset_mac=reset_mac, resolve_class=resolve_class
            )
            channel.faults = injector
        suite = self._resolve_monitors(stations, faulted=injector is not None)
        if suite is not None:
            channel.monitors = suite
        # The channel's unified entry point owns all engine dispatch:
        # ``des`` registers the round process and drives the heap,
        # ``fastloop``/``auto`` runs the direct slot loop (rejoining the
        # DES when foreign processes share the environment), ``batch``
        # runs the struct-of-arrays kernel with fast-loop fallback on
        # structurally ineligible runs.  Whatever degraded is returned
        # as the fallback note and lands in the manifest.
        engine_fallback = channel.run(horizon, engine=engine_name)
        invariants = None
        if suite is not None:
            invariants = suite.finalize(
                horizon,
                stations,
                down=injector.down if injector is not None else None,
            )
        manifest = None
        if telemetry.enabled:
            _finalize_telemetry(
                telemetry, stations, injector, prefix=self.telemetry_prefix
            )
            if self.telemetry is not None:
                manifest = RunTelemetry.from_registry(
                    telemetry,
                    run_id="simulation",
                    engine=engine_name,
                    engine_fallback=engine_fallback,
                    seed=self.root_seed,
                    faults=plan if plan is not None and not plan.is_empty
                    else None,
                    wall_seconds=time.perf_counter() - started,
                )
        return RunResult(
            horizon=horizon,
            stations=stations,
            stats=channel.stats,
            trace=trace,
            invariants=invariants,
            telemetry=manifest,
        )

    def _resolve_monitors(
        self, stations: list[Station], faulted: bool
    ) -> MonitorSuite | None:
        """``monitors=None`` auto-arms the standard suite on faulted runs.

        :attr:`extra_monitors` (if any) ride along with whatever the
        ``monitors`` setting resolves to; when it resolves to nothing
        they form a suite of their own.
        """
        monitors = self.monitors
        suite: MonitorSuite | None = None
        if isinstance(monitors, MonitorSuite):
            suite = monitors
        elif monitors is True or (monitors is None and faulted):
            suite = standard_suite(stations)
        extra = tuple(self.extra_monitors)
        if extra:
            base = suite.monitors if suite is not None else ()
            suite = MonitorSuite(tuple(base) + extra)
        return suite


def _finalize_telemetry(
    telemetry: Telemetry,
    stations: list[Station],
    injector,
    prefix: str = "",
) -> None:
    """Fold end-of-run state into the registry.

    Search-depth histograms come from the protocols' per-run search
    records (every station holds a replica of the common-knowledge
    searches, so entries are per-station views: a fault-free z-station
    run records each search z times — counts scale by z, quantiles are
    unaffected).  Fault-gate fire counts come from the armed injector.
    All of it is a pure function of the run, identical across engines.
    """
    has_search = any(
        hasattr(station.mac, "tts_records") for station in stations
    )
    if has_search:
        tts_hist = telemetry.histogram(
            f"{prefix}search/tts_wasted_slots", SEARCH_DEPTH_EDGES
        )
        sts_hist = telemetry.histogram(
            f"{prefix}search/sts_wasted_slots", SEARCH_DEPTH_EDGES
        )
        tts_runs = telemetry.counter(f"{prefix}search/tts_runs")
        sts_runs = telemetry.counter(f"{prefix}search/sts_runs")
        empty_runs = telemetry.counter(f"{prefix}search/empty_tts_runs")
        for station in stations:
            mac = station.mac
            if not hasattr(mac, "tts_records"):
                continue
            for record in mac.tts_records:
                tts_hist.record(record.wasted_slots)
            for record in mac.sts_records:
                sts_hist.record(record.wasted_slots)
            tts_runs.inc(len(mac.tts_records))
            sts_runs.inc(len(mac.sts_records))
            empty_runs.inc(getattr(mac, "empty_tts_runs", 0))
    if injector is not None:
        for kind in sorted(injector.fire_counts):
            count = injector.fire_counts[kind]
            if count:
                telemetry.counter(f"{prefix}faults/{kind}").inc(count)
