"""Simulation orchestration: problem + medium + protocol -> results.

Builds a :class:`~repro.net.channel.BroadcastChannel` with one station per
HRTDM source, feeds each message class from an arrival process, runs the
channel to a horizon on the DES kernel and returns a :class:`RunResult`
with completions, backlog, channel statistics and (for DDCR) the per-run
tree-search records the bounds analysis consumes.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Mapping

from repro.model.arrival import ArrivalProcess, GreedyBurstArrivals
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec
from repro.net.channel import BroadcastChannel, ChannelStats
from repro.net.phy import MediumProfile
from repro.net.station import CompletionRecord, Station
from repro.protocols.base import MACProtocol
from repro.sim.engine import Environment
from repro.sim.trace import TraceLog

__all__ = ["RunResult", "NetworkSimulation", "ProtocolFactory"]

#: Builds one MAC instance for a source (stations must not share MACs).
ProtocolFactory = Callable[[SourceSpec], MACProtocol]


@dataclasses.dataclass
class RunResult:
    """Everything a simulation run produced."""

    horizon: int
    stations: list[Station]
    stats: ChannelStats
    trace: TraceLog

    @property
    def completions(self) -> list[CompletionRecord]:
        """All completions across stations, in completion-time order."""
        records = [
            record
            for station in self.stations
            for record in station.completions
        ]
        records.sort(key=lambda r: r.completion)
        return records

    @property
    def delivered(self) -> int:
        return sum(
            1
            for station in self.stations
            for record in station.completions
            if not record.dropped
        )

    @property
    def dropped(self) -> int:
        return sum(
            1
            for station in self.stations
            for record in station.completions
            if record.dropped
        )

    def backlog(self) -> list:
        """Messages still queued at the horizon."""
        return [
            message
            for station in self.stations
            for message in station.backlog()
        ]

    def utilization(self) -> float:
        return self.stats.utilization(self.horizon)


class NetworkSimulation:
    """One configured simulation, ready to run.

    ``arrivals`` maps message-class name to an
    :class:`~repro.model.arrival.ArrivalProcess`; classes without an entry
    default to the greedy unimodal-arbitrary adversary saturating their
    declared (a, w) bound — the peak-load assumption of the feasibility
    analysis.
    """

    def __init__(
        self,
        problem: HRTDMProblem,
        medium: MediumProfile,
        protocol_factory: ProtocolFactory,
        arrivals: Mapping[str, ArrivalProcess] | None = None,
        trace: bool = False,
        check_consistency: bool = False,
        noise_rate: float = 0.0,
        noise_seed: int = 0,
    ) -> None:
        self.problem = problem
        self.medium = medium
        self.protocol_factory = protocol_factory
        self.arrivals = dict(arrivals) if arrivals else {}
        self.trace_enabled = trace
        self.check_consistency = check_consistency
        self.noise_rate = noise_rate
        self.noise_seed = noise_seed

    def _arrival_process(self, class_name: str, source: SourceSpec):
        if class_name in self.arrivals:
            return self.arrivals[class_name]
        bound = source.class_named(class_name).bound
        return GreedyBurstArrivals(bound=bound)

    def run(self, horizon: int, env: Environment | None = None) -> RunResult:
        """Simulate up to ``horizon`` bit-times and gather results."""
        if env is None:
            env = Environment()
        trace = TraceLog(enabled=self.trace_enabled)
        channel = BroadcastChannel(
            env,
            self.medium,
            trace=trace,
            check_consistency=self.check_consistency,
            noise_rate=self.noise_rate,
            noise_seed=self.noise_seed,
        )
        stations: list[Station] = []
        for source in self.problem.sources:
            mac = self.protocol_factory(source)
            station = Station(
                station_id=source.source_id,
                mac=mac,
                static_indices=source.static_indices,
            )
            for msg_class in source.message_classes:
                station.load_arrivals(
                    msg_class,
                    self._arrival_process(msg_class.name, source),
                    horizon,
                )
            channel.attach(station)
            stations.append(station)
        env.process(channel.run(horizon))
        env.run(until=horizon)
        return RunResult(
            horizon=horizon, stations=stations, stats=channel.stats, trace=trace
        )
