"""Dual-bus fault tolerance (sections 3.2 and 5).

The paper notes that "many such media can be used in parallel" and that the
industrial CSMA/DCR deployments of the 80s ran *dual bus* Ethernets.  This
module provides the redundancy layer: every station is dual-homed, traffic
runs on the active bus, and when a bus fails (jams), all stations fail over
to the standby — *without any exchange of messages*, because the jam is
observed identically by everyone and the failover rule is deterministic
(K consecutive collision slots on the active bus).

Structure: each station owns one message queue; per bus it exposes a
:class:`BusPort` (a MAC adapter) wrapping an independent protocol replica.
Only the active bus's port may transmit; both ports observe their own bus
continuously, so the standby replicas are warm and consistent the moment
traffic arrives.

The failover threshold must exceed the longest run of *legitimate*
consecutive collisions the protocol can produce (a full collision-resolution
descent), else a busy bus is mistaken for a dead one; see
:func:`suggested_jam_threshold`.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Callable, Mapping

from repro.model.arrival import ArrivalProcess, GreedyBurstArrivals
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec
from repro.net.channel import BroadcastChannel, ChannelStats
from repro.net.engine import resolve_engine
from repro.net.phy import MediumProfile
from repro.net.station import Station
from repro.obs.context import current_telemetry
from repro.obs.instruments import Telemetry
from repro.obs.manifest import RunTelemetry
from repro.protocols.base import ChannelState, MACProtocol, SlotObservation
from repro.protocols.ddcr.config import DDCRConfig
from repro.sim.engine import Environment
from repro.sim.invariants import (
    InvariantReport,
    MonitorSuite,
    MutualExclusionMonitor,
)
from repro.sim.trace import TraceLog

__all__ = [
    "BusFailoverController",
    "BusPort",
    "DualBusResult",
    "DualBusSimulation",
    "suggested_jam_threshold",
]


def suggested_jam_threshold(config: DDCRConfig, margin: int = 8) -> int:
    """A safe jam-detection threshold for CSMA/DDCR.

    The longest legitimate consecutive-collision run is a full descent of
    the time tree followed by a full descent of the static tree (every
    probe on the path colliding); delegate to
    :meth:`~repro.protocols.ddcr.config.DDCRConfig.collision_run_bound`,
    which the search-length invariant monitor shares, so the two
    consumers of this bound can never drift apart.
    """
    return config.collision_run_bound(margin)


class BusFailoverController:
    """Shared failover state of one dual-homed station.

    Failover is a pure function of the observed slot states on the active
    bus, so all stations' controllers switch in the same slot — the
    standby bus starts clean with every station present.
    """

    def __init__(self, jam_threshold: int) -> None:
        if jam_threshold < 2:
            raise ValueError(
                f"jam threshold must be >= 2, got {jam_threshold}"
            )
        self.jam_threshold = jam_threshold
        self.active_bus = 0
        self.failovers = 0
        self._consecutive_collisions = 0

    def note(self, bus_index: int, state: ChannelState) -> None:
        """Digest one slot of bus ``bus_index``."""
        if bus_index != self.active_bus:
            return
        if state is ChannelState.COLLISION:
            self._consecutive_collisions += 1
            if self._consecutive_collisions >= self.jam_threshold:
                self.active_bus = 1 - self.active_bus
                self.failovers += 1
                self._consecutive_collisions = 0
        else:
            self._consecutive_collisions = 0

    def state_key(self) -> tuple[int, int, int]:
        return (
            self.active_bus,
            self.failovers,
            self._consecutive_collisions,
        )


class BusPort(MACProtocol):
    """The per-bus face of a dual-homed station.

    Wraps an inner protocol replica: offers pass through only while this
    port's bus is active; observations always pass through (warm standby).
    """

    def __init__(
        self,
        controller: BusFailoverController,
        bus_index: int,
        inner: MACProtocol,
    ) -> None:
        super().__init__()
        self.controller = controller
        self.bus_index = bus_index
        self.inner = inner

    def attach(self, station: Station) -> None:
        super().attach(station)
        self.inner.attach(station)

    def offer(self, now: int):
        message = self.inner.offer(now)
        if self.controller.active_bus != self.bus_index:
            if message is not None:
                # The replica must not believe it transmitted this slot.
                self.inner.suppress_offer()
            return None
        return message

    def observe(self, observation: SlotObservation) -> None:
        # Note the slot BEFORE the inner protocol digests it, so every
        # station flips in the same slot and the inner replica's reaction
        # to this very slot is already on the new regime.
        self.controller.note(self.bus_index, observation.state)
        self.inner.observe(observation)

    def wants_burst_continuation(self, now: int) -> bool:
        return self.inner.wants_burst_continuation(now)

    def contention_tag(self, now: int):
        return self.inner.contention_tag(now)

    def public_state(self) -> tuple[object, ...]:
        return (
            self.controller.state_key()
            + (self.bus_index,)
            + self.inner.public_state()
        )


@dataclasses.dataclass
class DualBusResult:
    """Outcome of a dual-bus run."""

    horizon: int
    stations: list[Station]
    bus_stats: tuple[ChannelStats, ChannelStats]
    failovers: int
    traces: tuple[TraceLog, TraceLog]
    #: Per-bus invariant reports (``monitors=True``), else ``None``.
    invariants: tuple[InvariantReport, InvariantReport] | None = None
    #: Telemetry manifest with per-bus instruments (``bus0/...``,
    #: ``bus1/...``); set when the simulation owned an explicit registry.
    telemetry: RunTelemetry | None = None

    @property
    def completions(self):
        records = [
            record
            for station in self.stations
            for record in station.completions
        ]
        records.sort(key=lambda r: r.completion)
        return records

    def backlog(self):
        return [
            message
            for station in self.stations
            for message in station.backlog()
        ]


class DualBusSimulation:
    """A dual-homed network: one queue per source, two busses.

    ``protocol_factory`` builds one *inner* protocol replica per
    (source, bus); ``fail_bus_at`` jams bus A at that time (None = no
    failure).  Arrival handling mirrors
    :class:`~repro.net.network.NetworkSimulation`.

    A dual-bus network has two time-advancing channel processes on one
    clock, so the slot-loop fast path cannot own it: whatever ``engine``
    is requested, the run executes on the general DES.  With
    ``fastloop``/``auto`` this happens through the fast path's own
    foreign-process fallback (bus B's fast loop finds bus A's process
    already registered and rejoins the heap), which keeps that fallback
    exercised by real traffic rather than only by tests.

    ``monitors=True`` arms a mutual-exclusion
    :class:`~repro.sim.invariants.MonitorSuite` on each bus (per-bus
    reports land in :attr:`DualBusResult.invariants`).  Only the
    slot-level safety invariant applies per bus: deadline and
    work-conservation accounting spans both busses (shared queues), so
    those monitors belong to single-bus runs.
    """

    def __init__(
        self,
        problem: HRTDMProblem,
        medium: MediumProfile,
        protocol_factory: Callable[[SourceSpec], MACProtocol],
        jam_threshold: int,
        arrivals: Mapping[str, ArrivalProcess] | None = None,
        fail_bus_at: int | None = None,
        check_consistency: bool = False,
        trace: bool = False,
        engine: str | None = None,
        monitors: bool = False,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.problem = problem
        self.medium = medium
        self.protocol_factory = protocol_factory
        self.jam_threshold = jam_threshold
        self.arrivals = dict(arrivals) if arrivals else {}
        self.fail_bus_at = fail_bus_at
        self.check_consistency = check_consistency
        self.trace_enabled = trace
        if engine is not None:
            resolve_engine(engine)  # validate eagerly
        self.engine = engine
        self.monitors = monitors
        self.telemetry = telemetry

    def _arrival_process(self, class_name: str, source: SourceSpec):
        if class_name in self.arrivals:
            return self.arrivals[class_name]
        return GreedyBurstArrivals(
            bound=source.class_named(class_name).bound
        )

    def run(self, horizon: int) -> DualBusResult:
        env = Environment()
        telemetry = (
            self.telemetry if self.telemetry is not None
            else current_telemetry()
        )
        traces = (
            TraceLog(enabled=self.trace_enabled),
            TraceLog(enabled=self.trace_enabled),
        )
        busses = tuple(
            BroadcastChannel(
                env,
                self.medium,
                trace=traces[i],
                check_consistency=self.check_consistency,
                telemetry=telemetry,
                telemetry_prefix=f"bus{i}/",
            )
            for i in range(2)
        )
        if self.fail_bus_at is not None:
            busses[0].jam_from = self.fail_bus_at
        suites: tuple[MonitorSuite, MonitorSuite] | None = None
        if self.monitors:
            suites = tuple(
                MonitorSuite([MutualExclusionMonitor()]) for _ in range(2)
            )
            for bus, suite in zip(busses, suites):
                bus.monitors = suite
        primary_stations: list[Station] = []
        bus_stations: tuple[list[Station], list[Station]] = ([], [])
        controllers: list[BusFailoverController] = []
        seq_source = itertools.count()  # run-local instance ids (see Station)
        for source in self.problem.sources:
            controller = BusFailoverController(self.jam_threshold)
            controllers.append(controller)
            ports = tuple(
                BusPort(controller, i, self.protocol_factory(source))
                for i in range(2)
            )
            station_a = Station(
                station_id=source.source_id,
                mac=ports[0],
                static_indices=source.static_indices,
                seq_source=seq_source,
            )
            # The bus-B station shares queue and completion log with A:
            # one message store, two network attachments.
            station_b = Station(
                station_id=source.source_id,
                mac=ports[1],
                static_indices=source.static_indices,
            )
            station_b.queue = station_a.queue
            station_b.completions = station_a.completions
            for msg_class in source.message_classes:
                station_a.load_arrivals(
                    msg_class,
                    self._arrival_process(msg_class.name, source),
                    horizon,
                )
            busses[0].attach(station_a)
            busses[1].attach(station_b)
            primary_stations.append(station_a)
            bus_stations[0].append(station_a)
            bus_stations[1].append(station_b)
        engine_name = resolve_engine(self.engine)
        # Two channels on one clock: bus A runs as a raw generator
        # process, and bus B goes through the unified entry point.  Under
        # ``des`` it registers its own generator and drives the heap;
        # under ``fastloop``/``auto`` the fast path detects bus A's
        # foreign process at entry and rejoins the DES; under ``batch``
        # structural eligibility fails for the same reason and the run
        # delegates through the fast loop — the engine contract's
        # fallback, with the reason surfaced in the manifest.
        env.process(busses[0].process(horizon))
        engine_fallback = busses[1].run(horizon, engine=engine_name)
        invariants = None
        if suites is not None:
            invariants = tuple(
                suite.finalize(horizon, stations, down=None)
                for suite, stations in zip(suites, bus_stations)
            )
        failovers = max(c.failovers for c in controllers)
        manifest = None
        if telemetry.enabled:
            telemetry.gauge("failovers").set(failovers)
            if self.telemetry is not None:
                manifest = RunTelemetry.from_registry(
                    telemetry,
                    run_id="dualbus",
                    engine=engine_name,
                    engine_fallback=engine_fallback,
                )
        return DualBusResult(
            horizon=horizon,
            stations=primary_stations,
            bus_stats=(busses[0].stats, busses[1].stats),
            failovers=failovers,
            traces=traces,
            invariants=invariants,
            telemetry=manifest,
        )
