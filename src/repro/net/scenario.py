"""Declarative simulation scenarios: one frozen object per configuration.

:class:`~repro.net.network.NetworkSimulation` grew thirteen keyword
arguments over five PRs; sweeping over them meant re-spelling the whole
constructor call at every grid point.  A :class:`Scenario` freezes the
complete configuration into a single immutable value with explicit
defaults, so that

* ``NetworkSimulation.from_scenario(scenario)`` builds a simulation from
  one object (the kwargs constructor remains as a thin delegating shim);
* ``scenario.replace(noise_rate=0.01, root_seed=3)`` derives a grid
  point's variant without touching the other twelve fields — the sweep
  layer's axis-override idiom;
* a scenario can be passed around, stored on fixtures and compared
  (identity-wise) without consulting a constructor signature.

A scenario is *configuration*, not identity: it may hold live objects
(arrival processes, protocol factories, a telemetry registry), so unlike
:class:`~repro.runtime.spec.RunSpec` it has no content hash and no
serialised form.  Specs name cacheable computations; scenarios describe
one concrete simulation build.
"""

from __future__ import annotations

import dataclasses
import typing
from collections.abc import Callable, Mapping

from repro.net.engine import resolve_engine

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.models import FaultPlan
    from repro.model.arrival import ArrivalProcess
    from repro.model.problem import HRTDMProblem
    from repro.model.source import SourceSpec
    from repro.net.phy import MediumProfile
    from repro.net.topology import Topology
    from repro.obs.instruments import Telemetry
    from repro.protocols.base import MACProtocol
    from repro.sim.invariants import MonitorSuite

__all__ = ["ProtocolFactory", "Scenario"]

#: Builds one MAC instance for a source (stations must not share MACs).
ProtocolFactory = Callable[["SourceSpec"], "MACProtocol"]


@dataclasses.dataclass(frozen=True)
class Scenario:
    """Everything that defines one simulation build, immutably.

    The field semantics are exactly those of
    :class:`~repro.net.network.NetworkSimulation`'s keyword arguments
    (see its docstring for the full contract of each); this class only
    consolidates them.  ``arrivals`` is normalised to a plain dict copy
    at construction so later mutation of the caller's mapping cannot
    leak into a frozen scenario.
    """

    problem: "HRTDMProblem"
    medium: "MediumProfile"
    protocol_factory: ProtocolFactory
    arrivals: Mapping[str, "ArrivalProcess"] | None = None
    trace: bool = False
    check_consistency: bool = False
    noise_rate: float = 0.0
    noise_seed: int = 0
    root_seed: int = 0
    engine: str | None = None
    faults: "FaultPlan | None" = None
    monitors: "bool | MonitorSuite | None" = None
    telemetry: "Telemetry | None" = None
    #: Namespace prefix for the run's telemetry instruments (the fabric
    #: gives each segment its own — ``seg0/slots/...``); the empty default
    #: keeps single-segment runs byte-identical to the historical names.
    telemetry_prefix: str = ""

    def __post_init__(self) -> None:
        if self.engine is not None:
            resolve_engine(self.engine)  # validate eagerly
        if self.arrivals is not None:
            object.__setattr__(self, "arrivals", dict(self.arrivals))

    def replace(self, **overrides: object) -> "Scenario":
        """A copy with ``overrides`` applied — the sweep-axis idiom.

        Unknown field names raise ``TypeError`` (via
        :func:`dataclasses.replace`), so a typo'd axis fails loudly at
        grid-definition time instead of silently sweeping nothing.
        """
        return dataclasses.replace(self, **overrides)

    def field_names(self) -> tuple[str, ...]:
        """The sweepable field names, in declaration order."""
        return tuple(field.name for field in dataclasses.fields(self))

    def as_topology(self, name: str = "seg0") -> "Topology":
        """This scenario as a one-segment :class:`~repro.net.topology.Topology`.

        The single-segment sugar of the fabric API: a
        :class:`~repro.net.fabric.Fabric` built from the result is
        byte-identical to ``NetworkSimulation.from_scenario(self)`` —
        stats, traces, telemetry content — under every engine (the
        differential suite holds the two surfaces together).
        """
        from repro.net.topology import SegmentSpec, Topology

        return Topology(
            segments=(
                SegmentSpec(
                    name=name,
                    problem=self.problem,
                    medium=self.medium,
                    protocol_factory=self.protocol_factory,
                    arrivals=self.arrivals,
                    noise_rate=self.noise_rate,
                    noise_seed=self.noise_seed,
                ),
            ),
            bridges=(),
            trace=self.trace,
            check_consistency=self.check_consistency,
            root_seed=self.root_seed,
            engine=self.engine,
            faults=self.faults,
            monitors=self.monitors,
            telemetry=self.telemetry,
        )
