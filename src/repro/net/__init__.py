"""Broadcast medium substrate: physical profiles, channel, stations.

The slotted broadcast-channel simulator that stands in for the paper's
Gigabit Ethernet / ATM-bus hardware (see DESIGN.md's substitution table).
It implements exactly the abstraction the analysis relies on: a slot time
x within which every station observes the same ternary channel state.
"""

from repro.net.channel import BroadcastChannel, ChannelStats
from repro.net.dualbus import (
    BusFailoverController,
    BusPort,
    DualBusResult,
    DualBusSimulation,
    suggested_jam_threshold,
)
from repro.net.fabric import (
    BridgeReport,
    EndToEndRecord,
    Fabric,
    FabricResult,
    HopCompletion,
)
from repro.net.frames import Frame
from repro.net.network import NetworkSimulation, ProtocolFactory, RunResult
from repro.net.scenario import Scenario
from repro.net.topology import (
    BridgeSpec,
    SegmentSpec,
    Topology,
    TopologyError,
)
from repro.net.phy import (
    ATM_BUS,
    CLASSIC_ETHERNET,
    GIGABIT_ETHERNET,
    MediumProfile,
    ideal_medium,
)
from repro.net.station import CompletionRecord, Station

__all__ = [
    "BroadcastChannel",
    "BusFailoverController",
    "BusPort",
    "DualBusResult",
    "DualBusSimulation",
    "suggested_jam_threshold",
    "ChannelStats",
    "Frame",
    "NetworkSimulation",
    "ProtocolFactory",
    "RunResult",
    "Scenario",
    "BridgeReport",
    "BridgeSpec",
    "EndToEndRecord",
    "Fabric",
    "FabricResult",
    "HopCompletion",
    "SegmentSpec",
    "Topology",
    "TopologyError",
    "ATM_BUS",
    "CLASSIC_ETHERNET",
    "GIGABIT_ETHERNET",
    "MediumProfile",
    "ideal_medium",
    "CompletionRecord",
    "Station",
]
