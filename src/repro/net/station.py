"""Stations: arrival feed + local EDF queue (LA) + a MAC protocol.

A station owns the waiting queue Q of its source, serviced in EDF order by
algorithm LA (:class:`~repro.protocols.edf_queue.EDFQueue`), and delegates
medium access to a pluggable :class:`~repro.protocols.base.MACProtocol`.
Arrivals are materialised ahead of the run (sorted per class) and delivered
when the channel polls — deterministic, with no event-ordering races at
slot boundaries.
"""

from __future__ import annotations

import dataclasses
import heapq
import random
from collections.abc import Iterator

from repro.model.arrival import ArrivalProcess, take_until
from repro.model.message import MessageClass, MessageInstance
from repro.protocols.base import MACProtocol
from repro.protocols.edf_queue import EDFQueue

__all__ = ["Station", "CompletionRecord"]


@dataclasses.dataclass(frozen=True, slots=True)
class CompletionRecord:
    """One delivered (or dropped) message, for the metrics layer.

    ``started`` is when the successful transmission began on the wire
    (equal to ``completion`` for drops); the inversion analysis needs it to
    separate avoidable inversions from non-preemption ones.
    """

    message: MessageInstance
    completion: int
    started: int = -1
    dropped: bool = False

    @property
    def on_time(self) -> bool:
        return not self.dropped and self.completion <= self.message.absolute_deadline

    @property
    def latency(self) -> int:
        """Completion minus arrival (the bound B_DDCR constrains this)."""
        return self.completion - self.message.arrival


class Station:
    """One source attached to the broadcast channel."""

    def __init__(
        self,
        station_id: int,
        mac: MACProtocol,
        static_indices: tuple[int, ...] = (0,),
        seq_source: Iterator[int] | None = None,
    ) -> None:
        """``seq_source`` supplies message-instance sequence numbers.

        The simulation layer hands all stations of one run a shared
        run-local counter, making instance identity (and thus completion
        records) deterministic across runs and engines; without one,
        instances draw from the process-global counter.
        """
        self.station_id = station_id
        self.static_indices = tuple(sorted(static_indices))
        if not self.static_indices:
            raise ValueError("station needs at least one static index")
        self.queue = EDFQueue()
        self.completions: list[CompletionRecord] = []
        self._pending_arrivals: list[tuple[int, int, MessageClass]] = []
        self._arrival_seq = 0
        self._seq_source = seq_source
        self.arrivals_delivered = 0
        self.mac = mac
        mac.attach(self)

    # -- arrival plumbing --------------------------------------------------

    def load_arrivals(
        self,
        msg_class: MessageClass,
        process: ArrivalProcess,
        horizon: int,
        rng: random.Random | None = None,
    ) -> int:
        """Materialise one class's arrivals up to ``horizon``.

        Returns the number of arrivals loaded.  May be called once per
        class; streams are merged in time order.  ``rng`` is handed to
        stochastic processes (the simulation passes a named registry
        stream so every (station, class) pair draws independently).
        """
        count = 0
        for time in take_until(process, horizon, rng):
            heapq.heappush(
                self._pending_arrivals, (time, self._arrival_seq, msg_class)
            )
            self._arrival_seq += 1
            count += 1
        return count

    def add_arrival(self, msg_class: MessageClass, time: int) -> None:
        """Inject a single arrival (used by adversarial scenario builders)."""
        heapq.heappush(
            self._pending_arrivals, (time, self._arrival_seq, msg_class)
        )
        self._arrival_seq += 1

    def deliver_due(self, now: int) -> int:
        """Move all arrivals with time <= now into the EDF queue (LA)."""
        delivered = 0
        seq_source = self._seq_source
        while self._pending_arrivals and self._pending_arrivals[0][0] <= now:
            time, _, msg_class = heapq.heappop(self._pending_arrivals)
            self.queue.push(
                MessageInstance.arrive(
                    msg_class,
                    time,
                    self.station_id,
                    seq=None if seq_source is None else next(seq_source),
                )
            )
            delivered += 1
        self.arrivals_delivered += delivered
        return delivered

    @property
    def undelivered_arrivals(self) -> int:
        return len(self._pending_arrivals)

    def pending_arrivals_of(self, class_names) -> int:
        """Scheduled-but-undelivered arrivals of the named classes.

        The bridge-conservation monitor's accounting seam: frames a
        bridge enqueued near the horizon may still sit here, neither
        forwarded nor backlogged, and must not count as lost.
        """
        names = set(class_names)
        return sum(
            1 for _, _, cls in self._pending_arrivals if cls.name in names
        )

    # -- state accessors (the seam engines read through) ---------------------

    def peek_next_arrival(self) -> int | None:
        """Time of the earliest undelivered arrival, or None when drained.

        The accessor seam the engines share: the batch kernel caches this
        per station to know when its struct-of-arrays columns next change,
        and the round drivers use it to decide whether ``deliver_due`` has
        work — so DES and batch views of arrival state stay coherent.
        """
        return self._pending_arrivals[0][0] if self._pending_arrivals else None

    def queue_head(self) -> MessageInstance | None:
        """The EDF head of Q (the message LA would service next), or None."""
        return self.queue.peek()

    # -- completion bookkeeping (called by the MAC) -------------------------

    def complete(
        self, message: MessageInstance, completion: int, started: int | None = None
    ) -> None:
        """Record a successful transmission and remove it from Q."""
        self.queue.remove(message)
        self.completions.append(
            CompletionRecord(
                message=message,
                completion=completion,
                started=completion if started is None else started,
            )
        )

    def drop(self, message: MessageInstance, when: int) -> None:
        """Record a dropped message (e.g. BEB excessive collisions)."""
        self.queue.remove(message)
        self.completions.append(
            CompletionRecord(
                message=message, completion=when, started=when, dropped=True
            )
        )

    def backlog(self) -> list[MessageInstance]:
        """Messages still waiting (deadline misses if past due at horizon)."""
        return self.queue.snapshot()
