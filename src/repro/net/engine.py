"""Simulation engine selection: DES, the slot-loop fast path, or batch.

Three engines can turn the broadcast channel's crank:

* ``des`` — the general discrete-event kernel: the channel runs as a
  generator process on :class:`~repro.sim.engine.Environment`, every round
  is a heap push/pop plus a generator suspend/resume.  Always correct,
  composes with arbitrary foreign processes.
* ``fastloop`` — the slot-synchronous fast path: when the channel is the
  only time-advancing activity (the common case — stations are driven
  synchronously through ``offer()``/``observe()``), the round loop runs as
  a direct Python loop that owns the clock and advances ``env.now``
  itself, bypassing the event heap entirely.  It falls back to the DES
  automatically the moment any foreign event is scheduled (dual-bus
  topologies, host extension processes), so selecting it is always safe.
* ``batch`` — the struct-of-arrays kernel (:mod:`repro.net.batch`):
  per-station EDF keys and tree positions live in array columns (numpy
  when the ``[perf]`` extra is installed, a pure-Python twin otherwise)
  and one shadow protocol replica digests each slot, so per-slot cost is
  near-constant in the station count.  Structurally limited to plain
  single-bus CSMA/DDCR runs; anything else (foreign MAC types, bursting,
  fault injectors, dual-bus, non-destructive media) auto-falls-back to
  ``fastloop`` with the reason recorded in the run manifest
  (``engine_fallback``).  Selecting it is therefore always safe too.
* ``auto`` — pick ``fastloop`` where structurally possible, ``des``
  otherwise.  Since the fast loop already self-detects foreign processes,
  ``auto`` and ``fastloop`` take the same code path today; ``auto`` is the
  forward-compatible spelling.  ``batch`` stays opt-in for now: it is the
  newest tier, and keeping ``auto`` on the fast loop preserves one
  engine-independent reference path in every default run.

All engines execute the *identical* round semantics and draw from the
same RNG streams in the same order, so results — channel statistics,
completion records, trace streams — are byte-identical.  The runtime
layer therefore excludes the engine from result cache keys.  This
equivalence extends to the fault-injection and invariant layers: an armed
:class:`~repro.faults.runtime.FaultInjector` and any
:class:`~repro.sim.invariants.MonitorSuite` are driven identically, so
fault timelines and violation reports are also byte-identical across
engines (enforced by the three-way differential tests).

The process-wide default is ``auto``; override it with the
``REPRO_ENGINE`` environment variable, per-simulation via
``NetworkSimulation(engine=...)``, or per-run via the experiment CLIs'
``--engine`` flag (which scopes the override with :func:`use_engine`).
"""

from __future__ import annotations

import os

from repro.context import ScopedValue

__all__ = [
    "ENGINES",
    "batch_capability",
    "default_engine",
    "set_default_engine",
    "resolve_engine",
    "use_engine",
]

#: Legal engine names.
ENGINES = ("auto", "des", "fastloop", "batch")


def _validate(name: str) -> str:
    if name not in ENGINES:
        raise ValueError(
            f"unknown engine {name!r}; choose one of {', '.join(ENGINES)}"
        )
    return name


#: The ambient engine choice.  ``None`` entering a scope means "inherit"
#: (``use_engine(None)`` is a no-op), matching the CLI convention that an
#: absent ``--engine`` keeps the process default.
_SCOPE: ScopedValue[str] = ScopedValue(
    "engine",
    default=lambda: os.environ.get("REPRO_ENGINE", "auto"),
    coerce=_validate,
    none_is_noop=True,
)

#: The process-wide engine default (``REPRO_ENGINE`` or ``auto``),
#: shadowed inside any active :func:`use_engine` scope.
default_engine = _SCOPE.current

#: Set the innermost engine default; returns the previous value.  Outside
#: any scope this is the process-wide default; inside a scope the change
#: dies when the scope exits.
set_default_engine = _SCOPE.set_default

#: Scoped default-engine override (no-op when the name is ``None``).  The
#: runtime executor wraps each spec execution in this, so a spec's engine
#: choice reaches every simulation the experiment builds without
#: threading a parameter through every experiment module.
use_engine = _SCOPE.using


def resolve_engine(name: str | None) -> str:
    """Resolve an engine request (``None`` means "use the default")."""
    if name is None:
        return default_engine()
    return _validate(name)


def batch_capability() -> str | None:
    """Why the batch engine's vectorized backend is unavailable, or None.

    ``None`` means numpy imported fine and batch runs vectorized.  A
    string means batch still works — on the pure-Python twin backend,
    byte-identical but slower — and explains why; the simulation layer
    surfaces the same string in the run manifest's ``engine_fallback``
    field when a batch run degrades.
    """
    from repro.net.batch import numpy_unavailable_reason

    return numpy_unavailable_reason()
