"""Multi-segment broadcast fabric: staged execution of a Topology.

The paper's protocol and proofs live on one broadcast segment; a
:class:`~repro.net.topology.Topology` chains several through
store-and-forward bridges.  This module is the executable half: a
:class:`Fabric` runs every segment and moves frames across bridges,
producing per-segment :class:`~repro.net.network.RunResult` s plus the
fabric-level views — bridge reports, end-to-end journey records and a
combined telemetry manifest.

Execution model — staged, not co-simulated
------------------------------------------
The bridge graph is feed-forward (validated by the topology), so the
fabric runs segments *sequentially in topological order*.  After a
segment finishes, each outgoing bridge reads the completions it heard
(broadcast: every success of a mapped class), stamps each with its
fixed ``forwarding_latency``, and the resulting ready times become a
:class:`~repro.model.arrival.TraceArrivals` process feeding the relay
class on the target segment.  Every segment run is therefore a plain
single-bus :class:`~repro.net.network.NetworkSimulation` — the batch
kernel stays eligible per segment, engines remain byte-identical, and
a one-segment fabric is *by construction* the very same run as
``NetworkSimulation.from_scenario`` (the differential suite holds the
two surfaces together byte for byte, telemetry content included).

The price of staging is that a bridge's forwarding schedule is fixed
before the target segment runs — which is exactly right for this
model: the bridge's egress contention is the target segment's MAC, and
that is simulated, not scheduled.  Bridge queue capacity is enforced
by the online :class:`~repro.sim.invariants.BridgeConservationMonitor`
(no-loss, per-class FIFO, bounded occupancy) rather than by silent
ingress drops.

End-to-end accounting
---------------------
Each forwarded message's journey is tracked across hops by matching
the bridge's enqueue journal against the target segment's completions
(ready time == relay arrival time, unique per class by construction).
:meth:`Fabric.route_bounds` composes the analytic end-to-end bound —
``sum B_DDCR + sum forwarding latencies``
(:func:`repro.core.composition.compose_route_bound`) — which the
FABRIC experiment checks against :meth:`FabricResult.worst_latency`.
"""

from __future__ import annotations

import dataclasses
import time
import typing
from collections.abc import Mapping

from repro.core.composition import (
    RouteBound,
    SegmentAnalysis,
    compose_route_bound,
)
from repro.core.feasibility import TreeParameters
from repro.model.arrival import TraceArrivals
from repro.model.route import Route
from repro.net.network import NetworkSimulation, RunResult
from repro.net.scenario import Scenario
from repro.net.topology import BridgeSpec, Topology
from repro.obs.context import current_telemetry, current_tracer
from repro.obs.manifest import RunTelemetry
from repro.sim.invariants import BridgeConservationMonitor
from repro.sim.trace import TraceLog

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.instruments import Telemetry

__all__ = [
    "BridgeReport",
    "EndToEndRecord",
    "Fabric",
    "FabricResult",
    "HopCompletion",
]


@dataclasses.dataclass(frozen=True, slots=True)
class HopCompletion:
    """One achieved hop of a journey: broadcast completed on a segment."""

    segment: str
    class_name: str
    completion: int


@dataclasses.dataclass(frozen=True, slots=True)
class EndToEndRecord:
    """One message's realized journey across the fabric.

    ``route`` is the planned chain from the topology; ``hops`` are the
    hops actually completed before the horizon (a journey still queued
    or in a bridge at the horizon is *in flight*, not delivered).
    """

    route: Route
    origin_arrival: int
    hops: tuple[HopCompletion, ...]
    dropped: bool = False

    @property
    def delivered(self) -> bool:
        return not self.dropped and len(self.hops) == len(self.route.hops)

    @property
    def completion(self) -> int:
        """Completion time of the last achieved hop."""
        return self.hops[-1].completion

    @property
    def latency(self) -> int:
        """End-to-end: last achieved completion minus origin arrival."""
        return self.completion - self.origin_arrival


@dataclasses.dataclass(frozen=True, slots=True)
class BridgeReport:
    """What one bridge did during a fabric run."""

    bridge: str
    source: str
    target: str
    station_id: int
    forwarding_latency: int
    queue_capacity: int
    #: Successes of mapped classes heard on the source segment.
    heard: int
    #: Frames whose ready time fell before the horizon (journalled).
    enqueued: int
    #: Frames still in the forwarding latency window at the horizon.
    expired: int
    #: Relay broadcasts completed on the target segment.
    forwarded: int
    #: Relay frames the target segment's MAC dropped (loss!).
    dropped: int
    #: Peak instantaneous queue occupancy (entered minus left).
    max_occupancy: int

    @property
    def backlog(self) -> int:
        """Frames enqueued but neither forwarded nor dropped."""
        return self.enqueued - self.forwarded - self.dropped


@dataclasses.dataclass
class _Journey:
    """Mutable tracking state; frozen into EndToEndRecord at the end."""

    route: Route
    origin_arrival: int
    hops: list[HopCompletion]
    dropped: bool = False


@dataclasses.dataclass
class _BridgeState:
    """One bridge's journal while the fabric runs."""

    spec: BridgeSpec
    #: (relay class, ready time) -> journey, in enqueue order.
    journal: dict[tuple[str, int], _Journey] = dataclasses.field(
        default_factory=dict
    )
    heard: int = 0
    enqueued: int = 0
    expired: int = 0
    forwarded: int = 0
    dropped: int = 0
    entries: list[int] = dataclasses.field(default_factory=list)
    exits: list[int] = dataclasses.field(default_factory=list)

    def schedule(self) -> dict[str, tuple[int, ...]]:
        """Per-relay-class ready times, sorted — the monitor's oracle
        and the TraceArrivals feed."""
        per_class: dict[str, list[int]] = {
            name: [] for name in self.spec.relay_classes
        }
        for (relay, ready) in self.journal:
            per_class[relay].append(ready)
        return {
            name: tuple(sorted(times))
            for name, times in per_class.items()
        }

    def max_occupancy(self) -> int:
        """Peak of entered-minus-left over the run (frames leave at the
        completion of their relay broadcast or drop)."""
        events = [(t, 1) for t in self.entries] + [
            (t, -1) for t in self.exits
        ]
        events.sort()
        peak = occupancy = 0
        for _, delta in events:
            occupancy += delta
            peak = max(peak, occupancy)
        return peak

    def report(self) -> BridgeReport:
        return BridgeReport(
            bridge=self.spec.name,
            source=self.spec.source,
            target=self.spec.target,
            station_id=self.spec.station_id,
            forwarding_latency=self.spec.forwarding_latency,
            queue_capacity=self.spec.queue_capacity,
            heard=self.heard,
            enqueued=self.enqueued,
            expired=self.expired,
            forwarded=self.forwarded,
            dropped=self.dropped,
            max_occupancy=self.max_occupancy(),
        )


@dataclasses.dataclass
class FabricResult:
    """Everything a fabric run produced.

    ``segments`` maps segment name to its ordinary single-bus
    :class:`~repro.net.network.RunResult`, in topological order; the
    fabric-level views sit alongside.  For a one-segment topology the
    single RunResult (and the manifest) are byte-identical to a bare
    ``NetworkSimulation.from_scenario(...)`` run of the same scenario.
    """

    horizon: int
    segments: dict[str, RunResult]
    bridges: tuple[BridgeReport, ...]
    journeys: tuple[EndToEndRecord, ...]
    #: Fabric-level trace: one ``fabric/hop`` record per forwarded frame
    #: (enabled with the topology's ``trace`` flag).
    hop_trace: TraceLog
    #: Per-segment engine-degradation notes (from the segment manifests;
    #: only populated when the fabric owned a telemetry registry).
    engine_fallbacks: dict[str, str | None]
    telemetry: RunTelemetry | None = None

    @property
    def invariants_ok(self) -> bool:
        """True when no armed monitor on any segment recorded a
        violation (segments without monitors count as ok)."""
        return all(
            result.invariants is None or result.invariants.ok
            for result in self.segments.values()
        )

    def delivered(self) -> list[EndToEndRecord]:
        return [j for j in self.journeys if j.delivered]

    def in_flight(self) -> list[EndToEndRecord]:
        return [
            j for j in self.journeys if not j.delivered and not j.dropped
        ]

    def worst_latency(self, route: Route | None = None) -> int | None:
        """Worst observed end-to-end latency over delivered journeys
        (optionally only those on ``route``); None when none delivered."""
        latencies = [
            j.latency
            for j in self.journeys
            if j.delivered and (route is None or j.route == route)
        ]
        return max(latencies) if latencies else None


class Fabric:
    """Staged executor of a :class:`~repro.net.topology.Topology`.

    Build one directly, via ``NetworkSimulation.from_topology(topo)``,
    or from a single scenario with :meth:`from_scenario`.  Each
    :meth:`run` stages the segments fresh (same-seed repeats are
    identical); segment engines resolve per segment — a topology-level
    ``engine`` applies everywhere unless a segment overrides it.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    @classmethod
    def from_scenario(
        cls, scenario: Scenario, name: str = "seg0"
    ) -> "Fabric":
        """A one-segment fabric, byte-identical to the bare scenario."""
        return cls(scenario.as_topology(name))

    # -- analysis ------------------------------------------------------

    def route_bounds(
        self, trees: TreeParameters | Mapping[str, TreeParameters]
    ) -> tuple[RouteBound, ...]:
        """Composed end-to-end bounds, one per multi-hop route.

        ``trees`` supplies each segment's :class:`TreeParameters`
        (the analytic tree shape the protocol runs with) — one value
        for a homogeneous fabric, or a name-keyed mapping.
        """
        topology = self.topology
        if isinstance(trees, TreeParameters):
            tree_map: Mapping[str, TreeParameters] = {
                seg.name: trees for seg in topology.segments
            }
        else:
            tree_map = trees
        analyses = {
            seg.name: SegmentAnalysis(
                problem=seg.problem,
                medium=seg.medium,
                trees=tree_map[seg.name],
            )
            for seg in topology.segments
        }
        bounds = []
        for route in topology.routes():
            latencies = []
            for hop in route.hops[:-1]:
                bridge = self._forwarding_bridge(hop.segment, hop.class_name)
                latencies.append(bridge.forwarding_latency)
            bounds.append(compose_route_bound(route, analyses, latencies))
        return tuple(bounds)

    def _forwarding_bridge(self, segment: str, class_name: str) -> BridgeSpec:
        for bridge in self.topology.bridges_from(segment):
            if class_name in bridge.class_map:
                return bridge
        raise KeyError(
            f"no bridge forwards {class_name!r} out of {segment!r}"
        )

    # -- execution -----------------------------------------------------

    def run(self, horizon: int) -> FabricResult:
        started = time.perf_counter()
        topology = self.topology
        order = topology.segment_order()
        single = len(topology.segments) == 1
        tracer = current_tracer()
        hop_trace = TraceLog(enabled=topology.trace)
        declaration = {
            seg.name: index for index, seg in enumerate(topology.segments)
        }
        states = {
            bridge.name: _BridgeState(spec=bridge)
            for bridge in topology.bridges
        }
        #: (segment, class, arrival, seq) -> journey, for chaining hops.
        index: dict[tuple[str, str, int, int | None], _Journey] = {}
        journeys: list[_Journey] = []
        results: dict[str, RunResult] = {}
        fallbacks: dict[str, str | None] = {}
        for name in order:
            segment = topology.segment(name)
            inbound = topology.bridges_into(name)
            arrivals = dict(segment.arrivals) if segment.arrivals else {}
            extra_monitors = []
            for bridge in inbound:
                state = states[bridge.name]
                schedule = state.schedule()
                # Relay classes are fed exclusively by their bridge: an
                # empty journal still overrides the greedy default.
                for relay, times in sorted(schedule.items()):
                    arrivals[relay] = TraceArrivals(times)
                if topology.monitors is not False:
                    extra_monitors.append(
                        BridgeConservationMonitor(
                            bridge=bridge.name,
                            station_id=bridge.station_id,
                            schedule=schedule,
                            capacity=bridge.queue_capacity,
                        )
                    )
            scenario = Scenario(
                problem=segment.problem,
                medium=segment.medium,
                protocol_factory=segment.protocol_factory,
                arrivals=arrivals if arrivals else None,
                trace=topology.trace,
                check_consistency=topology.check_consistency,
                noise_rate=segment.noise_rate,
                noise_seed=segment.noise_seed,
                # Per-segment seed offset by declaration index: segment
                # streams decorrelate, and a one-segment fabric (offset
                # zero) keeps the scenario's exact seed — byte identity.
                root_seed=topology.root_seed + declaration[name],
                engine=(
                    segment.engine
                    if segment.engine is not None
                    else topology.engine
                ),
                faults=topology.faults,
                monitors=topology.monitors,
                telemetry=topology.telemetry,
                telemetry_prefix="" if single else f"{name}/",
            )
            simulation = NetworkSimulation.from_scenario(scenario)
            if extra_monitors:
                simulation.extra_monitors = tuple(extra_monitors)
            tracer.emit(
                "fabric/segment",
                segment=name,
                inbound=len(inbound),
                horizon=horizon,
            )
            result = simulation.run(horizon)
            results[name] = result
            if result.telemetry is not None:
                fallbacks[name] = result.telemetry.engine_fallback
            self._match_inbound(name, inbound, states, result, index)
            self._forward_outbound(
                name,
                topology.bridges_from(name),
                states,
                result,
                index,
                journeys,
                horizon,
                hop_trace,
                tracer,
            )
        reports = tuple(
            states[bridge.name].report() for bridge in topology.bridges
        )
        records = tuple(
            EndToEndRecord(
                route=j.route,
                origin_arrival=j.origin_arrival,
                hops=tuple(j.hops),
                dropped=j.dropped,
            )
            for j in journeys
        )
        manifest = self._finalize(
            single, results, reports, records, fallbacks, started
        )
        return FabricResult(
            horizon=horizon,
            segments=results,
            bridges=reports,
            journeys=records,
            hop_trace=hop_trace,
            engine_fallbacks=fallbacks,
            telemetry=manifest,
        )

    def _match_inbound(
        self,
        name: str,
        inbound,
        states: dict[str, _BridgeState],
        result: RunResult,
        index: dict,
    ) -> None:
        """Match this segment's relay completions against the bridge
        journals: the journey gains a hop, the bridge logs the exit."""
        for bridge in inbound:
            state = states[bridge.name]
            relay_names = bridge.relay_classes
            for record in result.completions:
                message = record.message
                class_name = message.msg_class.name
                if class_name not in relay_names:
                    continue
                journey = state.journal.get((class_name, message.arrival))
                if journey is None:
                    continue  # not this bridge's frame (never happens:
                    # one bridge per relay class, unique ready times)
                state.exits.append(record.completion)
                if record.dropped:
                    journey.dropped = True
                    state.dropped += 1
                    continue
                state.forwarded += 1
                journey.hops.append(
                    HopCompletion(
                        segment=name,
                        class_name=class_name,
                        completion=record.completion,
                    )
                )
                index[(name, class_name, message.arrival, message.seq)] = (
                    journey
                )

    def _forward_outbound(
        self,
        name: str,
        outbound,
        states: dict[str, _BridgeState],
        result: RunResult,
        index: dict,
        journeys: list[_Journey],
        horizon: int,
        hop_trace: TraceLog,
        tracer,
    ) -> None:
        """Journal every heard completion onto its outgoing bridge."""
        topology = self.topology
        for bridge in outbound:
            state = states[bridge.name]
            class_map = bridge.class_map
            for record in result.completions:
                if record.dropped:
                    continue
                message = record.message
                class_name = message.msg_class.name
                if class_name not in class_map:
                    continue
                state.heard += 1
                key = (name, class_name, message.arrival, message.seq)
                journey = index.get(key)
                if journey is None:
                    journey = _Journey(
                        route=topology.route_for(name, class_name),
                        origin_arrival=message.arrival,
                        hops=[
                            HopCompletion(
                                segment=name,
                                class_name=class_name,
                                completion=record.completion,
                            )
                        ],
                    )
                    journeys.append(journey)
                    index[key] = journey
                relay = class_map[class_name]
                ready = record.completion + bridge.forwarding_latency
                hop_trace.emit(
                    ready,
                    "fabric/hop",
                    bridge=bridge.name,
                    msg_class=class_name,
                    relay_class=relay,
                    completion=record.completion,
                )
                tracer.emit(
                    "fabric/hop",
                    bridge=bridge.name,
                    msg_class=class_name,
                    relay_class=relay,
                    ready=ready,
                )
                if ready >= horizon:
                    state.expired += 1
                    continue
                state.journal[(relay, ready)] = journey
                state.entries.append(ready)
                state.enqueued += 1

    def _finalize(
        self,
        single: bool,
        results: dict[str, RunResult],
        reports: tuple[BridgeReport, ...],
        records: tuple[EndToEndRecord, ...],
        fallbacks: dict[str, str | None],
        started: float,
    ) -> RunTelemetry | None:
        """Fabric-level instruments and the combined manifest.

        A one-segment fabric adds *no* instruments and reuses the
        segment's own manifest, keeping telemetry content byte-identical
        to the bare simulation; multi-segment fabrics snapshot the
        shared registry (per-segment prefixes plus the ``fabric/...``
        aggregates) under ``run_id="fabric"``.
        """
        topology = self.topology
        if single:
            (result,) = results.values()
            return result.telemetry
        registry: "Telemetry" = (
            topology.telemetry
            if topology.telemetry is not None
            else current_telemetry()
        )
        if registry.enabled:
            for report in reports:
                registry.counter(
                    f"fabric/{report.bridge}/forwarded"
                ).inc(report.forwarded)
                registry.gauge(
                    f"fabric/{report.bridge}/max_occupancy"
                ).set(report.max_occupancy)
            delivered = [r for r in records if r.delivered]
            registry.counter("fabric/journeys/delivered").inc(
                len(delivered)
            )
            registry.counter("fabric/journeys/in_flight").inc(
                sum(
                    1
                    for r in records
                    if not r.delivered and not r.dropped
                )
            )
            if delivered:
                registry.gauge("fabric/end_to_end/worst_latency").set(
                    max(r.latency for r in delivered)
                )
        if topology.telemetry is None:
            return None
        note = "; ".join(
            f"{name}: {fallback}"
            for name, fallback in fallbacks.items()
            if fallback
        )
        return RunTelemetry.from_registry(
            topology.telemetry,
            run_id="fabric",
            engine=topology.engine,
            engine_fallback=note or None,
            seed=topology.root_seed,
            faults=topology.faults
            if topology.faults is not None and not topology.faults.is_empty
            else None,
            wall_seconds=time.perf_counter() - started,
        )
