"""The batch-slot kernel: struct-of-arrays station state for CSMA/DDCR.

The third engine tier (see :mod:`repro.net.engine`).  The DES and fastloop
engines spend one Python method call per station per slot (``offer`` then
``observe``), so slot throughput degrades linearly in the station count z.
This kernel exploits the protocol's lockstep theorem instead: under
CSMA/DDCR every station's *common-knowledge* state — mode, ``reft``, the
time/static tree-search agendas and frontiers — is an identical replica
(the ``_assert_lockstep`` invariant), so one slot needs

* exactly **one** protocol automaton to digest the observation (the
  *shadow replica*: a real :class:`~repro.protocols.ddcr.protocol.DDCRProtocol`
  bound to a dummy station, whose ``mine`` flag is never true), and
* a handful of vectorized comparisons over per-station *private* state to
  decide who offers: the EDF head's MAC-visible deadline, and the nested
  static-search membership/cursor — held as struct-of-arrays columns in a
  :class:`_NumpyOps` backend (the ``[perf]`` optional dependency) or the
  pure-Python :class:`_PythonOps` fallback with identical integer
  semantics.

Because the shadow replica *is* the production automaton, shared-state
transitions are correct by construction and results are byte-identical to
the other engines (the engine-differential suite enforces this, clean and
faulted).  On top of the vectorized slot, the kernel batch-advances
provably invariant idle stretches (all queues empty, FREE mode or the
fresh-TTs steady cycle) in O(1) — the dominant regime of long simulations.

Fallback contract (mirroring the fast loop's): :func:`batch_unavailable_reason`
reports *structural* ineligibility — foreign MAC types, differing configs,
packet bursting, non-destructive media (contention tags), an armed fault
injector, per-slot consistency checks, or foreign processes pending at
entry — and :meth:`BroadcastChannel.run_batch` then delegates to
``run_fast`` (which may itself rejoin the DES), returning the reason so
the run manifest can record it.  If a foreign process appears *mid-run*
(e.g. registered by a monitor), the kernel writes the shared state back
into every station's MAC and rejoins the general DES after the current
slot, exactly where the DES path would interleave it.

Known limitation (structural, not silent): the kernel caches each
station's next pending-arrival time, so injecting arrivals *mid-run* from
outside the round loop is unsupported — the only in-tree source of that
(fault-plan arrival bursts) is already excluded by the fault-injector
fallback.
"""

from __future__ import annotations

import typing

from repro.net.frames import Frame
from repro.net.station import Station
from repro.obs.instruments import LATENCY_EDGES
from repro.protocols.base import ChannelState, SlotObservation
from repro.protocols.ddcr.config import DDCRConfig
from repro.protocols.ddcr.indexing import mac_visible_deadline
from repro.protocols.ddcr.protocol import DDCRMode, DDCRProtocol
from repro.protocols.ddcr.sts import StaticTreeSearch
from repro.protocols.ddcr.tts import TimeTreeSearch
from repro.protocols.treesearch import SplittingSearch

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.channel import BroadcastChannel

__all__ = [
    "BatchKernel",
    "batch_unavailable_reason",
    "numpy_unavailable_reason",
]

_SILENCE = ChannelState.SILENCE
_SUCCESS = ChannelState.SUCCESS
_COLLISION = ChannelState.COLLISION

#: Sentinel deadline for an empty EDF queue: larger than any real deadline
#: (horizons are bit-time ints far below 2**62) yet safe in int64 columns.
_EMPTY = 1 << 62

#: Sentinel for the next-arrival column when a station has none pending.
_NEVER = 1 << 62


# -- optional numpy ----------------------------------------------------------

#: Lazily resolved ``(module | None, reason | None)``.  Cached so the probe
#: runs once per process; tests reset it to force the import-failure path.
_NUMPY_STATE: "tuple[object | None, str | None] | None" = None


def _load_numpy() -> "tuple[object | None, str | None]":
    global _NUMPY_STATE
    if _NUMPY_STATE is None:
        try:
            import numpy
        except Exception as error:  # pragma: no cover - exercised via tests
            _NUMPY_STATE = (
                None,
                "numpy unavailable "
                f"({type(error).__name__}): pure-python backend "
                "(install the [perf] extra for the vectorized one)",
            )
        else:
            _NUMPY_STATE = (numpy, None)
    return _NUMPY_STATE


def numpy_unavailable_reason() -> str | None:
    """Why the vectorized backend is unavailable (``None`` = it is)."""
    return _load_numpy()[1]


# -- eligibility -------------------------------------------------------------


def batch_unavailable_reason(channel: "BroadcastChannel") -> str | None:
    """Why this channel cannot run the batch kernel (``None`` = it can).

    The checks are *structural* — a property of the run's configuration,
    decidable before the first slot — so the fallback is deterministic and
    behavior-free: the run proceeds on the fast loop (or the DES) with
    byte-identical results, and the reason lands in the run manifest.
    """
    if channel.env.pending:
        return "foreign processes pending on the environment at entry"
    macs = [station.mac for station in channel.stations]
    for station, mac in zip(channel.stations, macs):
        if type(mac) is not DDCRProtocol:
            return (
                "station MACs are not plain DDCRProtocol "
                f"(station {station.station_id}: {type(mac).__name__})"
            )
        if station.station_id < 0:
            return f"negative station id {station.station_id}"
    config = macs[0].config
    if any(mac.config != config for mac in macs[1:]):
        return "stations run differing DDCR configurations"
    if config.burst_limit > 0:
        return "packet bursting enabled (burst_limit > 0)"
    if not channel.medium.destructive_collisions:
        return "non-destructive medium (per-station contention tags)"
    if channel.faults is not None:
        return "fault injector armed"
    if channel.check_consistency:
        return "per-slot consistency checks requested"
    return None


# -- replica state copies ----------------------------------------------------


def _copy_search(search: SplittingSearch) -> SplittingSearch:
    return SplittingSearch(
        tree=search.tree,
        agenda=list(search.agenda),
        frontier=search.frontier,
        probes=search.probes,
        wasted_slots=search.wasted_slots,
        successes=search.successes,
    )


def _copy_tts(tts: TimeTreeSearch | None) -> TimeTreeSearch | None:
    if tts is None:
        return None
    return TimeTreeSearch(
        search=_copy_search(tts.search),
        started_at=tts.started_at,
        triggered_by_collision=tts.triggered_by_collision,
        transmitted=tts.transmitted,
        nested_sts_runs=tts.nested_sts_runs,
    )


def _copy_sts(sts: StaticTreeSearch | None) -> StaticTreeSearch | None:
    if sts is None:
        return None
    return StaticTreeSearch(
        search=_copy_search(sts.search),
        time_leaf=sts.time_leaf,
        started_at=sts.started_at,
    )


# -- struct-of-arrays backends ----------------------------------------------


class _PythonOps:
    """Pure-Python SoA backend (``array``-free lists; identical integer
    semantics to the numpy one — Python's floor division IS the spec)."""

    vectorized = False

    def __init__(self, statics: list[tuple[int, ...]]) -> None:
        z = len(statics)
        self.z = z
        self.statics = statics
        self.head_dm = [_EMPTY] * z
        self.member = [False] * z
        self.cursor = [0] * z
        #: statics[i][cursor[i]] materialized, -1 once the ranks run out.
        self.cur_static = [s[0] for s in statics]
        self.nonempty = 0
        #: Station indices that offered in the current slot's probe.
        self._offers: list[int] = []

    def set_head(self, i: int, dm: int) -> None:
        old = self.head_dm[i]
        self.head_dm[i] = dm
        self.nonempty += (dm != _EMPTY) - (old != _EMPTY)

    def set_private(self, i: int, member: bool, cursor: int) -> None:
        self.member[i] = member
        self.cursor[i] = cursor
        statics = self.statics[i]
        self.cur_static[i] = statics[cursor] if cursor < len(statics) else -1

    def clear_offers(self) -> None:
        self._offers = []

    def free_offers(self) -> tuple[int, int]:
        offers = [i for i in range(self.z) if self.head_dm[i] != _EMPTY]
        self._offers = offers
        return len(offers), offers[0] if len(offers) == 1 else -1

    def tts_offers(
        self, base: int, width: int, frontier: int, lo: int, hi: int
    ) -> tuple[int, int]:
        offers = []
        head_dm = self.head_dm
        for i in range(self.z):
            dm = head_dm[i]
            if dm == _EMPTY:
                continue
            index = (dm - base) // width
            if index < frontier:
                index = frontier
            if lo <= index < hi:
                offers.append(i)
        self._offers = offers
        return len(offers), offers[0] if len(offers) == 1 else -1

    def sts_offers(
        self,
        base: int,
        width: int,
        frontier: int,
        leaf_lo: int,
        lo: int,
        hi: int,
    ) -> tuple[int, int]:
        offers = []
        head_dm = self.head_dm
        member = self.member
        cur_static = self.cur_static
        for i in range(self.z):
            if not member[i] or not lo <= cur_static[i] < hi:
                continue
            dm = head_dm[i]
            if dm == _EMPTY:
                continue
            index = (dm - base) // width
            if index < frontier:
                index = frontier
            if index == leaf_lo:
                offers.append(i)
        self._offers = offers
        return len(offers), offers[0] if len(offers) == 1 else -1

    def adopt_members(self) -> None:
        """Nested-STs entry: members are exactly this slot's offerers."""
        member = [False] * self.z
        for i in self._offers:
            member[i] = True
        self.member = member
        self.cursor = [0] * self.z
        self.cur_static = [s[0] for s in self.statics]

    def clear_members(self) -> None:
        self.member = [False] * self.z
        self.cursor = [0] * self.z

    def advance_cursor(self, i: int) -> None:
        cursor = self.cursor[i] + 1
        self.cursor[i] = cursor
        statics = self.statics[i]
        self.cur_static[i] = statics[cursor] if cursor < len(statics) else -1

    def member_of(self, i: int) -> bool:
        return self.member[i]

    def cursor_of(self, i: int) -> int:
        return self.cursor[i]


class _NumpyOps:
    """Vectorized SoA backend: one slot's offer mask is a handful of
    element-wise int64/bool ops over all z stations."""

    vectorized = True

    def __init__(self, statics: list[tuple[int, ...]], np) -> None:
        z = len(statics)
        self.z = z
        self.np = np
        self.statics = statics
        self.head_dm = np.full(z, _EMPTY, dtype=np.int64)
        self.member = np.zeros(z, dtype=bool)
        self.cursor = np.zeros(z, dtype=np.int64)
        self._firsts = np.asarray([s[0] for s in statics], dtype=np.int64)
        self.cur_static = self._firsts.copy()
        self.nonempty = 0
        self._offer_mask = np.zeros(z, dtype=bool)

    def set_head(self, i: int, dm: int) -> None:
        old = int(self.head_dm[i])
        self.head_dm[i] = dm
        self.nonempty += (dm != _EMPTY) - (old != _EMPTY)

    def set_private(self, i: int, member: bool, cursor: int) -> None:
        self.member[i] = member
        self.cursor[i] = cursor
        statics = self.statics[i]
        self.cur_static[i] = statics[cursor] if cursor < len(statics) else -1

    def clear_offers(self) -> None:
        self._offer_mask = self.np.zeros(self.z, dtype=bool)

    def _resolve(self, mask) -> tuple[int, int]:
        self._offer_mask = mask
        wire = int(mask.sum())
        return wire, int(mask.argmax()) if wire == 1 else -1

    def free_offers(self) -> tuple[int, int]:
        return self._resolve(self.head_dm != _EMPTY)

    def tts_offers(
        self, base: int, width: int, frontier: int, lo: int, hi: int
    ) -> tuple[int, int]:
        np = self.np
        index = np.maximum((self.head_dm - base) // width, frontier)
        mask = (self.head_dm != _EMPTY) & (index >= lo) & (index < hi)
        return self._resolve(mask)

    def sts_offers(
        self,
        base: int,
        width: int,
        frontier: int,
        leaf_lo: int,
        lo: int,
        hi: int,
    ) -> tuple[int, int]:
        np = self.np
        index = np.maximum((self.head_dm - base) // width, frontier)
        mask = (
            self.member
            & (self.cur_static >= lo)
            & (self.cur_static < hi)
            & (self.head_dm != _EMPTY)
            & (index == leaf_lo)
        )
        return self._resolve(mask)

    def adopt_members(self) -> None:
        self.member = self._offer_mask.copy()
        self.cursor = self.np.zeros(self.z, dtype=self.np.int64)
        self.cur_static = self._firsts.copy()

    def clear_members(self) -> None:
        self.member = self.np.zeros(self.z, dtype=bool)
        self.cursor = self.np.zeros(self.z, dtype=self.np.int64)

    def advance_cursor(self, i: int) -> None:
        cursor = int(self.cursor[i]) + 1
        self.cursor[i] = cursor
        statics = self.statics[i]
        self.cur_static[i] = statics[cursor] if cursor < len(statics) else -1

    def member_of(self, i: int) -> bool:
        return bool(self.member[i])

    def cursor_of(self, i: int) -> int:
        return int(self.cursor[i])


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


# -- the kernel --------------------------------------------------------------


class BatchKernel:
    """One eligible channel's batch-slot round loop.

    Build only after :func:`batch_unavailable_reason` returned ``None``
    (``BroadcastChannel.run_batch`` does this).  ``force_python`` pins the
    pure-Python backend regardless of numpy availability (parity tests).
    """

    def __init__(
        self, channel: "BroadcastChannel", force_python: bool = False
    ) -> None:
        self.channel = channel
        self.env = channel.env
        self.stations = channel.stations
        self.stats = channel.stats
        medium = channel.medium
        self.slot_time = medium.slot_time
        self.transmission_time = medium.transmission_time
        self.destructive = medium.destructive_collisions
        gates: list = []
        if channel.noise_rate > 0.0:
            from repro.faults.runtime import BernoulliGate

            gates.append(BernoulliGate(channel.noise_rate, channel._noise_rng))
        self.noise_gates = tuple(gates)
        self.monitors = channel.monitors
        self.trace = channel.trace
        self.trace_on = channel.trace.enabled
        telemetry = channel.telemetry
        self.telemetry = telemetry
        self.telemetry_on = telemetry.enabled
        if self.telemetry_on:
            # The identical instrument set the round driver registers, so
            # manifests agree across engines even on never-incremented
            # counters.
            prefix = channel.telemetry_prefix
            self.ctr_silence = telemetry.counter(f"{prefix}slots/silence")
            self.ctr_success = telemetry.counter(f"{prefix}slots/success")
            self.ctr_collision = telemetry.counter(f"{prefix}slots/collision")
            self.ctr_corrupted = telemetry.counter(f"{prefix}slots/corrupted")
            self.ctr_jammed = telemetry.counter(f"{prefix}slots/jammed")
            if self.noise_gates:
                self.ctr_noise_fires = telemetry.counter(
                    f"{prefix}faults/noise_gate_fires"
                )
            self.latency_hists: dict[str, object] = {}

        config: DDCRConfig = self.stations[0].mac.config
        self.config = config
        #: Why the vectorized backend was not used (``None`` when it was).
        self.backend_note: str | None = None
        np_module, np_reason = _load_numpy()
        if force_python:
            np_module = None
            self.backend_note = "pure-python backend (forced)"
        elif np_reason is not None:
            self.backend_note = np_reason
        statics = [station.static_indices for station in self.stations]
        if np_module is not None:
            self.backend: _NumpyOps | _PythonOps = _NumpyOps(
                statics, np_module
            )
        else:
            self.backend = _PythonOps(statics)

        # The shadow replica: a real DDCR automaton on a dummy station.
        # Its station id (-1) never matches a frame, so ``mine`` is always
        # false — it digests every observation as a pure bystander, which
        # is exactly the common-knowledge projection of the protocol.
        seed_mac = self.stations[0].mac
        replica_station = Station(
            station_id=-1, mac=DDCRProtocol(config), static_indices=(0,)
        )
        replica = replica_station.mac
        replica.mode = seed_mac.mode
        replica.reft = seed_mac.reft
        replica.tts = _copy_tts(seed_mac.tts)
        replica.sts = _copy_sts(seed_mac.sts)
        replica._pending_leaf = seed_mac._pending_leaf
        replica.tts_records = list(seed_mac.tts_records)
        replica.sts_records = list(seed_mac.sts_records)
        replica.empty_tts_runs = seed_mac.empty_tts_runs
        self.replica = replica

        backend = self.backend
        self._next_arrival = [_NEVER] * len(self.stations)
        for i, station in enumerate(self.stations):
            mac = station.mac
            backend.set_private(i, mac._sts_member, mac._sts_cursor)
            self._refresh_head(i)
            due = station.peek_next_arrival()
            self._next_arrival[i] = _NEVER if due is None else due
        self._next_due = min(self._next_arrival, default=_NEVER)
        # Idle stretches may be batch-advanced only when nothing demands a
        # per-slot side effect: no noise gates (one RNG draw per slot), no
        # monitors, no trace records.  Telemetry is fine — the silence
        # counter supports bulk increments.
        self._leap_ok = (
            not self.noise_gates and self.monitors is None and not self.trace_on
        )

    # -- per-station private state refresh --------------------------------

    def _refresh_head(self, i: int) -> None:
        head = self.stations[i].queue_head()
        if head is None:
            self.backend.set_head(i, _EMPTY)
        else:
            self.backend.set_head(
                i,
                mac_visible_deadline(
                    head.arrival, head.relative_deadline, self.config
                ),
            )

    def _deliver_arrivals(self, now: int) -> None:
        # Station-list order, exactly like the round driver: the shared
        # seq counter then assigns identical instance ids.
        next_arrival = self._next_arrival
        for i, station in enumerate(self.stations):
            if next_arrival[i] <= now:
                station.deliver_due(now)
                self._refresh_head(i)
                due = station.peek_next_arrival()
                next_arrival[i] = _NEVER if due is None else due
        self._next_due = min(next_arrival, default=_NEVER)

    # -- idle leap ---------------------------------------------------------

    def _tts_steady_fresh(self) -> bool:
        tts = self.replica.tts
        search = tts.search
        agenda = search.agenda
        return (
            not tts.triggered_by_collision
            and not tts.transmitted
            and tts.nested_sts_runs == 0
            and search.probes == 0
            and search.wasted_slots == 0
            and search.successes == 0
            and search.frontier == 0
            and len(agenda) == 1
            and agenda[0] == search._root
        )

    def _try_leap(self, now: int, horizon: int) -> int:
        """Batch-advance n invariant idle slots; returns n (0 = no leap).

        Valid only in the two idle steady states — FREE (a silent slot
        changes nothing) and the fresh-TTs cycle (each silent slot adds
        theta to ``reft``, one trivial empty run, and restarts the same
        fresh search) — and only up to the next arrival, jam boundary or
        the horizon, so the first *eventful* slot runs on the normal path.
        """
        replica = self.replica
        mode = replica.mode
        if mode is DDCRMode.TTS:
            if self.config.exit_to_free_on_idle or not self._tts_steady_fresh():
                return 0
        elif mode is not DDCRMode.FREE:
            return 0
        channel = self.channel
        slot_time = self.slot_time
        jam_from = channel.jam_from
        n = _ceil_div(horizon - now, slot_time)
        due = self._next_due
        if due != _NEVER:
            n = min(n, _ceil_div(due - now, slot_time))
        if jam_from is not None:
            jam_until = channel.jam_until
            if now >= jam_from and (jam_until is None or now < jam_until):
                return 0  # jammed: every slot is a collision, no leap
            if now < jam_from:
                n = min(n, _ceil_div(jam_from - now, slot_time))
        stats = self.stats
        stats.silence_slots += n
        stats.idle_time += n * slot_time
        channel.observations += n
        if self.telemetry_on:
            self.ctr_silence.inc(n)
        if mode is DDCRMode.TTS:
            replica.reft += n * self.config.theta
            replica.empty_tts_runs += n
            replica.tts.started_at = now + n * slot_time
        return n

    # -- one round ---------------------------------------------------------

    def _round(self, now: int, horizon: int) -> int:
        channel = self.channel
        stats = self.stats
        slot_time = self.slot_time
        replica = self.replica
        backend = self.backend
        if self._next_due <= now:
            self._deliver_arrivals(now)
        if backend.nonempty == 0:
            if self._leap_ok:
                leaped = self._try_leap(now, horizon)
                if leaped:
                    return leaped * slot_time
            wire, winner = 0, -1
            backend.clear_offers()
        else:
            mode = replica.mode
            if mode is DDCRMode.TTS:
                search = replica.tts.search
                node = search.agenda[-1]
                wire, winner = backend.tts_offers(
                    self.config.alpha + replica.reft,
                    self.config.class_width,
                    search.frontier,
                    node.lo,
                    node.hi,
                )
            elif mode is DDCRMode.STS:
                node = replica.sts.search.agenda[-1]
                wire, winner = backend.sts_offers(
                    self.config.alpha + replica.reft,
                    self.config.class_width,
                    replica.tts.search.frontier,
                    replica._pending_leaf.lo,
                    node.lo,
                    node.hi,
                )
            else:  # FREE / ATTEMPT
                wire, winner = backend.free_offers()
        jam_from = channel.jam_from
        jammed = jam_from is not None and now >= jam_from and (
            channel.jam_until is None or now < channel.jam_until
        )
        if jammed:
            corrupted = True
        elif self.noise_gates:
            corrupted = False
            telemetry_on = self.telemetry_on
            for gate in self.noise_gates:
                if gate(now, wire):
                    corrupted = True
                    if telemetry_on:
                        self.ctr_noise_fires.inc()
        else:
            corrupted = False
        if corrupted:
            if jammed:
                stats.jammed_slots += 1
            else:
                stats.corrupted_slots += 1
            stats.collision_slots += 1
            stats.collision_time += slot_time
            if self.telemetry_on:
                self.ctr_collision.inc()
                (self.ctr_jammed if jammed else self.ctr_corrupted).inc()
            observation = SlotObservation(
                state=_COLLISION,
                start=now,
                duration=slot_time,
                frame=None,
                occupied_children=None,
            )
            self._observe(observation, _COLLISION, -1)
            channel.observations += 1
            if self.monitors is not None:
                self.monitors.on_slot(
                    now, slot_time, _COLLISION, wire, None, True, jammed,
                    self.stations, None,
                )
            if self.trace_on:
                self.trace.emit(
                    now, "slot", state="corrupted", duration=slot_time,
                    source=None, msg=None,
                )
            return slot_time
        if wire == 0:
            state = _SILENCE
            duration = slot_time
            frame = None
            stats.silence_slots += 1
            stats.idle_time += slot_time
        elif wire == 1:
            station = self.stations[winner]
            message = station.queue_head()
            frame = Frame(
                station_id=station.station_id,
                message=message,
                burst_continue=False,
            )
            state = _SUCCESS
            duration = self.transmission_time(message.length)
            if self.destructive and duration < slot_time:
                duration = slot_time
            stats.successes += 1
            stats.busy_time += duration
            stats.payload_bits += message.length
            # The winner's completion (the DES does this inside its own
            # ``observe``): dequeue and record, then refresh its column.
            station.complete(message, now + duration, now)
            self._refresh_head(winner)
        else:
            state = _COLLISION
            duration = slot_time
            frame = None
            stats.collision_slots += 1
            stats.collision_time += slot_time
        if self.telemetry_on:
            if state is _SILENCE:
                self.ctr_silence.inc()
            elif state is _SUCCESS:
                self.ctr_success.inc()
                hist = self.latency_hists.get(message.msg_class.name)
                if hist is None:
                    hist = self.telemetry.histogram(
                        f"{self.channel.telemetry_prefix}latency/"
                        f"{message.msg_class.name}",
                        LATENCY_EDGES,
                    )
                    self.latency_hists[message.msg_class.name] = hist
                hist.record(now + duration - message.arrival)
            else:
                self.ctr_collision.inc()
        observation = SlotObservation(
            state=state,
            start=now,
            duration=duration,
            frame=frame,
            occupied_children=None,
        )
        self._observe(observation, state, winner)
        channel.observations += 1
        if self.monitors is not None:
            self.monitors.on_slot(
                now, duration, state, wire, frame, False, False,
                self.stations, None,
            )
        if self.trace_on:
            self.trace.emit(
                now,
                "slot",
                state=state.value,
                duration=duration,
                source=None if frame is None else frame.station_id,
                msg=None if frame is None else frame.message.msg_class.name,
            )
        return duration

    def _observe(
        self, observation: SlotObservation, state: ChannelState, winner: int
    ) -> None:
        """Shared transitions via the replica, private ones via the arrays."""
        replica = self.replica
        backend = self.backend
        pre_mode = replica.mode
        if (
            state is _COLLISION
            and pre_mode is DDCRMode.TTS
            and replica.tts.search.agenda[-1].is_leaf()
        ):
            # Time-leaf collision opens the nested static search: its
            # members are exactly this slot's offerers (also on corrupted
            # slots — the DES stations snapshot ``_offered`` the same way).
            backend.adopt_members()
        replica.observe(observation)
        if pre_mode is DDCRMode.STS:
            if state is _SUCCESS:
                # Ranked order is private: only the transmitter advances.
                backend.advance_cursor(winner)
            if replica.sts is None:
                backend.clear_members()

    # -- state write-back --------------------------------------------------

    def _writeback(self) -> None:
        """Project the kernel state back into every station's MAC.

        Restores the per-station replica invariant the rest of the system
        reads — end-of-run consumers (telemetry finalization, the
        search-length monitor, ``public_state`` assertions) and the DES
        itself on a mid-run rejoin.
        """
        replica = self.replica
        backend = self.backend
        tts_records = replica.tts_records
        sts_records = replica.sts_records
        for i, station in enumerate(self.stations):
            mac = station.mac
            mac.mode = replica.mode
            mac.reft = replica.reft
            mac.tts = _copy_tts(replica.tts)
            mac.sts = _copy_sts(replica.sts)
            mac._pending_leaf = replica._pending_leaf
            mac._sts_member = backend.member_of(i)
            mac._sts_cursor = backend.cursor_of(i)
            mac._offered = None
            mac._burst_owner = None
            mac._burst_budget = 0
            mac.tts_records = list(tts_records)
            mac.sts_records = list(sts_records)
            mac.empty_tts_runs = replica.empty_tts_runs

    # -- the loop ----------------------------------------------------------

    def run(self, horizon: int) -> None:
        """Run the round loop to ``horizon``, owning the clock.

        Mirrors ``run_fast``'s contract: on return ``env.now == horizon``,
        and if a foreign event appears mid-run the kernel writes the MAC
        state back and rejoins the general DES after the current slot.
        """
        env = self.env
        channel = self.channel
        now = env.now
        while now < horizon:
            duration = self._round(int(now), horizon)
            if env.pending:
                self._writeback()
                env.process(channel._rejoin_des(horizon, duration))
                env.run(until=horizon)
                return
            now += duration
            env.advance_to(now if now < horizon else horizon)
        self._writeback()
