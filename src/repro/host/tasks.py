"""Application tasks running on a station's host CPU.

Section 2.2's core modelling argument: even when application tasks are
activated strictly periodically, the software and hardware layers between
the application and the network module (OS calls, scheduling policies,
queue servicing) make message *submission* times variable — which is why
the HRTDM model abandons periodic arrivals for the unimodal arbitrary law.

This module makes that argument executable: periodic tasks run on a
shared CPU under a scheduler (:mod:`repro.host.scheduler`), each job doing
a variable amount of work before emitting its message; the emission
instants are the network-layer arrivals.
"""

from __future__ import annotations

import dataclasses

from repro.model.message import MessageClass

__all__ = ["TaskSpec", "Job"]


@dataclasses.dataclass(frozen=True, slots=True)
class TaskSpec:
    """One periodic application task emitting one message per job.

    ``wcet``/``bcet`` bound the CPU work a job performs before handing its
    message to the network layer (bit-times of CPU occupancy); the actual
    per-job execution time is drawn deterministically from the host's
    seeded stream.  ``priority``: lower value = more urgent (fixed-priority
    scheduling).
    """

    name: str
    period: int
    offset: int
    bcet: int
    wcet: int
    priority: int
    message_class: MessageClass

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        if self.offset < 0:
            raise ValueError(f"offset must be >= 0, got {self.offset}")
        if not 0 < self.bcet <= self.wcet:
            raise ValueError(
                f"need 0 < bcet <= wcet, got {self.bcet}, {self.wcet}"
            )
        if self.wcet > self.period:
            raise ValueError("wcet beyond the period: task overruns itself")


@dataclasses.dataclass(slots=True)
class Job:
    """One activation of a task."""

    task: TaskSpec
    release: int
    execution: int
    finished_at: int | None = None

    @property
    def emitted(self) -> bool:
        return self.finished_at is not None

    @property
    def response_time(self) -> int:
        if self.finished_at is None:
            raise RuntimeError("job still running")
        return self.finished_at - self.release
