"""Deriving (a, w) density bounds from observed emission traces.

The bridge between the host layer and <m.HRTDM>: given the message
emission instants a task produced through the OS stack, find density
bounds the trace respects — both the *tightest* empirical bound for a
given window, and an analytic safe bound from the task model itself.

The analytic bound is the one an engineer would declare: a periodic task
with period P whose response time varies within [R_min, R_max] emits at
most ``1 + floor((J + w) / P)`` messages in any window of w, where
``J = R_max - R_min`` is the response-time jitter (two emissions can be
squeezed together by at most J).
"""

from __future__ import annotations

from repro.host.scheduler import HostSchedule
from repro.host.tasks import TaskSpec
from repro.model.message import DensityBound

__all__ = [
    "empirical_bound",
    "analytic_bound",
    "bounds_from_schedule",
]


def empirical_bound(trace: list[int], window: int) -> DensityBound:
    """The tightest (a, window) bound a concrete trace satisfies.

    ``a`` = the maximum number of trace points in any half-open window of
    the given width; the returned bound admits the trace by construction.
    """
    if not trace:
        return DensityBound(a=1, w=window)
    times = sorted(trace)
    best = 1
    left = 0
    for right in range(len(times)):
        while times[right] - times[left] >= window:
            left += 1
        best = max(best, right - left + 1)
    return DensityBound(a=best, w=window)


def analytic_bound(
    task: TaskSpec, jitter: int, window: int
) -> DensityBound:
    """A provably safe (a, window) bound for a jittery periodic emitter.

    Emissions are release + response with response in a band of width
    ``jitter``; any window of width w then contains at most
    ``1 + floor((jitter + w) / period)`` emissions.
    """
    if jitter < 0:
        raise ValueError(f"jitter must be >= 0, got {jitter}")
    a = 1 + (jitter + window) // task.period
    return DensityBound(a=a, w=window)


def bounds_from_schedule(
    schedule: HostSchedule, tasks: list[TaskSpec], window: int
) -> dict[str, tuple[DensityBound, DensityBound]]:
    """Per task: (empirical tightest, analytic safe) bounds for ``window``.

    The tests assert ``empirical.a <= analytic.a`` — the safe declaration
    always covers what the stack actually produced — and that both admit
    the observed trace.
    """
    result: dict[str, tuple[DensityBound, DensityBound]] = {}
    for task in tasks:
        trace = schedule.emission_trace(task.name)
        empirical = empirical_bound(trace, window)
        analytic = analytic_bound(task, schedule.jitter(task.name), window)
        result[task.name] = (empirical, analytic)
    return result
