"""Response-time analysis (RTA) for the host task layer.

The classic fixed-priority exact analysis (Joseph & Pandya / Audsley):
the worst-case response time of task i is the least fixpoint of::

    R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j

where hp(i) are the higher-priority tasks and C is the WCET.  The paper
cites this tradition ([20], [21] — Jeffay et al. and Hermant et al.) as
the local-scheduling underpinning of the HRTDM design.

This gives the *analytic* counterpart of the measured jitter in
:mod:`repro.host.scheduler`: a task's emission jitter is bounded by
``R_i - bcet_i`` (its completion floats between best-case execution and
worst-case response), which plugs directly into
:func:`repro.host.bounds.analytic_bound` with no simulation — the path an
engineer certifying a system would take.
"""

from __future__ import annotations

import dataclasses

from repro.host.bounds import analytic_bound
from repro.host.tasks import TaskSpec
from repro.model.message import DensityBound

__all__ = ["ResponseTimes", "response_time", "analyze", "certified_bound"]


def response_time(
    task: TaskSpec, taskset: list[TaskSpec], limit: int | None = None
) -> int | None:
    """Worst-case response time of ``task`` within ``taskset``.

    Returns ``None`` when the fixpoint iteration exceeds ``limit``
    (default: the task's period — a response beyond the period means the
    job can be re-entered by its successor, which this simple periodic
    model treats as unschedulable).
    """
    if task not in taskset:
        raise ValueError(f"task {task.name!r} not in the task set")
    limit = task.period if limit is None else limit
    higher = [
        other
        for other in taskset
        if other is not task and other.priority < task.priority
    ]
    response = task.wcet
    while True:
        interference = sum(
            -(-response // other.period) * other.wcet for other in higher
        )
        updated = task.wcet + interference
        if updated == response:
            return response
        if updated > limit:
            return None
        response = updated


@dataclasses.dataclass(frozen=True)
class ResponseTimes:
    """RTA results for a whole task set."""

    per_task: dict[str, int | None]

    @property
    def schedulable(self) -> bool:
        """Every task's worst response exists and is within its period."""
        return all(value is not None for value in self.per_task.values())

    def jitter_bound(self, task: TaskSpec) -> int:
        """Analytic emission-jitter bound ``R - bcet``."""
        response = self.per_task[task.name]
        if response is None:
            raise ValueError(f"task {task.name!r} is unschedulable")
        return response - task.bcet


def analyze(taskset: list[TaskSpec]) -> ResponseTimes:
    """Run RTA for every task of the set."""
    if len({task.priority for task in taskset}) != len(taskset):
        raise ValueError("task priorities must be distinct")
    return ResponseTimes(
        per_task={
            task.name: response_time(task, taskset) for task in taskset
        }
    )


def certified_bound(
    task: TaskSpec, taskset: list[TaskSpec], window: int
) -> DensityBound:
    """A provably safe (a, window) bound with *no simulation at all*.

    Chains RTA's jitter bound into the emission-density formula — the
    fully analytic route from a task set to the <m.HRTDM> declaration.
    Raises when the task set is unschedulable (no finite jitter exists).
    """
    results = analyze(taskset)
    return analytic_bound(task, results.jitter_bound(task), window)
