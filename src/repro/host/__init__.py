"""Host-side substrate: the software layers above the network module.

Section 2.2 argues that OS and middleware layers turn periodic task
activations into *variable* message submission times, which is why HRTDM
adopts the unimodal arbitrary arrival law.  This package simulates that
stack — periodic tasks on a preemptive fixed-priority CPU — and derives
the (a, w) density bounds the resulting emission traces obey.
"""

from repro.host.bounds import analytic_bound, bounds_from_schedule, empirical_bound
from repro.host.rta import ResponseTimes, analyze, certified_bound, response_time
from repro.host.scheduler import HostSchedule, simulate_host
from repro.host.tasks import Job, TaskSpec

__all__ = [
    "analytic_bound",
    "bounds_from_schedule",
    "empirical_bound",
    "ResponseTimes",
    "analyze",
    "certified_bound",
    "response_time",
    "HostSchedule",
    "simulate_host",
    "Job",
    "TaskSpec",
]
