"""A preemptive fixed-priority CPU scheduler on the DES kernel.

Runs a set of periodic :class:`~repro.host.tasks.TaskSpec` on one CPU:
jobs are released periodically, preempt lower-priority jobs, and *emit
their message* when their (seeded, variable) execution demand completes.
The emission instants — the points where the application hands a message
to the network module — are collected per task and are what the HRTDM
model calls arrivals.

The implementation is an exact event-driven simulation: the CPU state
changes only at releases and completions, so we advance from event to
event with closed-form progress updates (no per-tick loop), on top of
:class:`repro.sim.engine.Environment` time.
"""

from __future__ import annotations

import dataclasses
import heapq

from repro.host.tasks import Job, TaskSpec
from repro.sim.rng import SeedSequenceRegistry

__all__ = ["HostSchedule", "simulate_host"]


@dataclasses.dataclass
class HostSchedule:
    """Result of a host simulation: emissions and response-time stats."""

    horizon: int
    emissions: dict[str, list[int]]
    jobs: list[Job]

    def emission_trace(self, task_name: str) -> list[int]:
        """Network-layer arrival instants for one task, sorted."""
        return self.emissions[task_name]

    def worst_response(self, task_name: str) -> int:
        return max(
            job.response_time
            for job in self.jobs
            if job.task.name == task_name and job.emitted
        )

    def jitter(self, task_name: str) -> int:
        """Worst minus best response time — the submission-time variability
        section 2.2 warns about."""
        responses = [
            job.response_time
            for job in self.jobs
            if job.task.name == task_name and job.emitted
        ]
        return max(responses) - min(responses)


def simulate_host(
    tasks: list[TaskSpec], horizon: int, seed: int = 0
) -> HostSchedule:
    """Run the task set to ``horizon`` under preemptive fixed priorities.

    Deterministic per seed.  Raises if two tasks share a priority (the
    schedule would be ambiguous).
    """
    if len({task.priority for task in tasks}) != len(tasks):
        raise ValueError("task priorities must be distinct")
    rng = SeedSequenceRegistry(seed)
    # Pending releases: (time, priority, Job).
    releases: list[tuple[int, int, Job]] = []
    for task in tasks:
        stream = rng.stream(f"exec:{task.name}")
        release = task.offset
        while release < horizon:
            execution = (
                task.bcet
                if task.bcet == task.wcet
                else stream.randint(task.bcet, task.wcet)
            )
            heapq.heappush(
                releases,
                (release, task.priority, Job(task, release, execution)),
            )
            release += task.period
    ready: list[tuple[int, int, Job]] = []  # (priority, release, job)
    remaining: dict[int, int] = {}
    jobs: list[Job] = []
    emissions: dict[str, list[int]] = {task.name: [] for task in tasks}
    now = 0
    while now < horizon and (releases or ready):
        # Admit all releases due now.
        while releases and releases[0][0] <= now:
            _, priority, job = heapq.heappop(releases)
            jobs.append(job)
            heapq.heappush(ready, (priority, job.release, job))
            remaining[id(job)] = job.execution
        if not ready:
            now = releases[0][0] if releases else horizon
            continue
        priority, _, job = ready[0]
        # Run the highest-priority job until it finishes or the next
        # release arrives (which may preempt it).
        next_release = releases[0][0] if releases else horizon
        finish_at = now + remaining[id(job)]
        if finish_at <= next_release:
            heapq.heappop(ready)
            del remaining[id(job)]
            job.finished_at = finish_at
            emissions[job.task.name].append(finish_at)
            now = finish_at
        else:
            remaining[id(job)] -= next_release - now
            now = next_release
    for task_emissions in emissions.values():
        task_emissions.sort()
    return HostSchedule(horizon=horizon, emissions=emissions, jobs=jobs)
