"""Typed fault models and the declarative :class:`FaultPlan`.

Every fault is a frozen dataclass with integer bit-times for event times
(the simulation clock unit) and a stable ``kind`` discriminator used by
the JSON serialisation.  A :class:`FaultPlan` is an ordered tuple of fault
events; it round-trips through :meth:`FaultPlan.to_dict` /
:meth:`FaultPlan.from_dict` (and ``dumps``/``loads``/``dump``/``load`` for
JSON), and canonicalises to a deterministic JSON string for inclusion in
:class:`~repro.runtime.spec.RunSpec` content hashes — faults change the
result, so unlike the engine they are part of a run's identity.

The models themselves are pure data.  Arming them onto a live channel —
scheduling crash/restart events, driving the Gilbert–Elliott chain,
synthesising babble frames — is :mod:`repro.faults.runtime`'s job.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing

__all__ = [
    "ArrivalBurst",
    "BabblingStation",
    "BernoulliNoise",
    "BusJam",
    "ClockDrift",
    "FaultModel",
    "FaultPlan",
    "GilbertElliottNoise",
    "PLAN_PRESETS",
    "StationCrash",
    "preset_plan",
]


def _require(mapping: typing.Mapping, key: str, context: str) -> object:
    if key not in mapping:
        raise ValueError(f"{context}: missing required key {key!r}")
    return mapping[key]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclasses.dataclass(frozen=True)
class FaultModel:
    """Base class for all fault events.  Subclasses set :attr:`kind`."""

    #: Stable serialisation discriminator, overridden per subclass.
    kind: typing.ClassVar[str] = ""

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.kind}
        for field in dataclasses.fields(self):
            payload[field.name] = getattr(self, field.name)
        return payload

    @classmethod
    def from_dict(cls, payload: typing.Mapping) -> "FaultModel":
        kwargs = {
            field.name: payload[field.name]
            for field in dataclasses.fields(cls)
            if field.name in payload
        }
        missing = [
            field.name
            for field in dataclasses.fields(cls)
            if field.name not in payload
            and field.default is dataclasses.MISSING
            and field.default_factory is dataclasses.MISSING
        ]
        if missing:
            raise ValueError(
                f"fault {cls.kind!r}: missing required keys {missing}"
            )
        return cls(**kwargs)


@dataclasses.dataclass(frozen=True)
class BernoulliNoise(FaultModel):
    """Memoryless common-mode corruption: each slot carrying fewer than
    two frames is garbled into a collision with probability ``rate``.

    This is the typed form of the channel's historical ``noise_rate``
    kwarg; both now arm the same gate through one code path."""

    kind: typing.ClassVar[str] = "bernoulli_noise"

    rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {self.rate}")


@dataclasses.dataclass(frozen=True)
class GilbertElliottNoise(FaultModel):
    """Two-state (GOOD/BAD) burst-error channel, generalising Bernoulli.

    Each slot the chain first transitions — GOOD->BAD with probability
    ``p_enter_bad``, BAD->GOOD with ``p_exit_bad`` — then corrupts the
    slot with the state's error rate (``good_rate`` is usually 0).  Like
    Bernoulli noise, corruption is common-mode and only meaningful on
    slots carrying fewer than two frames (a collision is a collision).
    Setting ``p_enter_bad = p_exit_bad = 0`` with ``start_bad = True``
    degenerates to Bernoulli at ``bad_rate``."""

    kind: typing.ClassVar[str] = "gilbert_elliott"

    p_enter_bad: float
    p_exit_bad: float
    bad_rate: float
    good_rate: float = 0.0
    start: int = 0
    start_bad: bool = False

    def __post_init__(self) -> None:
        _check_probability("p_enter_bad", self.p_enter_bad)
        _check_probability("p_exit_bad", self.p_exit_bad)
        _check_probability("bad_rate", self.bad_rate)
        _check_probability("good_rate", self.good_rate)
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")


@dataclasses.dataclass(frozen=True)
class BusJam(FaultModel):
    """Permanent or windowed bus jam: every slot in ``[start, stop)`` is
    observed as a collision by every station (broken termination).  This
    is the typed form of the channel's ``jam_from`` knob; ``stop=None``
    keeps the historical jam-forever semantics."""

    kind: typing.ClassVar[str] = "bus_jam"

    start: int
    stop: int | None = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError("stop must be > start")


@dataclasses.dataclass(frozen=True)
class StationCrash(FaultModel):
    """Fail-stop crash at ``at``; optional restart at ``restart_at``.

    While down the station neither offers, observes, nor accepts arrival
    deliveries (its pending arrivals accumulate and flood in on restart).
    A restart re-attaches a *fresh* MAC instance from the simulation's
    protocol factory — the station rejoins as a newcomer with no shared
    state, exactly the transient-fault recovery scenario self-stabilising
    MAC work studies."""

    kind: typing.ClassVar[str] = "station_crash"

    station_id: int
    at: int
    restart_at: int | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.restart_at is not None and self.restart_at <= self.at:
            raise ValueError("restart_at must be > at")


@dataclasses.dataclass(frozen=True)
class BabblingStation(FaultModel):
    """Non-conforming transmitter: injects a junk frame every ``period``
    rounds inside ``[start, stop)``, regardless of the channel state.

    The babbler is *virtual* — it is not an attached station and runs no
    MAC — so its ``station_id`` must not collide with any real station
    (negative ids are conventional; ``None`` auto-assigns one at arming).
    A lone babble frame is delivered as a foreign success the conforming
    protocols must digest; a babble frame on top of real traffic destroys
    it (collision)."""

    kind: typing.ClassVar[str] = "babbler"

    start: int
    stop: int
    period: int = 1
    length: int = 1_000
    station_id: int | None = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.stop <= self.start:
            raise ValueError("stop must be > start")
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        if self.length < 1:
            raise ValueError(f"length must be >= 1, got {self.length}")


@dataclasses.dataclass(frozen=True)
class ClockDrift(FaultModel):
    """Deterministic carrier-sense clock skew on one station.

    The station's local slot clock gains ``skew_per_slot`` bit-times per
    round; whenever the accumulated skew crosses ``threshold`` (default:
    half a slot, supplied at arming) the station mis-times its carrier
    sense, loses that round's transmission opportunity (its offer is
    suppressed), and resynchronises to the observed slot edge."""

    kind: typing.ClassVar[str] = "clock_drift"

    station_id: int
    skew_per_slot: float
    start: int = 0
    stop: int | None = None
    threshold: float | None = None

    def __post_init__(self) -> None:
        if self.skew_per_slot <= 0:
            raise ValueError(
                f"skew_per_slot must be > 0, got {self.skew_per_slot}"
            )
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError("stop must be > start")
        if self.threshold is not None and self.threshold <= 0:
            raise ValueError("threshold must be > 0")


@dataclasses.dataclass(frozen=True)
class ArrivalBurst(FaultModel):
    """Overload injection: ``count`` extra arrivals of one message class
    at one station, all at time ``at`` — deliberately violating the
    class's declared unimodal ``(a, w)`` density bound when ``count``
    exceeds ``a``.  ``class_name=None`` targets the station's first
    declared class."""

    kind: typing.ClassVar[str] = "arrival_burst"

    station_id: int
    at: int
    count: int
    class_name: str | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")


#: kind discriminator -> model class, for deserialisation.
FAULT_KINDS: dict[str, type[FaultModel]] = {
    model.kind: model
    for model in (
        BernoulliNoise,
        GilbertElliottNoise,
        BusJam,
        StationCrash,
        BabblingStation,
        ClockDrift,
        ArrivalBurst,
    )
}


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable list of fault events for one run."""

    events: tuple[FaultModel, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultModel) or not event.kind:
                raise TypeError(
                    f"FaultPlan events must be fault models, got {event!r}"
                )

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def of_kind(self, model: type[FaultModel]) -> tuple[FaultModel, ...]:
        return tuple(e for e in self.events if isinstance(e, model))

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict:
        return {"faults": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, payload: typing.Mapping) -> "FaultPlan":
        raw = _require(payload, "faults", "fault plan")
        if not isinstance(raw, (list, tuple)):
            raise ValueError("fault plan: 'faults' must be a list")
        events = []
        for index, entry in enumerate(raw):
            if not isinstance(entry, typing.Mapping):
                raise ValueError(f"fault plan entry {index}: not a mapping")
            kind = _require(entry, "kind", f"fault plan entry {index}")
            model = FAULT_KINDS.get(kind)
            if model is None:
                raise ValueError(
                    f"fault plan entry {index}: unknown fault kind {kind!r} "
                    f"(known: {sorted(FAULT_KINDS)})"
                )
            events.append(model.from_dict(entry))
        return cls(events=tuple(events))

    def dumps(self) -> str:
        """Canonical JSON: deterministic for a given plan, so it can key
        :class:`~repro.runtime.spec.RunSpec` content hashes."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def dump(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n"
        )

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "FaultPlan":
        return cls.loads(pathlib.Path(path).read_text())


_MS = 1_000_000  # bit-times per millisecond at 1 Gb/s

#: Named presets for ``--fault <name>`` on the experiments CLI.  Times are
#: absolute bit-times sized for the paper-scale horizons (tens of ms).
PLAN_PRESETS: dict[str, FaultPlan] = {
    "crash": FaultPlan(
        (StationCrash(station_id=0, at=4 * _MS, restart_at=10 * _MS),)
    ),
    "babble": FaultPlan(
        (BabblingStation(start=4 * _MS, stop=6 * _MS, period=8),)
    ),
    "burst-noise": FaultPlan(
        (
            GilbertElliottNoise(
                p_enter_bad=0.002, p_exit_bad=0.05, bad_rate=0.5
            ),
        )
    ),
    "drift": FaultPlan(
        (ClockDrift(station_id=0, skew_per_slot=4.0),)
    ),
    "overload": FaultPlan(
        (ArrivalBurst(station_id=0, at=2 * _MS, count=64),)
    ),
    "jam-window": FaultPlan((BusJam(start=4 * _MS, stop=6 * _MS),)),
}


def preset_plan(name: str) -> FaultPlan:
    """Look up a named preset plan, with a helpful error."""
    try:
        return PLAN_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault preset {name!r} (known: {sorted(PLAN_PRESETS)})"
        ) from None
