"""Scoped ambient fault plan, mirroring :func:`repro.net.engine.use_engine`.

The experiments registry executes runners by keyword arguments frozen into
a :class:`~repro.runtime.spec.RunSpec`; threading a fault plan through all
nineteen runner signatures would be invasive and error-prone.  Instead the
registry scopes the spec's plan here, and :class:`NetworkSimulation` picks
it up at ``run()`` time when no plan was passed explicitly — the same
pattern the engine selector uses.
"""

from __future__ import annotations

import contextlib
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.models import FaultPlan

__all__ = ["current_fault_plan", "use_fault_plan"]

_ACTIVE_PLAN: list["FaultPlan | None"] = [None]


def current_fault_plan() -> "FaultPlan | None":
    """The innermost scoped fault plan, or ``None`` outside any scope."""
    return _ACTIVE_PLAN[-1]


@contextlib.contextmanager
def use_fault_plan(plan: "FaultPlan | None") -> typing.Iterator[None]:
    """Scope ``plan`` as the ambient fault plan for the dynamic extent.

    ``None`` scopes *no plan* (shadowing any outer scope), so nested code
    can explicitly run fault-free.
    """
    _ACTIVE_PLAN.append(plan)
    try:
        yield
    finally:
        _ACTIVE_PLAN.pop()
