"""Scoped ambient fault plan, mirroring :func:`repro.net.engine.use_engine`.

The experiments registry executes runners by keyword arguments frozen into
a :class:`~repro.runtime.spec.RunSpec`; threading a fault plan through all
nineteen runner signatures would be invasive and error-prone.  Instead the
registry scopes the spec's plan here, and :class:`NetworkSimulation` picks
it up at ``run()`` time when no plan was passed explicitly — the same
pattern the engine selector uses.

Implemented on the shared :class:`repro.context.ScopedValue` substrate;
this module only pins down the fault-specific semantics: ``None`` is a
real value here (*no plan*, shadowing any outer scope), so nested code
can explicitly run fault-free.
"""

from __future__ import annotations

import typing

from repro.context import ScopedValue

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.models import FaultPlan

__all__ = ["current_fault_plan", "use_fault_plan"]

_SCOPE: ScopedValue["FaultPlan | None"] = ScopedValue(
    "fault-plan", default=lambda: None
)

#: The innermost scoped fault plan, or ``None`` outside any scope.
current_fault_plan = _SCOPE.current

#: Scope a plan as the ambient fault plan for the dynamic extent;
#: ``None`` scopes *no plan* (shadowing any outer scope).
use_fault_plan = _SCOPE.using
