"""Fault injection: declarative fault plans and their runtime.

The paper's contribution is *correctness proofs* — mutual exclusion and
deadline compliance under the unimodal ``a/w`` adversary — so the repo
needs adversarial executions, not just the happy path.  This package turns
faults into data: a :class:`~repro.faults.models.FaultPlan` is a list of
typed, timed fault events (station crash/restart, babbling station,
Gilbert–Elliott burst noise, per-station clock drift, arrival-burst
overload, bus jam) that can be serialised to JSON, hashed into a
:class:`~repro.runtime.spec.RunSpec` (faults are *content*, unlike the
engine), and armed onto a :class:`~repro.net.channel.BroadcastChannel`
through a :class:`~repro.faults.runtime.FaultInjector`.

The online invariant monitors in :mod:`repro.sim.invariants` are the
matching oracles: they watch every channel round — under either engine —
and report structured violations of the paper's proved properties.
"""

from repro.faults.context import current_fault_plan, use_fault_plan
from repro.faults.models import (
    PLAN_PRESETS,
    ArrivalBurst,
    BabblingStation,
    BernoulliNoise,
    BusJam,
    ClockDrift,
    FaultModel,
    FaultPlan,
    GilbertElliottNoise,
    StationCrash,
    preset_plan,
)
from repro.faults.runtime import FaultInjector

__all__ = [
    "ArrivalBurst",
    "BabblingStation",
    "BernoulliNoise",
    "BusJam",
    "ClockDrift",
    "FaultInjector",
    "FaultModel",
    "FaultPlan",
    "GilbertElliottNoise",
    "PLAN_PRESETS",
    "StationCrash",
    "current_fault_plan",
    "preset_plan",
    "use_fault_plan",
]
