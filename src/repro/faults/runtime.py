"""Arming fault plans onto a live channel: the :class:`FaultInjector`.

The injector translates the pure-data models of
:mod:`repro.faults.models` into per-round state the channel driver
consults: which stations are down, which drift-suppressed, which babble
frames ride the wire this round, and which noise gates corrupt the slot.
It is armed once per run (after stations attach, before the first round)
and then driven by :meth:`begin_round` from inside the round loop — under
either engine, at the same simulated times, so faulted runs remain
byte-identical across ``des`` and ``fastloop``.

All injector randomness (the Gilbert–Elliott chain) comes from the single
``rng`` handed in at construction; the simulation layer passes a dedicated
named registry stream, so arming faults never perturbs the arrival or
legacy-noise streams of an existing seed.
"""

from __future__ import annotations

import math
import random
import typing

from repro.faults.models import (
    ArrivalBurst,
    BabblingStation,
    BernoulliNoise,
    BusJam,
    ClockDrift,
    FaultPlan,
    GilbertElliottNoise,
    StationCrash,
)
from repro.model.message import DensityBound, MessageClass, MessageInstance
from repro.net.frames import Frame

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.message import MessageClass as _MessageClass
    from repro.net.channel import BroadcastChannel
    from repro.net.station import Station

__all__ = ["FaultInjector", "BernoulliGate", "GilbertElliottGate"]


class BernoulliGate:
    """Armed memoryless corruption gate (one RNG draw per eligible slot)."""

    __slots__ = ("rate", "random")

    def __init__(self, rate: float, rng: random.Random) -> None:
        self.rate = rate
        self.random = rng.random

    def __call__(self, now: int, wire: int) -> bool:
        # Draw order matches the channel's historical inline gate exactly:
        # one draw per non-jammed slot carrying fewer than two frames.
        return wire < 2 and self.random() < self.rate


class GilbertElliottGate:
    """Armed two-state burst-error gate.

    One transition draw per active slot (the chain advances whether or not
    the slot is corruptible), plus one error draw on slots carrying fewer
    than two frames when the current state's rate is positive.
    """

    __slots__ = (
        "random", "p_enter", "p_exit", "bad_rate", "good_rate", "start",
        "bad",
    )

    def __init__(self, model: GilbertElliottNoise, rng: random.Random) -> None:
        self.random = rng.random
        self.p_enter = model.p_enter_bad
        self.p_exit = model.p_exit_bad
        self.bad_rate = model.bad_rate
        self.good_rate = model.good_rate
        self.start = model.start
        self.bad = model.start_bad

    def __call__(self, now: int, wire: int) -> bool:
        if now < self.start:
            return False
        draw = self.random()
        if self.bad:
            if draw < self.p_exit:
                self.bad = False
        elif draw < self.p_enter:
            self.bad = True
        rate = self.bad_rate if self.bad else self.good_rate
        if rate > 0.0 and wire < 2:
            return self.random() < rate
        return False


class _DriftState:
    __slots__ = ("station_id", "skew", "start", "stop", "threshold", "accum")

    def __init__(self, model: ClockDrift, threshold: float) -> None:
        self.station_id = model.station_id
        self.skew = model.skew_per_slot
        self.start = model.start
        self.stop = model.stop if model.stop is not None else math.inf
        self.threshold = (
            model.threshold if model.threshold is not None else threshold
        )
        self.accum = 0.0


class _BabblerState:
    __slots__ = ("start", "stop", "period", "counter", "msg_class", "sid")

    def __init__(self, model: BabblingStation, sid: int) -> None:
        self.start = model.start
        self.stop = model.stop
        self.period = model.period
        self.counter = 0
        self.sid = sid
        # The junk payload: decodable length, but never a real station's
        # message (negative source id; constant seq keeps runs allocation-
        # deterministic without touching the process-global instance ids).
        self.msg_class = MessageClass(
            name="<babble>",
            length=model.length,
            deadline=1,
            bound=DensityBound(a=1, w=1),
        )


class FaultInjector:
    """Run-time state of one armed :class:`FaultPlan`."""

    def __init__(
        self, plan: FaultPlan, rng: random.Random | None = None
    ) -> None:
        self.plan = plan
        self.rng = rng if rng is not None else random.Random(0)
        #: Station ids currently crashed (skip deliver/offer/observe).
        self.down: set[int] = set()
        #: Station ids that ever crashed: their replica state is no longer
        #: in lockstep with the survivors, so the consistency assertion
        #: must exempt them.
        self.desynced: set[int] = set()
        #: Station ids whose offer is drift-suppressed this round.
        self.suppressed: set[int] = set()
        #: Babble frames riding the wire this round.
        self.extra: tuple[Frame, ...] = ()
        #: Armed corruption gates, consulted by the channel driver after
        #: its own legacy gate.
        self.noise_gates: tuple = ()
        #: Fault-gate fire accounting, purely additive: how often each
        #: fault mechanism actually acted on the run.  The simulation
        #: layer copies these into the run's telemetry at finalize time
        #: (``faults/<kind>`` counters); noise-gate fires are counted by
        #: the channel driver, which is where gates are consulted.
        self.fire_counts: dict[str, int] = {
            "crash": 0,
            "restart": 0,
            "drift_suppression": 0,
            "babble_frame": 0,
        }
        self._events: list[tuple[int, int, str, int]] = []
        self._cursor = 0
        self._next_event: float = math.inf
        self._drift: list[_DriftState] = []
        self._babblers: list[_BabblerState] = []
        self._stations: dict[int, "Station"] = {}
        self._reset_mac: typing.Callable[["Station"], None] | None = None
        self._armed = False

    # -- arming ----------------------------------------------------------

    def arm(
        self,
        channel: "BroadcastChannel",
        *,
        reset_mac: typing.Callable[["Station"], None] | None = None,
        resolve_class: typing.Callable[
            ["Station", str | None], "_MessageClass"
        ] | None = None,
    ) -> None:
        """Bind the plan to a channel with its stations attached.

        ``reset_mac`` re-provisions a crashed station's MAC on restart
        (the simulation layer closes over its protocol factory); required
        iff the plan restarts anybody.  ``resolve_class`` maps a station
        and class name (or ``None`` for "first declared") to the
        :class:`MessageClass` an :class:`ArrivalBurst` floods; required
        iff the plan contains bursts.
        """
        if self._armed:
            raise RuntimeError("fault injector already armed")
        self._armed = True
        self._stations = {s.station_id: s for s in channel.stations}
        self._reset_mac = reset_mac
        order = 0
        gates: list = []
        jam: BusJam | None = None
        for event in self.plan.events:
            if isinstance(event, StationCrash):
                self._known(event.station_id)
                self._events.append(
                    (event.at, order, "crash", event.station_id)
                )
                order += 1
                if event.restart_at is not None:
                    if reset_mac is None:
                        raise ValueError(
                            "fault plan restarts a station but no reset_mac "
                            "was provided (run through NetworkSimulation, "
                            "or pass one when arming by hand)"
                        )
                    self._events.append(
                        (event.restart_at, order, "restart", event.station_id)
                    )
                    order += 1
            elif isinstance(event, ClockDrift):
                self._known(event.station_id)
                self._drift.append(
                    _DriftState(event, channel.medium.slot_time / 2)
                )
            elif isinstance(event, BabblingStation):
                self._babblers.append(
                    _BabblerState(event, self._babbler_id(event))
                )
            elif isinstance(event, BernoulliNoise):
                if event.rate > 0.0:
                    gates.append(BernoulliGate(event.rate, self.rng))
            elif isinstance(event, GilbertElliottNoise):
                gates.append(GilbertElliottGate(event, self.rng))
            elif isinstance(event, BusJam):
                if jam is not None:
                    raise ValueError("fault plan has more than one bus jam")
                jam = event
                channel.jam_from = event.start
                channel.jam_until = event.stop
            elif isinstance(event, ArrivalBurst):
                station = self._known(event.station_id)
                if resolve_class is None:
                    raise ValueError(
                        "fault plan injects arrival bursts but no "
                        "resolve_class was provided (run through "
                        "NetworkSimulation, or pass one when arming by hand)"
                    )
                msg_class = resolve_class(station, event.class_name)
                for _ in range(event.count):
                    station.add_arrival(msg_class, event.at)
            else:  # pragma: no cover - models and runtime move together
                raise TypeError(f"unhandled fault model {event!r}")
        self._events.sort()
        if self._events:
            self._next_event = self._events[0][0]
        self.noise_gates = tuple(gates)

    def _known(self, station_id: int) -> "Station":
        station = self._stations.get(station_id)
        if station is None:
            raise ValueError(
                f"fault plan targets unknown station {station_id} "
                f"(attached: {sorted(self._stations)})"
            )
        return station

    def _babbler_id(self, model: BabblingStation) -> int:
        if model.station_id is not None:
            if model.station_id in self._stations:
                raise ValueError(
                    f"babbler id {model.station_id} collides with an "
                    "attached station (babblers are virtual transmitters)"
                )
            return model.station_id
        taken = set(self._stations) | {b.sid for b in self._babblers}
        sid = -1
        while sid in taken:
            sid -= 1
        return sid

    # -- per-round driving (called from _RoundDriver) --------------------

    def begin_round(self, now: int) -> None:
        """Advance fault state to the round starting at ``now``."""
        if now >= self._next_event:
            self._fire_events(now)
        if self._drift:
            self.suppressed.clear()
            for state in self._drift:
                if state.start <= now < state.stop:
                    state.accum += state.skew
                    if state.accum >= state.threshold:
                        state.accum -= state.threshold
                        self.suppressed.add(state.station_id)
                        self.fire_counts["drift_suppression"] += 1
        if self._babblers:
            frames: list[Frame] = []
            for babbler in self._babblers:
                if babbler.start <= now < babbler.stop:
                    fire = babbler.counter % babbler.period == 0
                    babbler.counter += 1
                    if fire:
                        self.fire_counts["babble_frame"] += 1
                        frames.append(
                            Frame(
                                station_id=babbler.sid,
                                message=MessageInstance.arrive(
                                    babbler.msg_class,
                                    now,
                                    babbler.sid,
                                    seq=-1,
                                ),
                            )
                        )
            self.extra = tuple(frames)

    def _fire_events(self, now: int) -> None:
        events = self._events
        while self._cursor < len(events) and events[self._cursor][0] <= now:
            _, _, action, station_id = events[self._cursor]
            self._cursor += 1
            if action == "crash":
                self.down.add(station_id)
                self.desynced.add(station_id)
                self.fire_counts["crash"] += 1
            else:  # restart
                self.down.discard(station_id)
                self.fire_counts["restart"] += 1
                assert self._reset_mac is not None  # checked at arm time
                self._reset_mac(self._stations[station_id])
        self._next_event = (
            events[self._cursor][0] if self._cursor < len(events) else math.inf
        )
