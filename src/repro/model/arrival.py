"""Arrival processes for HRTDM message classes.

Section 2.2 argues that realistic network-layer arrivals are neither
periodic nor Poisson and adopts the *unimodal arbitrary* model: any pattern
bounded by ``a`` arrivals per sliding window ``w``.  This module provides:

* :class:`PeriodicArrivals` / :class:`SporadicArrivals` — classic models,
  included both as baselines and because both *are* admissible unimodal
  arbitrary patterns (with suitable (a, w));
* :class:`PoissonArrivals` — the stochastic model the paper warns about;
  deliberately NOT density-bounded, used to show what the FCs do not cover;
* :class:`GreedyBurstArrivals` — the adversary: saturates the (a, w) bound
  at every instant (a-sized burst, then just outside the window, again);
* :class:`JitteredPeriodicArrivals` — periodic plus bounded release jitter,
  the "transit times are inevitably variable" motivation of section 2.2;
* :class:`TraceArrivals` — replay of an explicit list.

Every generator is deterministic given its seed, and yields nondecreasing
integer arrival times (bit-times).  Stochastic generators draw from a
named :class:`~repro.sim.rng.SeedSequenceRegistry` stream derived from
their ``seed`` (or from an explicitly supplied stream), so adding another
random consumer to a simulation never perturbs existing draws.
"""

from __future__ import annotations

import abc
import dataclasses
import random
from collections.abc import Iterator, Sequence

from repro.model.message import DensityBound
from repro.model.units import BitTime
from repro.sim.rng import SeedSequenceRegistry

__all__ = [
    "ArrivalProcess",
    "PeriodicArrivals",
    "SporadicArrivals",
    "JitteredPeriodicArrivals",
    "PoissonArrivals",
    "GreedyBurstArrivals",
    "TraceArrivals",
    "take_until",
]


class ArrivalProcess(abc.ABC):
    """A (possibly infinite) nondecreasing stream of arrival times."""

    @abc.abstractmethod
    def times(self, rng: random.Random | None = None) -> Iterator[BitTime]:
        """Yield arrival times in nondecreasing order, from time 0 onward.

        ``rng`` lets an orchestrator (e.g.
        :class:`~repro.net.network.NetworkSimulation`) supply a dedicated
        registry stream; deterministic processes ignore it.
        """

    def _stream(self, rng: random.Random | None, name: str) -> random.Random:
        """``rng`` if supplied, else this process's own registry stream."""
        if rng is not None:
            return rng
        seed = int(getattr(self, "seed", 0))
        return SeedSequenceRegistry(seed).stream(f"arrivals/{name}")

    def implied_bound(self) -> DensityBound | None:
        """The (a, w) density bound this process is guaranteed to respect.

        ``None`` means no finite guarantee (e.g. Poisson) — such a process
        is outside <m.HRTDM> and the feasibility conditions do not apply.
        """
        return None


def take_until(
    process: ArrivalProcess,
    horizon: BitTime,
    rng: random.Random | None = None,
) -> list[BitTime]:
    """Materialise all arrivals strictly before ``horizon``."""
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    out: list[BitTime] = []
    for t in process.times(rng):
        if t >= horizon:
            break
        out.append(t)
    return out


@dataclasses.dataclass(frozen=True, slots=True)
class PeriodicArrivals(ArrivalProcess):
    """Strictly periodic arrivals: ``phase, phase + period, ...``."""

    period: BitTime
    phase: BitTime = 0

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        if self.phase < 0:
            raise ValueError(f"phase must be >= 0, got {self.phase}")

    def times(self, rng: random.Random | None = None) -> Iterator[BitTime]:
        t = self.phase
        while True:
            yield t
            t += self.period

    def implied_bound(self) -> DensityBound:
        return DensityBound(a=1, w=self.period)


@dataclasses.dataclass(frozen=True, slots=True)
class SporadicArrivals(ArrivalProcess):
    """Sporadic arrivals: random gaps, never closer than ``min_interarrival``.

    Gap = ``min_interarrival + Geometric(extra)`` (integer slack), seeded.
    """

    min_interarrival: BitTime
    mean_slack: float
    seed: int = 0
    phase: BitTime = 0

    def __post_init__(self) -> None:
        if self.min_interarrival < 1:
            raise ValueError(
                f"min_interarrival must be >= 1, got {self.min_interarrival}"
            )
        if self.mean_slack < 0:
            raise ValueError(f"mean_slack must be >= 0, got {self.mean_slack}")

    def times(self, rng: random.Random | None = None) -> Iterator[BitTime]:
        rng = self._stream(rng, "sporadic")
        t = self.phase
        while True:
            yield t
            slack = 0
            if self.mean_slack > 0:
                slack = round(rng.expovariate(1.0 / self.mean_slack))
            t += self.min_interarrival + slack

    def implied_bound(self) -> DensityBound:
        return DensityBound(a=1, w=self.min_interarrival)


@dataclasses.dataclass(frozen=True, slots=True)
class JitteredPeriodicArrivals(ArrivalProcess):
    """Periodic releases delayed by bounded jitter in ``[0, jitter]``.

    Models section 2.2's point that OS/stack layers make submission times
    variable even for periodic tasks.  With jitter J, the stream respects
    ``a = ceil((J + period) / period)`` arrivals per window ``period``
    in the worst case; we report the simple safe bound (2, period) when
    ``jitter < period``.
    """

    period: BitTime
    jitter: BitTime
    seed: int = 0
    phase: BitTime = 0

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        if not 0 <= self.jitter < self.period:
            raise ValueError(
                f"jitter must be in [0, period), got {self.jitter}"
            )

    def times(self, rng: random.Random | None = None) -> Iterator[BitTime]:
        rng = self._stream(rng, "jittered-periodic")
        release = self.phase
        previous = -1
        while True:
            t = release + rng.randint(0, self.jitter)
            if t < previous:  # keep the stream nondecreasing
                t = previous
            previous = t
            yield t
            release += self.period

    def implied_bound(self) -> DensityBound:
        if self.jitter == 0:
            return DensityBound(a=1, w=self.period)
        return DensityBound(a=2, w=self.period)


@dataclasses.dataclass(frozen=True, slots=True)
class PoissonArrivals(ArrivalProcess):
    """Poisson arrivals with mean interarrival ``mean_interarrival``.

    No finite (a, w) bound exists — :meth:`implied_bound` returns ``None``.
    Included to reproduce the paper's argument that stochastic models give
    no hard guarantee.
    """

    mean_interarrival: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0:
            raise ValueError(
                f"mean_interarrival must be > 0, got {self.mean_interarrival}"
            )

    def times(self, rng: random.Random | None = None) -> Iterator[BitTime]:
        rng = self._stream(rng, "poisson")
        t = 0
        while True:
            t += max(1, round(rng.expovariate(1.0 / self.mean_interarrival)))
            yield t

    def implied_bound(self) -> None:
        return None


@dataclasses.dataclass(frozen=True, slots=True)
class GreedyBurstArrivals(ArrivalProcess):
    """The unimodal-arbitrary adversary: saturate ``(a, w)`` forever.

    Emits ``a`` back-to-back arrivals at ``phase``, then the next burst of
    ``a`` exactly ``w`` bit-times after the previous burst started — the
    densest pattern the bound admits.  The feasibility conditions assume
    precisely this peak load; tests check :meth:`DensityBound.admits`.
    """

    bound: DensityBound
    phase: BitTime = 0
    burst_spacing: BitTime = 0

    def __post_init__(self) -> None:
        if self.phase < 0:
            raise ValueError(f"phase must be >= 0, got {self.phase}")
        if self.burst_spacing < 0:
            raise ValueError(
                f"burst_spacing must be >= 0, got {self.burst_spacing}"
            )
        if self.burst_spacing * (self.bound.a - 1) >= self.bound.w:
            raise ValueError("burst_spacing spreads the burst beyond the window")

    def times(self, rng: random.Random | None = None) -> Iterator[BitTime]:
        start = self.phase
        while True:
            for i in range(self.bound.a):
                yield start + i * self.burst_spacing
            start += self.bound.w

    def implied_bound(self) -> DensityBound:
        return self.bound


@dataclasses.dataclass(frozen=True, slots=True)
class TraceArrivals(ArrivalProcess):
    """Replay an explicit arrival-time list (must be nondecreasing)."""

    trace: Sequence[BitTime]

    def __post_init__(self) -> None:
        previous = -1
        for t in self.trace:
            if t < previous:
                raise ValueError("trace must be nondecreasing")
            if t < 0:
                raise ValueError("trace times must be >= 0")
            previous = t

    def times(self, rng: random.Random | None = None) -> Iterator[BitTime]:
        yield from self.trace
