"""The HRTDM problem instance: <m.HRTDM> + <p.HRTDM> (section 2.2).

A :class:`HRTDMProblem` bundles the source set (with the MSG partition and
static-index allocation) and the medium-independent requirements.  It
validates the model constraints the paper states — disjoint static indices,
non-empty partition, q a power of the static branching degree >= z — and
offers the summary quantities (total density, utilization) the feasibility
analysis needs.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

from repro.model.message import MessageClass
from repro.model.source import SourceSpec

__all__ = ["HRTDMProblem", "ProblemValidationError"]


def _is_power_of(value: int, base: int) -> bool:
    """Local copy of :func:`repro.core.trees.is_power_of`.

    The model layer must stay import-independent of :mod:`repro.core`
    (which itself imports the model for the feasibility conditions), so
    this three-line check is duplicated rather than imported.
    """
    if value < 1:
        return False
    while value % base == 0:
        value //= base
    return value == 1


class ProblemValidationError(ValueError):
    """Raised when an instance violates the <m.HRTDM> model constraints."""


@dataclasses.dataclass(frozen=True)
class HRTDMProblem:
    """One quantified instantiation of the HRTDM problem.

    ``static_q`` is the static-tree leaf count q (a power of ``static_m``
    that is >= z); ``static_m`` the static tree's branching degree.  Time
    tree parameters (F, c, alpha, theta) are protocol configuration, not
    part of the problem — they live in :class:`repro.protocols.ddcr.config`.
    """

    sources: tuple[SourceSpec, ...]
    static_q: int
    static_m: int = 2

    def __post_init__(self) -> None:
        if not self.sources:
            raise ProblemValidationError("need at least one source")
        ids = [s.source_id for s in self.sources]
        if len(set(ids)) != len(ids):
            raise ProblemValidationError("duplicate source ids")
        if self.static_m < 2:
            raise ProblemValidationError(
                f"static branching degree must be >= 2, got {self.static_m}"
            )
        if not _is_power_of(self.static_q, self.static_m):
            raise ProblemValidationError(
                f"static q={self.static_q} is not a power of m={self.static_m}"
            )
        if self.static_q < len(self.sources):
            raise ProblemValidationError(
                f"static tree has {self.static_q} leaves for "
                f"{len(self.sources)} sources (need q >= z)"
            )
        seen: set[int] = set()
        for source in self.sources:
            for index in source.static_indices:
                if index >= self.static_q:
                    raise ProblemValidationError(
                        f"source {source.source_id} static index {index} "
                        f"exceeds q-1={self.static_q - 1}"
                    )
                if index in seen:
                    raise ProblemValidationError(
                        f"static index {index} allocated twice"
                    )
                seen.add(index)
        names = [c.name for c in self.all_classes()]
        if len(set(names)) != len(names):
            raise ProblemValidationError("message class names must be unique")

    @property
    def z(self) -> int:
        """Number of sources."""
        return len(self.sources)

    def all_classes(self) -> list[MessageClass]:
        """The full message set MSG (union over the partition)."""
        return [c for s in self.sources for c in s.message_classes]

    def iter_source_classes(self) -> Iterator[tuple[SourceSpec, MessageClass]]:
        for source in self.sources:
            for cls in source.message_classes:
                yield source, cls

    def source_by_id(self, source_id: int) -> SourceSpec:
        for source in self.sources:
            if source.source_id == source_id:
                return source
        raise KeyError(f"no source with id {source_id}")

    @property
    def total_utilization(self) -> float:
        """Aggregate channel demand of MSG (before physical overhead).

        Above 1.0 no protocol can be feasible; the FCs will reject long
        before that because of search overhead.
        """
        return sum(s.utilization for s in self.sources)

    def describe(self) -> str:
        """Human-readable inventory, for example scripts and reports."""
        lines = [
            f"HRTDM instance: z={self.z} sources, "
            f"static tree q={self.static_q} (m={self.static_m}), "
            f"utilization={self.total_utilization:.3f}"
        ]
        for source in self.sources:
            lines.append(
                f"  source {source.source_id}: nu={source.nu} "
                f"indices={source.static_indices}"
            )
            for cls in source.message_classes:
                lines.append(
                    f"    {cls.name}: l={cls.length}b d={cls.deadline} "
                    f"a/w={cls.bound.a}/{cls.bound.w}"
                )
        return "\n".join(lines)
