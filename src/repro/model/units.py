"""Unit discipline for the HRTDM model and simulator.

Everything at protocol level is measured in integer **bit-times**: one
bit-time is the time to put one bit on the medium at nominal throughput
``psi`` (e.g. 1 ns on Gigabit Ethernet).  Integer bit-times keep the
simulator exact — analytic bounds and simulated latencies can be compared
with ``==`` instead of tolerances.

SI seconds appear only at the API boundary; use :func:`seconds_to_bits` /
:func:`bits_to_seconds` to cross it.
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "BitTime",
    "seconds_to_bits",
    "bits_to_seconds",
    "Throughput",
    "GIGABIT_PER_SECOND",
    "MEGABIT_PER_SECOND",
]

#: Type alias: integer time in bit-times.
BitTime = int

GIGABIT_PER_SECOND = 1_000_000_000
MEGABIT_PER_SECOND = 1_000_000


@dataclasses.dataclass(frozen=True, slots=True)
class Throughput:
    """Nominal physical throughput ``psi`` in bits per second.

    >>> Throughput(GIGABIT_PER_SECOND).bit_time_seconds
    1e-09
    """

    bits_per_second: int

    def __post_init__(self) -> None:
        if self.bits_per_second <= 0:
            raise ValueError(
                f"throughput must be positive, got {self.bits_per_second}"
            )

    @property
    def bit_time_seconds(self) -> float:
        """Duration of one bit-time in seconds."""
        return 1.0 / self.bits_per_second

    def transmission_bits(self, length_bits: int) -> BitTime:
        """Transmission duration of a frame, in bit-times (== its length)."""
        if length_bits < 0:
            raise ValueError(f"length must be >= 0, got {length_bits}")
        return length_bits

    def to_seconds(self, bits: BitTime) -> float:
        return bits * self.bit_time_seconds

    def to_bits(self, seconds: float) -> BitTime:
        return seconds_to_bits(seconds, self)


def seconds_to_bits(seconds: float, throughput: Throughput) -> BitTime:
    """Convert SI seconds to integer bit-times (rounded to nearest).

    >>> seconds_to_bits(1e-6, Throughput(GIGABIT_PER_SECOND))
    1000
    """
    if seconds < 0:
        raise ValueError(f"seconds must be >= 0, got {seconds}")
    return round(seconds * throughput.bits_per_second)


def bits_to_seconds(bits: BitTime, throughput: Throughput) -> float:
    """Convert integer bit-times back to SI seconds."""
    return bits * throughput.bit_time_seconds
