"""Canned HRTDM workloads for the applications the paper motivates.

Section 2.1 lists distributed interactive multimedia, videoconferencing,
on-line transactions (stock markets) and surveillance (air traffic control)
as the driving applications.  Each builder here returns an
:class:`~repro.model.problem.HRTDMProblem` whose message classes are sized
for those domains on a Gigabit-Ethernet-class medium, with a ``scale``
parameter multiplying arrival densities (used by the feasibility-frontier
and protocol-comparison benches).

All times are bit-times at 1 Gb/s: 1 us = 1_000 bit-times, 1 ms = 1_000_000.
"""

from __future__ import annotations

import math

from repro.model.message import DensityBound, MessageClass
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec, allocate_static_indices

__all__ = [
    "videoconference_problem",
    "trading_floor_problem",
    "air_traffic_control_problem",
    "uniform_problem",
    "relay_chain_problems",
]

_US = 1_000
_MS = 1_000_000


def _scaled_bound(a: int, w: int, scale: float) -> DensityBound:
    """Scale an (a, w) bound's density by ``scale`` by shrinking the window."""
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    return DensityBound(a=a, w=max(1, math.ceil(w / scale)))


def _assemble(
    per_source_classes: list[list[MessageClass]],
    static_q: int,
    static_m: int,
    nu_per_source: int,
    spread: bool = True,
) -> HRTDMProblem:
    z = len(per_source_classes)
    allocations = allocate_static_indices([nu_per_source] * z, static_q, spread)
    sources = tuple(
        SourceSpec(
            source_id=i,
            message_classes=tuple(classes),
            static_indices=allocations[i],
        )
        for i, classes in enumerate(per_source_classes)
    )
    return HRTDMProblem(sources=sources, static_q=static_q, static_m=static_m)


def videoconference_problem(
    participants: int = 8, scale: float = 1.0
) -> HRTDMProblem:
    """Multi-party videoconference on one segment.

    Each participant sends: video frames (12 kbit every ~1 ms, 5 ms
    deadline), audio frames (1.6 kbit every 2 ms, 2 ms deadline) and
    low-rate control messages (0.5 kbit, 20 ms window, 10 ms deadline).
    """
    if participants < 1:
        raise ValueError("need at least one participant")
    per_source = [
        [
            MessageClass(
                name=f"video-{i}",
                length=12_000,
                deadline=5 * _MS,
                bound=_scaled_bound(1, 1 * _MS, scale),
            ),
            MessageClass(
                name=f"audio-{i}",
                length=1_600,
                deadline=2 * _MS,
                bound=_scaled_bound(1, 2 * _MS, scale),
            ),
            MessageClass(
                name=f"control-{i}",
                length=500,
                deadline=10 * _MS,
                bound=_scaled_bound(1, 20 * _MS, scale),
            ),
        ]
        for i in range(participants)
    ]
    q = _next_power(2, max(participants * 2, 4))
    return _assemble(per_source, static_q=q, static_m=2, nu_per_source=2)


def trading_floor_problem(desks: int = 16, scale: float = 1.0) -> HRTDMProblem:
    """On-line transaction (stock market) workload: small urgent messages.

    Each desk sends order messages (2 kbit, bursty: up to 4 per 1 ms window,
    1 ms deadline) and market-data updates (8 kbit, 2 per 4 ms, 8 ms).
    """
    if desks < 1:
        raise ValueError("need at least one desk")
    per_source = [
        [
            MessageClass(
                name=f"order-{i}",
                length=2_000,
                deadline=1 * _MS,
                bound=_scaled_bound(4, 1 * _MS, scale),
            ),
            MessageClass(
                name=f"ticker-{i}",
                length=8_000,
                deadline=8 * _MS,
                bound=_scaled_bound(2, 4 * _MS, scale),
            ),
        ]
        for i in range(desks)
    ]
    q = _next_power(4, max(desks, 4))
    return _assemble(per_source, static_q=q, static_m=4, nu_per_source=1)


def air_traffic_control_problem(
    radars: int = 4, consoles: int = 8, scale: float = 1.0
) -> HRTDMProblem:
    """Surveillance workload: radar track streams plus console commands.

    Radars: track update batches (24 kbit, 2 per 4 ms, 12 ms deadline).
    Consoles: command messages (1 kbit, 1 per 10 ms, 4 ms deadline) and
    status reports (4 kbit, 1 per 50 ms, 50 ms deadline).
    """
    if radars < 1 or consoles < 1:
        raise ValueError("need at least one radar and one console")
    per_source: list[list[MessageClass]] = []
    for i in range(radars):
        per_source.append(
            [
                MessageClass(
                    name=f"tracks-{i}",
                    length=24_000,
                    deadline=12 * _MS,
                    bound=_scaled_bound(2, 4 * _MS, scale),
                )
            ]
        )
    for j in range(consoles):
        per_source.append(
            [
                MessageClass(
                    name=f"command-{j}",
                    length=1_000,
                    deadline=4 * _MS,
                    bound=_scaled_bound(1, 10 * _MS, scale),
                ),
                MessageClass(
                    name=f"status-{j}",
                    length=4_000,
                    deadline=50 * _MS,
                    bound=_scaled_bound(1, 50 * _MS, scale),
                ),
            ]
        )
    z = radars + consoles
    q = _next_power(2, max(2 * z, 4))
    return _assemble(per_source, static_q=q, static_m=2, nu_per_source=2)


def uniform_problem(
    z: int = 8,
    length: int = 8_000,
    deadline: int = 10 * _MS,
    a: int = 1,
    w: int = 5 * _MS,
    scale: float = 1.0,
    static_m: int = 2,
    nu: int = 1,
) -> HRTDMProblem:
    """Symmetric instance: z identical single-class sources.

    The workhorse of unit tests and parameter sweeps — every quantity in
    the FC formulas can be computed by hand for this instance.
    """
    if z < 1:
        raise ValueError("need at least one source")
    per_source = [
        [
            MessageClass(
                name=f"uniform-{i}",
                length=length,
                deadline=deadline,
                bound=_scaled_bound(a, w, scale),
            )
        ]
        for i in range(z)
    ]
    q = _next_power(static_m, max(z * nu, static_m))
    return _assemble(
        per_source, static_q=q, static_m=static_m, nu_per_source=nu
    )


def relay_chain_problems(
    segments: int,
    z: int = 4,
    length: int = 8_000,
    deadline: int = 10 * _MS,
    a: int = 1,
    w: int = 5 * _MS,
    scale: float = 1.0,
    static_m: int = 2,
    relay_deadline: int | None = None,
) -> list[HRTDMProblem]:
    """Per-segment instances for a bridged chain fabric.

    Segment 0 is a plain :func:`uniform_problem`-shaped instance with
    classes ``local-{i}``; every later segment k additionally gives its
    station 0 (the bridge's station) a relay class ``relay-{k}`` that
    carries the traffic forwarded from segment k-1.  The intended
    bridge chain forwards ``local-0`` of segment 0 onto ``relay-1``,
    then ``relay-1`` onto ``relay-2``, and so on.

    The relay bound must dominate the forwarded *completion* stream,
    not the origin arrival stream: messages arriving ``a`` per window
    ``w`` but finishing anywhere within their residence bound ``d`` can
    compress — every completion in a window of length ``w`` arrived
    within the preceding ``w + d``, so at most ``a * ceil((w + d) / w)``
    of them exist.  That burst-amplification factor compounds per hop,
    which is why deep chains want sparse origin classes (the FC margin
    pays for the compounding).
    """
    if segments < 1:
        raise ValueError("need at least one segment")
    if z < 1:
        raise ValueError("need at least one source per segment")
    relay_deadline = deadline if relay_deadline is None else relay_deadline
    window = _scaled_bound(a, w, scale).w
    problems: list[HRTDMProblem] = []
    relay_a = _scaled_bound(a, w, scale).a
    q = _next_power(static_m, max(z, static_m))
    for k in range(segments):
        per_source = [
            [
                MessageClass(
                    name=f"local-{i}",
                    length=length,
                    deadline=deadline,
                    bound=_scaled_bound(a, w, scale),
                )
            ]
            for i in range(z)
        ]
        if k > 0:
            residence = deadline if k == 1 else relay_deadline
            relay_a *= math.ceil((window + residence) / window)
            per_source[0].append(
                MessageClass(
                    name=f"relay-{k}",
                    length=length,
                    deadline=relay_deadline,
                    bound=DensityBound(a=relay_a, w=window),
                )
            )
        problems.append(
            _assemble(per_source, static_q=q, static_m=static_m, nu_per_source=1)
        )
    return problems


def _next_power(base: int, at_least: int) -> int:
    """Smallest power of ``base`` that is >= ``at_least``."""
    power = base
    while power < at_least:
        power *= base
    return power
