"""Message classes and message instances (section 2.2, <m.HRTDM>).

The HRTDM message model distinguishes the *class* of a message — its bit
length ``l``, relative deadline ``d`` and arrival-density bound ``(a, w)``
(at most ``a`` arrivals in any sliding window of ``w``) — from an *instance*,
one concrete arrival with an arrival time ``T`` and absolute deadline
``DM = T + d``.

All times are integer bit-times (see :mod:`repro.model.units`).
"""

from __future__ import annotations

import dataclasses
import itertools

from repro.model.units import BitTime

__all__ = ["MessageClass", "MessageInstance", "DensityBound"]

_instance_ids = itertools.count()


@dataclasses.dataclass(frozen=True, slots=True)
class DensityBound:
    """Unimodal arbitrary arrival bound: at most ``a`` arrivals per window ``w``.

    The "adversary" of section 2.2: *any* arrival pattern is admissible as
    long as every sliding window of ``w`` bit-times contains at most ``a``
    arrivals.  Strictly stronger than periodic or Poisson assumptions.
    """

    a: int
    w: BitTime

    def __post_init__(self) -> None:
        if self.a < 1:
            raise ValueError(f"arrival count a must be >= 1, got {self.a}")
        if self.w < 1:
            raise ValueError(f"window w must be >= 1, got {self.w}")

    @property
    def density(self) -> float:
        """Long-run arrival rate upper bound, arrivals per bit-time."""
        return self.a / self.w

    def admits(self, arrival_times: list[BitTime]) -> bool:
        """Check a concrete arrival sequence against the sliding window.

        ``True`` iff every half-open window ``[s, s+w)`` contains at most
        ``a`` of the given arrival times.  Sorted input not required.
        """
        times = sorted(arrival_times)
        for i in range(len(times)):
            j = i + self.a
            if j < len(times) and times[j] - times[i] < self.w:
                return False
        return True


@dataclasses.dataclass(frozen=True, slots=True)
class MessageClass:
    """One message class of the HRTDM instance.

    ``length`` is the Data Link PDU bit length ``l(msg)``; the physical
    overhead that turns it into ``l'(msg)`` lives in the medium profile
    (:mod:`repro.net.phy`), because it is a property of the medium, not of
    the message.
    """

    name: str
    length: int
    deadline: BitTime
    bound: DensityBound

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("message class needs a non-empty name")
        if self.length < 1:
            raise ValueError(f"length must be >= 1 bit, got {self.length}")
        if self.deadline < 1:
            raise ValueError(f"deadline must be >= 1, got {self.deadline}")

    @property
    def utilization(self) -> float:
        """Channel utilization demanded by this class (before overhead)."""
        return self.length * self.bound.density


@dataclasses.dataclass(frozen=True, slots=True, order=True)
class MessageInstance:
    """One concrete arrival of a message class.

    Ordered by ``(absolute_deadline, arrival, seq)`` so a heap of instances
    is exactly the EDF order with deterministic FIFO tie-breaking — the
    local algorithm LA of section 3.2.
    """

    absolute_deadline: BitTime
    arrival: BitTime
    seq: int
    msg_class: MessageClass = dataclasses.field(compare=False)
    source_id: int = dataclasses.field(compare=False)

    @classmethod
    def arrive(
        cls,
        msg_class: MessageClass,
        arrival: BitTime,
        source_id: int,
        seq: int | None = None,
    ) -> "MessageInstance":
        """Create an instance for an arrival at time ``arrival``.

        ``DM(msg) = T(msg) + d(msg)`` (section 3.2).  ``seq`` breaks EDF
        ties FIFO and identifies the instance; by default it is drawn from
        a process-global counter (always unique, but different on every
        run), while the simulation layer passes run-local values so that
        repeated runs produce byte-identical completion records.
        """
        if arrival < 0:
            raise ValueError(f"arrival time must be >= 0, got {arrival}")
        return cls(
            absolute_deadline=arrival + msg_class.deadline,
            arrival=arrival,
            seq=next(_instance_ids) if seq is None else seq,
            msg_class=msg_class,
            source_id=source_id,
        )

    @property
    def length(self) -> int:
        return self.msg_class.length

    @property
    def relative_deadline(self) -> BitTime:
        return self.msg_class.deadline

    def lateness(self, completion: BitTime) -> int:
        """Completion time minus absolute deadline; <= 0 means on time."""
        return completion - self.absolute_deadline
