"""Per-hop routes for messages crossing a multi-segment fabric.

The HRTDM model of the paper lives on one broadcast domain; a fabric of
bridged segments (:mod:`repro.net.fabric`) adds a *routing* dimension: a
message that originates on one segment may be relayed, store-and-forward,
across several.  A :class:`Route` records that journey as the ordered
list of :class:`Hop` s — on each segment the message travels as some
message class of that segment's HRTDM instance (the bridge re-classes it
on ingress), so end-to-end analysis composes the per-segment ``B_DDCR``
bounds of exactly those (segment, class) pairs
(:func:`repro.core.composition.compose_route_bound`).

Routes are frozen values: the topology layer derives one per forwarded
class chain and stamps it on the fabric's end-to-end records, keeping
:class:`~repro.model.message.MessageInstance` itself untouched (instances
stay pure single-segment objects; the fabric tracks identity across hops
via its bridge journals).
"""

from __future__ import annotations

import dataclasses

__all__ = ["Hop", "Route"]


@dataclasses.dataclass(frozen=True, slots=True)
class Hop:
    """One traversal of one segment, as one of its message classes."""

    segment: str
    class_name: str

    def __post_init__(self) -> None:
        if not self.segment:
            raise ValueError("hop needs a non-empty segment name")
        if not self.class_name:
            raise ValueError("hop needs a non-empty class name")


@dataclasses.dataclass(frozen=True, slots=True)
class Route:
    """An ordered chain of hops from origin segment to final segment.

    Adjacent hops must change segment (a bridge never forwards back onto
    the segment it heard the frame on — broadcast already delivered it
    there), and the chain must not revisit a segment (store-and-forward
    loops would forward forever).
    """

    hops: tuple[Hop, ...]

    def __post_init__(self) -> None:
        if not self.hops:
            raise ValueError("route needs at least one hop")
        seen: set[str] = set()
        for hop in self.hops:
            if hop.segment in seen:
                raise ValueError(
                    f"route revisits segment {hop.segment!r}: "
                    f"{[h.segment for h in self.hops]}"
                )
            seen.add(hop.segment)

    @property
    def origin(self) -> Hop:
        return self.hops[0]

    @property
    def destination(self) -> Hop:
        return self.hops[-1]

    @property
    def bridge_count(self) -> int:
        """Bridges crossed: one fewer than the segments traversed."""
        return len(self.hops) - 1

    def next_hop(self, segment: str) -> Hop | None:
        """The hop after ``segment`` on this route, or None at the end."""
        for i, hop in enumerate(self.hops):
            if hop.segment == segment:
                return self.hops[i + 1] if i + 1 < len(self.hops) else None
        raise KeyError(f"route does not traverse segment {segment!r}")

    def describe(self) -> str:
        return " -> ".join(f"{h.segment}:{h.class_name}" for h in self.hops)
