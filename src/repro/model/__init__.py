"""The HRTDM problem model: messages, arrival laws, sources, instances.

This package is the executable form of section 2.2's <m.HRTDM>: message
classes with unimodal arbitrary arrival-density bounds, sources owning a
partition of the message set, and validated problem instances.  Canned
application workloads (videoconferencing, trading, air traffic control)
live in :mod:`repro.model.workloads`.
"""

from repro.model.arrival import (
    ArrivalProcess,
    GreedyBurstArrivals,
    JitteredPeriodicArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    SporadicArrivals,
    TraceArrivals,
    take_until,
)
from repro.model.message import DensityBound, MessageClass, MessageInstance
from repro.model.problem import HRTDMProblem, ProblemValidationError
from repro.model.route import Hop, Route
from repro.model.source import SourceSpec, allocate_static_indices
from repro.model.units import (
    GIGABIT_PER_SECOND,
    MEGABIT_PER_SECOND,
    BitTime,
    Throughput,
    bits_to_seconds,
    seconds_to_bits,
)
from repro.model.workloads import (
    air_traffic_control_problem,
    trading_floor_problem,
    uniform_problem,
    videoconference_problem,
)

__all__ = [
    "ArrivalProcess",
    "GreedyBurstArrivals",
    "JitteredPeriodicArrivals",
    "PeriodicArrivals",
    "PoissonArrivals",
    "SporadicArrivals",
    "TraceArrivals",
    "take_until",
    "DensityBound",
    "MessageClass",
    "MessageInstance",
    "HRTDMProblem",
    "ProblemValidationError",
    "Hop",
    "Route",
    "SourceSpec",
    "allocate_static_indices",
    "BitTime",
    "Throughput",
    "GIGABIT_PER_SECOND",
    "MEGABIT_PER_SECOND",
    "bits_to_seconds",
    "seconds_to_bits",
    "air_traffic_control_problem",
    "trading_floor_problem",
    "uniform_problem",
    "videoconference_problem",
]
