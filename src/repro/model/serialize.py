"""JSON (de)serialisation of HRTDM instances.

Lets operators keep problem specifications in version-controlled files and
check them with the CLI (``python -m repro.tools.check``).  The format is
deliberately flat and explicit::

    {
      "static_q": 8,
      "static_m": 2,
      "sources": [
        {
          "source_id": 0,
          "static_indices": [0, 4],
          "classes": [
            {"name": "video-0", "length": 12000, "deadline": 5000000,
             "a": 1, "w": 1000000}
          ]
        }
      ]
    }

All times are integer bit-times of the target medium (see
:mod:`repro.model.units`).
"""

from __future__ import annotations

import json
from typing import Any

from repro.model.message import DensityBound, MessageClass
from repro.model.problem import HRTDMProblem
from repro.model.source import SourceSpec

__all__ = [
    "problem_to_dict",
    "problem_from_dict",
    "dump_problem",
    "load_problem",
]


def problem_to_dict(problem: HRTDMProblem) -> dict[str, Any]:
    """Plain-dict form of an instance (stable key order for diffs)."""
    return {
        "static_q": problem.static_q,
        "static_m": problem.static_m,
        "sources": [
            {
                "source_id": source.source_id,
                "static_indices": list(source.static_indices),
                "classes": [
                    {
                        "name": cls.name,
                        "length": cls.length,
                        "deadline": cls.deadline,
                        "a": cls.bound.a,
                        "w": cls.bound.w,
                    }
                    for cls in source.message_classes
                ],
            }
            for source in problem.sources
        ],
    }


def _require(mapping: dict[str, Any], key: str, context: str) -> Any:
    if key not in mapping:
        raise ValueError(f"missing key {key!r} in {context}")
    return mapping[key]


def problem_from_dict(data: dict[str, Any]) -> HRTDMProblem:
    """Rebuild an instance; validation errors carry the offending path."""
    sources = []
    for position, raw in enumerate(_require(data, "sources", "problem")):
        context = f"sources[{position}]"
        classes = tuple(
            MessageClass(
                name=_require(cls, "name", f"{context}.classes"),
                length=_require(cls, "length", f"{context}.classes"),
                deadline=_require(cls, "deadline", f"{context}.classes"),
                bound=DensityBound(
                    a=_require(cls, "a", f"{context}.classes"),
                    w=_require(cls, "w", f"{context}.classes"),
                ),
            )
            for cls in _require(raw, "classes", context)
        )
        sources.append(
            SourceSpec(
                source_id=_require(raw, "source_id", context),
                message_classes=classes,
                static_indices=tuple(
                    _require(raw, "static_indices", context)
                ),
            )
        )
    return HRTDMProblem(
        sources=tuple(sources),
        static_q=_require(data, "static_q", "problem"),
        static_m=data.get("static_m", 2),
    )


def dump_problem(problem: HRTDMProblem, path: str) -> None:
    """Write an instance to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(problem_to_dict(problem), handle, indent=2)
        handle.write("\n")


def load_problem(path: str) -> HRTDMProblem:
    """Read an instance from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return problem_from_dict(json.load(handle))
